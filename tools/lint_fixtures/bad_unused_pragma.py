"""Fixture: a stale suppression pragma.

The wall-clock read this pragma once justified has been replaced by a
plain sum — the comment now exempts nothing and must be reported (and
a typo'd rule name is just as stale).
"""


def compute_total(values: list) -> int:
    return sum(values)  # lint: allow-wall-clock (stale: read was removed)


def other(values: list) -> int:
    return len(values)  # lint: allow-wallclock-typo (no such rule)
