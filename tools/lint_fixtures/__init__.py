"""Seeded violations for ``lint_engine.py --self-test``.

Each ``bad_*.py`` file deliberately breaks exactly one engine invariant;
the self-test asserts the corresponding rule fires on it. These files
are never imported by the engine.
"""
