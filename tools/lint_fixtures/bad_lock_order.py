"""Seeded violation: lock acquisition in arbitrary (unsorted) order."""


def commit_writes(manager, writes: dict) -> None:
    # VIOLATION: dict order is insertion order, not a global lock
    # order — two transactions locking {a, b} and {b, a} deadlock.
    for table in writes:
        manager.lock(table)


def double_acquire(locks, first: str, second: str) -> None:
    # VIOLATION: two standalone acquisitions with caller-chosen order.
    locks.acquire(first)
    locks.acquire(second)
