"""Fixture: catch-alls that swallow the exception must trip
[bare-except]; the variants that re-raise must not."""


def swallows_exception(compute):
    try:
        return compute()
    except Exception:
        return None  # BAD: the error silently becomes a normal result


def swallows_bare(compute):
    try:
        return compute()
    except:  # noqa: E722  BAD: bare catch-all, nothing recorded
        pass


def cleanup_then_reraise(compute, rollback):
    # GOOD: broad catch for cleanup is fine when it re-raises.
    try:
        return compute()
    except BaseException:
        rollback()
        raise
