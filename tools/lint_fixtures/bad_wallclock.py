"""Seeded violation: wall-clock reads outside scheduler/clock.py."""

import time
from datetime import datetime


def refresh_deadline(lag_seconds: float) -> float:
    # VIOLATION: engine time must come from SimClock, not the OS.
    return time.time() + lag_seconds


def stamp() -> str:
    # VIOLATION: datetime.now() is nondeterministic under the scheduler.
    return datetime.now().isoformat()
