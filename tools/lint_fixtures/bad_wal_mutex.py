"""Seeded violation: WAL commit record logged outside the commit mutex."""


def commit_unlocked(manager, ts, writes) -> None:
    # VIOLATION: log_commit with no enclosing `with ... commit_mutex:` —
    # concurrent committers could interleave, making the on-disk WAL
    # record order diverge from the in-memory apply order.
    manager.durability.log_commit(ts, writes, None)


def commit_wrong_lock(manager, ts, writes) -> None:
    with manager.catalog_mutex:
        # VIOLATION: a lock is held, but it is not the commit mutex.
        manager.durability.log_commit(ts, writes, None)


def commit_locked(manager, ts, writes) -> None:
    with manager.commit_mutex:
        # OK: lexically inside the commit critical section.
        manager.durability.log_commit(ts, writes, None)
