"""Seeded violation: row materialization in a hot-path module."""


def slow_filter(relation, predicate):
    # VIOLATION: .rows transposes the columnar relation into tuples.
    return [row for row in relation.rows if predicate(row)]


def slow_delta(relation):
    # VIOLATION: .pairs() materializes (row_id, row) tuples.
    return dict(relation.pairs())
