"""Seeded violation: an accumulator missing part of the protocol."""


class Accumulator:
    """Stand-in for repro.engine.aggregates.Accumulator."""

    def insert(self, value):
        raise NotImplementedError

    def retract(self, value):
        raise NotImplementedError

    def merge(self, other):
        raise NotImplementedError

    def finalize(self):
        raise NotImplementedError


class HalfSumAccumulator(Accumulator):
    # VIOLATION: no retract/merge — the first retraction-bearing delta
    # hits NotImplementedError at refresh time.

    def __init__(self):
        self.total = 0

    def insert(self, value):
        if value is not None:
            self.total += value

    def finalize(self):
        return self.total
