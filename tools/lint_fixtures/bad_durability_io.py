"""Seeded violation: direct file I/O outside ``repro/durability/``."""

import os


def cache_result(path: str, payload: bytes) -> None:
    # VIOLATION: bare open() outside the durability subsystem — this
    # write is invisible to recovery and not crash-atomic.
    with open(path, "wb") as handle:
        handle.write(payload)
    # VIOLATION: the fsync/replace discipline belongs in repro/durability.
    os.replace(path, path + ".final")


def read_sidecar(path) -> str:
    # VIOLATION: Path convenience I/O is still file I/O.
    return path.read_text()
