#!/usr/bin/env python3
"""Engine-invariant linter: AST-based checks over the repro codebase.

The runtime engine relies on a handful of invariants that Python cannot
express in types; this tool makes them CI-enforced instead of
convention-enforced:

``wall-clock``
    All time comes from the simulated clock (``scheduler/clock.py``).
    Wall-clock reads anywhere else (``time.time()``, ``time.monotonic()``,
    ``datetime.now()``, ...) would desynchronize refresh scheduling from
    the HLC and make tests nondeterministic.

``lock-order``
    Lock acquisitions in ``server/`` and the transaction manager must
    happen in sorted order: every loop body that acquires locks must
    iterate a ``sorted(...)`` sequence (directly or through a variable
    assigned from one), and no function may contain more than one
    standalone acquisition site. Unordered multi-lock acquisition is the
    classic deadlock recipe under first-committer-wins commits.

``materialize``
    Hot-path modules (``engine/executor.py``, ``ivm/rules_*.py``,
    ``storage/``) stay columnar: ``.rows`` / ``.pairs()``
    materialization there defeats the columnar data plane and is only
    allowed at sites recorded in the baseline allowlist below (each a
    deliberate row-shaped boundary) or marked with a pragma.

``accumulator-protocol``
    Every class deriving from ``Accumulator`` must implement (or
    inherit a real implementation of) the full
    ``insert``/``retract``/``merge``/``finalize`` protocol; a partial
    accumulator would break retraction-based incremental aggregation at
    runtime, in whatever query shape first exercises the missing method.

``durability-io``
    All file I/O goes through ``repro/durability/`` — the one subsystem
    that knows the fsync/``os.replace`` discipline that makes writes
    crash-atomic. A bare ``open()`` / ``os.*`` file call anywhere else
    is state the recovery path cannot see and will not restore.

``wal-commit-mutex``
    Every ``.log_commit(...)`` call must sit lexically inside a
    ``with`` block whose context expression mentions ``commit_mutex``.
    WAL commit records replay in sequence order on recovery; logging
    outside the commit critical section would let the on-disk record
    order diverge from the in-memory apply order.

``bare-except``
    ``except Exception:`` (or a bare ``except:``) whose handler never
    re-raises swallows errors silently — the bug class behind refresh
    failures that vanished instead of being recorded. A catch-all that
    re-raises (cleanup boundaries) is fine; a genuine swallow is only
    allowed at boundaries recorded in the allowlist below (places whose
    *contract* is to convert exceptions into recorded state) or marked
    with a pragma.

``unused-pragma``
    A ``# lint: allow-<rule>`` pragma on a line that no longer violates
    that rule is a stale justification — it reads as "this line is
    exempt" while exempting nothing, and it would silently re-arm if
    the violation ever came back under a different rule. Delete it.

A violating line can be suppressed with an inline pragma comment::

    deadline = time.monotonic() + t  # lint: allow-wall-clock (reason)

Usage::

    python tools/lint_engine.py              # lint src/repro, exit 1 on findings
    python tools/lint_engine.py --self-test  # prove each rule fires on its fixture
    python tools/lint_engine.py --dump-allowlist  # print the allowlist block

Violations print as ``path:line: [rule] message``. The violation shape
and the pragma grammar are shared with the whole-program analyzer
(``tools/analyzer``) via ``tools.analyzer.diagnostics``.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
FIXTURE_DIR = Path(__file__).resolve().parent / "lint_fixtures"

try:
    from tools.analyzer.diagnostics import PragmaIndex, Violation
except ImportError:  # run as a script: repo root not on sys.path yet
    sys.path.insert(0, str(REPO_ROOT))
    from tools.analyzer.diagnostics import PragmaIndex, Violation

#: Wall-clock reads banned outside scheduler/clock.py.
_CLOCK_MODULES = ("time", "datetime")
_CLOCK_CALLS = {
    "time": {"time", "monotonic", "sleep", "perf_counter", "localtime",
             "gmtime", "process_time"},
    "datetime": {"now", "utcnow", "today"},
}
_CLOCK_EXEMPT = ("scheduler/clock.py",)

#: Modules whose loops/locks must acquire in sorted order.
_LOCK_SCOPE = ("server/", "txn/manager.py")
_LOCK_METHODS = {"lock", "acquire"}

#: Hot-path modules that must stay columnar.
_MATERIALIZE_SCOPE = ("engine/executor.py", "storage/")
_MATERIALIZE_PREFIX = ("ivm/rules_",)

#: Baseline allowlist for the materialize rule: (module path, enclosing
#: scope) pairs for the row-shaped boundaries that predate the linter.
#: Additions to this list need review — new hot-path code is expected to
#: stay columnar or carry an inline pragma with a justification.
MATERIALIZE_ALLOWLIST: set[tuple[str, str]] = {
    ("engine/executor.py", "_block_of"),
    ("engine/executor.py", "_filter_input"),
    ("engine/executor.py", "_run_filter"),
    ("engine/executor.py", "_run_limit"),
    ("engine/executor.py", "_run_project"),
    ("engine/executor.py", "_run_scan"),
    ("engine/executor.py", "_run_sort"),
    ("engine/executor.py", "_run_unionall"),
    ("engine/executor.py", "_run_values"),
    ("engine/executor.py", "aggregate_relation"),
    ("engine/executor.py", "distinct_relation"),
    ("engine/executor.py", "flatten_relation"),
    ("engine/executor.py", "join_relations"),
    ("engine/executor.py", "window_relation"),
    ("ivm/rules_agg.py", "delta_aggregate"),
    ("ivm/rules_agg.py", "delta_distinct"),
    ("ivm/rules_basic.py", "delta_filter"),
    ("ivm/rules_basic.py", "delta_flatten"),
    ("ivm/rules_basic.py", "delta_project"),
    ("ivm/rules_basic.py", "delta_unionall"),
    ("ivm/rules_join.py", "_delta_outer_direct"),
    ("ivm/rules_join.py", "_left_pad_rows"),
    ("ivm/rules_join.py", "_relation_of_action"),
    ("ivm/rules_join.py", "_right_pad_rows"),
    ("ivm/rules_join.py", "_signed_join"),
    ("ivm/rules_window.py", "delta_window"),
    ("storage/table.py", "_apply_changeset"),
    ("storage/table.py", "_apply_dml"),
    ("storage/table.py", "_materialize"),
    ("storage/table.py", "recluster"),
    ("storage/table.py", "rows_by_id"),
}

#: Boundaries whose contract is converting exceptions into recorded
#: state — the only scopes where a non-re-raising ``except Exception``
#: is allowed. (path, enclosing scope) pairs; additions need review.
BARE_EXCEPT_ALLOWLIST: set[tuple[str, str]] = {
    # The scheduler's skip gate: an upstream probe error is recorded on
    # the DT as a failed attempt (counted toward auto-suspension), never
    # propagated into the tick loop.
    ("scheduler/scheduler.py", "_skip_or_upstream_ends"),
    # Wave isolation: with return_exceptions=True a crashed worker task
    # returns its exception as the result so siblings complete.
    ("util/parallel.py", "task"),
}

#: The accumulator protocol every concrete accumulator must provide.
_ACCUMULATOR_PROTOCOL = ("insert", "retract", "merge", "finalize")
_ACCUMULATOR_ROOT = "Accumulator"

#: The only subtree allowed to do direct file I/O.
_DURABILITY_EXEMPT = ("durability/",)
#: ``os.<attr>(...)`` calls that touch the filesystem.
_IO_OS_CALLS = {"open", "fdopen", "write", "replace", "truncate", "fsync",
                "unlink", "remove", "rename", "makedirs"}
#: ``Path``-style convenience I/O methods.
_IO_PATH_METHODS = {"write_text", "write_bytes", "read_text", "read_bytes"}


def _scope_stack(tree: ast.Module) -> dict[ast.AST, str]:
    """Map every node to the name of its innermost enclosing function or
    class ('<module>' at top level)."""
    scopes: dict[ast.AST, str] = {}

    def visit(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_scope = child.name
            scopes[child] = child_scope
            visit(child, child_scope)

    scopes[tree] = "<module>"
    visit(tree, "<module>")
    return scopes


# ---------------------------------------------------------------------------
# Rule: wall-clock
# ---------------------------------------------------------------------------


def check_wall_clock(tree: ast.Module, rel_path: str,
                     pragmas: PragmaIndex) -> Iterator[Violation]:
    if any(rel_path.endswith(exempt) for exempt in _CLOCK_EXEMPT):
        return
    for node in ast.walk(tree):
        call: Optional[tuple[int, str]] = None
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in _CLOCK_CALLS
                and node.func.attr in _CLOCK_CALLS[node.func.value.id]):
            call = (node.lineno,
                    f"{node.func.value.id}.{node.func.attr}()")
        elif (isinstance(node, ast.ImportFrom)
                and node.module in _CLOCK_CALLS):
            banned = [alias.name for alias in node.names
                      if alias.name in _CLOCK_CALLS[node.module]]
            if banned:
                call = (node.lineno,
                        f"from {node.module} import {', '.join(banned)}")
        if call is None:
            continue
        line, description = call
        if pragmas.suppresses(line, "wall-clock"):
            continue
        yield Violation(
            rel_path, line, "wall-clock",
            f"{description} reads the wall clock; all engine time must "
            "come from scheduler/clock.py (SimClock)")


# ---------------------------------------------------------------------------
# Rule: lock-order
# ---------------------------------------------------------------------------


def _is_sorted_expr(expr: ast.expr, sorted_names: set[str]) -> bool:
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id == "sorted"):
        return True
    return isinstance(expr, ast.Name) and expr.id in sorted_names


def _sorted_names_of(func: ast.AST) -> set[str]:
    """Names assigned from a ``sorted(...)`` call anywhere in ``func``."""
    names: set[str] = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id == "sorted"):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def check_lock_order(tree: ast.Module, rel_path: str,
                     pragmas: PragmaIndex,
                     force: bool = False) -> Iterator[Violation]:
    if not force and not any(marker in rel_path for marker in _LOCK_SCOPE):
        return
    functions = [node for node in ast.walk(tree)
                 if isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))]
    for func in functions:
        sorted_names = _sorted_names_of(func)
        loops: list[ast.For] = []
        loose_sites: list[int] = []

        def scan(node: ast.AST, loop: Optional[ast.For]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    continue  # nested defs get their own pass
                child_loop = loop
                if isinstance(child, ast.For):
                    child_loop = child
                    loops.append(child)
                if (isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Attribute)
                        and child.func.attr in _LOCK_METHODS):
                    if pragmas.suppresses(child.lineno, "lock-order"):
                        pass
                    elif child_loop is not None:
                        if not _is_sorted_expr(child_loop.iter,
                                               sorted_names):
                            yield_to.append(Violation(
                                rel_path, child.lineno, "lock-order",
                                f"lock acquisition inside a loop over an "
                                f"unsorted iterable (in {func.name}); "
                                "iterate sorted(...) so every "
                                "transaction locks in the same global "
                                "order"))
                    else:
                        loose_sites.append(child.lineno)
                scan(child, child_loop)

        yield_to: list[Violation] = []
        scan(func, None)
        yield from yield_to
        if len(loose_sites) > 1:
            yield Violation(
                rel_path, loose_sites[1], "lock-order",
                f"{func.name} acquires multiple locks outside a "
                "sorted(...) loop; acquire them in one loop over a "
                "sorted sequence to keep the global lock order")


# ---------------------------------------------------------------------------
# Rule: materialize
# ---------------------------------------------------------------------------


def _in_materialize_scope(rel_path: str) -> bool:
    if any(rel_path.startswith(prefix) or f"/{prefix}" in rel_path
           for prefix in _MATERIALIZE_PREFIX):
        return True
    return any(rel_path.startswith(scope) or scope in rel_path
               for scope in _MATERIALIZE_SCOPE)


def check_materialize(tree: ast.Module, rel_path: str,
                      pragmas: PragmaIndex,
                      force: bool = False) -> Iterator[Violation]:
    if not force and not _in_materialize_scope(rel_path):
        return
    scopes = _scope_stack(tree)
    for node in ast.walk(tree):
        site: Optional[tuple[int, str]] = None
        if (isinstance(node, ast.Attribute) and node.attr == "rows"
                and isinstance(node.ctx, ast.Load)):
            site = (node.lineno, ".rows")
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "pairs"):
            site = (node.lineno, ".pairs()")
        if site is None:
            continue
        line, what = site
        scope = scopes.get(node, "<module>")
        if pragmas.suppresses(line, "materialize"):
            continue
        if (rel_path, scope) in MATERIALIZE_ALLOWLIST and not force:
            continue
        yield Violation(
            rel_path, line, "materialize",
            f"{what} materializes row tuples in hot-path scope "
            f"{scope!r}; stay columnar (Relation.columns / "
            "insert_arrays) or add the site to the allowlist with a "
            "justification")


# ---------------------------------------------------------------------------
# Rule: accumulator-protocol
# ---------------------------------------------------------------------------


def _is_stub(method: ast.FunctionDef) -> bool:
    """A method whose body is only ``raise NotImplementedError`` (a
    docstring is permitted)."""
    body = [stmt for stmt in method.body
            if not (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant))]
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return False
    exc = body[0].exc
    name = exc.func if isinstance(exc, ast.Call) else exc
    return isinstance(name, ast.Name) and name.id == "NotImplementedError"


def check_accumulator_protocol(tree: ast.Module, rel_path: str,
                               pragmas: PragmaIndex,
                               ) -> Iterator[Violation]:
    classes: dict[str, ast.ClassDef] = {
        node.name: node for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)}
    if not classes:
        return

    def base_names(cls: ast.ClassDef) -> list[str]:
        return [base.id for base in cls.bases
                if isinstance(base, ast.Name)]

    def derives_from_root(cls: ast.ClassDef,
                          seen: frozenset = frozenset()) -> bool:
        for base in base_names(cls):
            if base == _ACCUMULATOR_ROOT:
                return True
            if base in classes and base not in seen:
                if derives_from_root(classes[base], seen | {base}):
                    return True
        return False

    def implemented(cls: ast.ClassDef,
                    seen: frozenset = frozenset()) -> set[str]:
        """Protocol methods with a real (non-stub) body in ``cls`` or an
        ancestor defined in this file (the root's stubs don't count)."""
        methods = {stmt.name for stmt in cls.body
                   if isinstance(stmt, ast.FunctionDef)
                   and stmt.name in _ACCUMULATOR_PROTOCOL
                   and not _is_stub(stmt)}
        for base in base_names(cls):
            if (base in classes and base != _ACCUMULATOR_ROOT
                    and base not in seen):
                methods |= implemented(classes[base], seen | {base})
        return methods

    for cls in classes.values():
        if cls.name == _ACCUMULATOR_ROOT or not derives_from_root(cls):
            continue
        if pragmas.suppresses(cls.lineno, "accumulator-protocol"):
            continue
        missing = [method for method in _ACCUMULATOR_PROTOCOL
                   if method not in implemented(cls)]
        if missing:
            yield Violation(
                rel_path, cls.lineno, "accumulator-protocol",
                f"{cls.name} does not implement "
                f"{'/'.join(missing)}; a partial accumulator breaks "
                "retraction-based incremental aggregation at runtime")


# ---------------------------------------------------------------------------
# Rule: durability-io
# ---------------------------------------------------------------------------


def check_durability_io(tree: ast.Module, rel_path: str,
                        pragmas: PragmaIndex) -> Iterator[Violation]:
    if any(rel_path.startswith(exempt) or f"/{exempt}" in rel_path
           for exempt in _DURABILITY_EXEMPT):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        what: Optional[str] = None
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            what = "open()"
        elif (isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "os"
                and node.func.attr in _IO_OS_CALLS):
            what = f"os.{node.func.attr}()"
        elif (isinstance(node.func, ast.Attribute)
                and node.func.attr in _IO_PATH_METHODS):
            what = f".{node.func.attr}()"
        if what is None:
            continue
        if pragmas.suppresses(node.lineno, "durability-io"):
            continue
        yield Violation(
            rel_path, node.lineno, "durability-io",
            f"{what} does direct file I/O outside repro/durability/; "
            "route persistence through the durability subsystem so the "
            "write is crash-atomic and visible to recovery")


# ---------------------------------------------------------------------------
# Rule: bare-except
# ---------------------------------------------------------------------------


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:``, ``except Exception``, ``except BaseException``,
    or a tuple containing either."""
    if handler.type is None:
        return True

    def broad(expr: ast.expr) -> bool:
        return (isinstance(expr, ast.Name)
                and expr.id in ("Exception", "BaseException"))

    if broad(handler.type):
        return True
    return (isinstance(handler.type, ast.Tuple)
            and any(broad(elt) for elt in handler.type.elts))


def check_bare_except(tree: ast.Module, rel_path: str,
                      pragmas: PragmaIndex,
                      force: bool = False) -> Iterator[Violation]:
    scopes = _scope_stack(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_catch_all(node):
            continue
        if any(isinstance(inner, ast.Raise)
               for inner in ast.walk(node)):
            continue  # cleanup boundary: catches broadly but re-raises
        if pragmas.suppresses(node.lineno, "bare-except"):
            continue
        scope = scopes.get(node, "<module>")
        if (rel_path, scope) in BARE_EXCEPT_ALLOWLIST and not force:
            continue
        what = ("bare except:" if node.type is None
                else f"except {ast.unparse(node.type)}:")
        yield Violation(
            rel_path, node.lineno, "bare-except",
            f"{what} in scope {scope!r} swallows the exception (no "
            "raise in the handler); record the error or re-raise — "
            "silent swallows are only allowed at allowlisted "
            "error-recording boundaries")


# ---------------------------------------------------------------------------
# Rule: wal-commit-mutex
# ---------------------------------------------------------------------------


def _mentions_commit_mutex(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "commit_mutex":
            return True
        if isinstance(node, ast.Name) and node.id == "commit_mutex":
            return True
    return False


def check_wal_commit_mutex(tree: ast.Module, rel_path: str,
                           pragmas: PragmaIndex,
                           ) -> Iterator[Violation]:
    found: list[Violation] = []

    def scan(node: ast.AST, held: bool) -> None:
        for child in ast.iter_child_nodes(node):
            child_held = held
            if isinstance(child, (ast.With, ast.AsyncWith)):
                if any(_mentions_commit_mutex(item.context_expr)
                       for item in child.items):
                    child_held = True
            if (isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "log_commit"
                    and not child_held
                    and not pragmas.suppresses(child.lineno,
                                               "wal-commit-mutex")):
                found.append(Violation(
                    rel_path, child.lineno, "wal-commit-mutex",
                    ".log_commit(...) outside a `with ... commit_mutex:` "
                    "block; the WAL record order must match the commit "
                    "apply order, which only the commit mutex guarantees"))
            scan(child, child_held)

    scan(tree, False)
    yield from found


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

RULES = ("wall-clock", "lock-order", "materialize", "accumulator-protocol",
         "durability-io", "bare-except", "wal-commit-mutex",
         "unused-pragma")


def check_file(path: Path, root: Path,
               force_all: bool = False) -> list[Violation]:
    rel_path = path.relative_to(root).as_posix()
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(rel_path, exc.lineno or 0, "parse",
                          f"could not parse: {exc.msg}")]
    # The index records which pragmas actually suppressed something, so
    # stale justifications surface as their own violations below.
    pragmas = PragmaIndex(source.splitlines(), tag="lint")
    violations: list[Violation] = []
    violations.extend(check_wall_clock(tree, rel_path, pragmas))
    violations.extend(check_lock_order(tree, rel_path, pragmas,
                                       force=force_all))
    violations.extend(check_materialize(tree, rel_path, pragmas,
                                        force=force_all))
    violations.extend(check_accumulator_protocol(tree, rel_path, pragmas))
    violations.extend(check_durability_io(tree, rel_path, pragmas))
    violations.extend(check_bare_except(tree, rel_path, pragmas,
                                        force=force_all))
    violations.extend(check_wal_commit_mutex(tree, rel_path, pragmas))
    for line, rule in pragmas.unused():
        violations.append(Violation(
            rel_path, line, "unused-pragma",
            f"'# lint: allow-{rule}' suppresses nothing on this line "
            f"(the {rule!r} violation it justified is gone"
            + ("" if rule in RULES else ", and no such rule exists")
            + "); delete the stale pragma"))
    return violations


def lint_tree(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    for path in sorted(root.rglob("*.py")):
        violations.extend(check_file(path, root))
    return violations


def live_allowlist(root: Path) -> set[tuple[str, str]]:
    """The (path, scope) pairs the materialize rule hits on the current
    tree with the allowlist disabled — i.e. what the allowlist *should*
    contain (pragma-suppressed sites excluded)."""
    saved = set(MATERIALIZE_ALLOWLIST)
    MATERIALIZE_ALLOWLIST.clear()
    try:
        return {(v.path, v.message.split("scope ")[1].split(";")[0]
                 .strip("'\""))
                for v in lint_tree(root) if v.rule == "materialize"}
    finally:
        MATERIALIZE_ALLOWLIST.update(saved)


def dump_allowlist(root: Path) -> int:
    """Print the current materialize sites as a complete assignment
    block, directly pasteable over MATERIALIZE_ALLOWLIST above."""
    print("MATERIALIZE_ALLOWLIST: set[tuple[str, str]] = {")
    for path, scope in sorted(live_allowlist(root)):
        print(f'    ("{path}", "{scope}"),')
    print("}")
    return 0


#: Fixture file → the rule it must trip (self-test contract).
FIXTURE_EXPECTATIONS = {
    "bad_wallclock.py": "wall-clock",
    "bad_lock_order.py": "lock-order",
    "bad_materialize.py": "materialize",
    "bad_accumulator.py": "accumulator-protocol",
    "bad_durability_io.py": "durability-io",
    "bad_bare_except.py": "bare-except",
    "bad_wal_mutex.py": "wal-commit-mutex",
    "bad_unused_pragma.py": "unused-pragma",
}


def self_test() -> int:
    """Prove every rule fires: each fixture must produce at least one
    violation of its designated rule (and the rule must also stay quiet
    on the real tree — checked by the normal run in CI)."""
    failures = 0
    for name, rule in sorted(FIXTURE_EXPECTATIONS.items()):
        path = FIXTURE_DIR / name
        if not path.exists():
            print(f"self-test FAIL: missing fixture {path}")
            failures += 1
            continue
        violations = check_file(path, FIXTURE_DIR, force_all=True)
        fired = [v for v in violations if v.rule == rule]
        if fired:
            print(f"self-test ok: {name} -> {len(fired)} x [{rule}]")
        else:
            print(f"self-test FAIL: {name} did not trip [{rule}] "
                  f"(got: {[v.rule for v in violations]})")
            failures += 1
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default=str(SRC_ROOT),
                        help="directory tree to lint (default: src/repro)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on its fixture")
    parser.add_argument("--dump-allowlist", action="store_true",
                        help="print current materialize sites")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    root = Path(args.root).resolve()
    if args.dump_allowlist:
        return dump_allowlist(root)
    violations = lint_tree(root)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
