"""Interprocedural lock-state analysis.

Two diagnostics come out of the lock facts:

**ENG101 — lock-order inversion.** Every acquisition contributes edges
``held → acquired`` to one global *acquired-before* relation:

* *intra* edges from the facts pass: the locks held (via enclosing
  ``with`` blocks and earlier explicit acquisitions) when a function
  acquires another lock — augmented with the locks still held by
  earlier calls in the same function (``exit_holds``), which is how
  ``Transaction.commit``'s table locks (taken by ``self.lock(...)``
  helper calls) order before the commit mutex;
* *inter* edges from call sites: holding ``H`` while calling a function
  that may transitively take ``L`` orders every ``h ∈ H`` before ``L``.

A cycle in that relation is two code paths that can each hold one lock
of the cycle while waiting for the next — a deadlock recipe. Self-edges
on the abstract table-lock id are excluded: all table locks share one
node, and ordering *within* the family is the per-module linter's
sorted-acquisition rule.

**ENG102 — blocking under the commit mutex.** A blocking effect (sleep,
file I/O, fsync, condition wait) performed or reachable while a
configured commit lock is held stalls every concurrent committer and
snapshot acquisition. Plain nested ``with <mutex>`` is not counted here
(see ENG101); the finding is about unbounded or slow waits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .callgraph import BLOCKING_LABELS, Program
from .diagnostics import Finding
from .effects import Origin, exit_holds, may_take, transitive_effects


@dataclass
class LockGraph:
    """The global acquired-before relation, with one example site per
    edge for reporting."""

    #: lock -> set of locks acquired while it is held
    edges: dict[str, set] = field(default_factory=dict)
    #: (held, acquired) -> (qualname, rel_path, line) example
    examples: dict[tuple, tuple] = field(default_factory=dict)

    def add(self, held: str, acquired: str, qualname: str, rel_path: str,
            line: int) -> None:
        if held == acquired:
            return  # self-edge: the abstract table-lock family
        self.edges.setdefault(held, set()).add(acquired)
        self.edges.setdefault(acquired, set())
        self.examples.setdefault((held, acquired),
                                 (qualname, rel_path, line))

    def cycles(self) -> list[list[str]]:
        """Elementary cycles found by DFS (deduplicated by rotation)."""
        found: dict[tuple, list[str]] = {}
        for start in sorted(self.edges):
            stack = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for succ in sorted(self.edges.get(node, ())):
                    if succ == start and len(path) > 1:
                        # Canonical rotation: start at the least lock.
                        pivot = path.index(min(path))
                        cycle = path[pivot:] + path[:pivot]
                        found.setdefault(tuple(cycle), cycle)
                    elif succ not in path and succ > start:
                        # Only explore nodes above the start: every
                        # cycle is found from its least node.
                        stack.append((succ, path + [succ]))
        return [cycle for __, cycle in sorted(found.items())]


def build_lock_graph(program: Program) -> LockGraph:
    graph = LockGraph()
    takes = may_take(program)
    carried = exit_holds(program)
    for qualname, info in program.functions.items():
        facts = program.facts[qualname]
        # Events in source order: explicit acquisitions made by earlier
        # calls (e.g. self.lock(...)) are held at later acquisitions.
        events: list[tuple] = [("acq", acq.line, acq) for acq in
                               facts.acquisitions]
        events += [("call", site.line, site) for site in facts.calls
                   if site.callee is not None]
        extra: set = set()
        for kind, __, event in sorted(events, key=lambda item: item[1]):
            if kind == "acq":
                for held in set(event.held) | extra:
                    graph.add(held, event.lock, qualname, info.rel_path,
                              event.line)
            else:
                held_here = set(event.held) | extra
                for taken in takes.get(event.callee, ()):
                    for held in held_here:
                        graph.add(held, taken, qualname, info.rel_path,
                                  event.line)
                extra |= carried.get(event.callee, set())
    return graph


def lock_order_findings(program: Program,
                        graph: LockGraph) -> list[Finding]:
    findings = []
    for cycle in graph.cycles():
        pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
        sites = []
        for held, acquired in pairs:
            qualname, rel_path, line = graph.examples[(held, acquired)]
            sites.append(f"{held}->{acquired} in {qualname} "
                         f"({rel_path}:{line})")
        qualname, rel_path, line = graph.examples[pairs[0]]
        findings.append(Finding(
            code="ENG101",
            path=rel_path,
            line=line,
            function=qualname,
            message=("lock-order inversion: "
                     + " -> ".join(cycle + [cycle[0]])
                     + "; " + "; ".join(sites)),
            hint=("pick one global order for these locks and acquire "
                  "them in it on every path"),
            detail="->".join(cycle),
        ))
    return findings


def blocking_findings(program: Program) -> list[Finding]:
    """ENG102: blocking effects performed or reachable while a commit
    lock is held."""
    commit_locks = program.config.commit_locks
    if not commit_locks:
        return []
    effects = transitive_effects(program)
    findings: list[Finding] = []
    seen: set = set()

    def report(qualname: str, rel_path: str, line: int, origin: Origin,
               held: frozenset) -> None:
        lock = sorted(commit_locks & set(held))[0]
        key = (qualname, origin.path, origin.what, origin.qualname)
        if key in seen:
            return
        seen.add(key)
        findings.append(Finding(
            code="ENG102",
            path=rel_path,
            line=line,
            function=qualname,
            message=(f"blocking operation ({origin.describe()}) "
                     f"reachable while holding {lock}"),
            hint=("move the blocking work outside the commit critical "
                  "section, or justify with an eng pragma at this line"),
            detail=f"{origin.qualname}|{origin.what}",
        ))

    for qualname, info in program.functions.items():
        facts = program.facts[qualname]
        for eff in facts.effects:
            if eff.label in BLOCKING_LABELS and commit_locks & set(eff.held):
                report(qualname, info.rel_path, eff.line,
                       Origin(qualname, info.rel_path, eff.line, eff.what),
                       eff.held)
        for site in facts.calls:
            if site.callee is None or not commit_locks & set(site.held):
                continue
            callee_effects = effects.get(site.callee, {})
            for label in sorted(BLOCKING_LABELS & set(callee_effects)):
                report(qualname, info.rel_path, site.line,
                       callee_effects[label], site.held)
    return findings
