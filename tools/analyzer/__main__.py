"""``python -m tools.analyzer`` entry point."""

import sys

from .driver import main

sys.exit(main())
