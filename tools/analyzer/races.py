"""Static race detection (ENG104).

The model: each configured *thread* (server pool worker, background
checkpointer, scheduler loop) enters the program at its entry-point
functions. A class is **shared** when methods of it are reachable from
two different threads' closures — its instances may be touched
concurrently. A ``self.attr = ...`` write in a shared class's method is
a race candidate unless some known lock is held on *every* path to it:

* locks held locally (enclosing ``with`` blocks in the method), plus
* locks held at every call site leading to the method — the
  *must-hold-at-entry* set, computed as an intersection fixpoint over
  the call graph: ``H(f) = ⋂ over call sites s of f (held(s) ∪
  H(caller(s)))``, with ``H(entry) = ∅``.

Escapes, in decreasing specificity: a ``# eng: allow-ENG104 (reason)``
pragma on the write line; a ``race_allow`` config entry for the
attribute; the class being configured *thread-confined* (per-statement
/ per-transaction objects a serialization lock already protects); the
write sitting in a lifecycle method (``__init__``/``open``/``close``),
which runs before or after the object is shared.

This is deliberately a *may*-analysis on sharing and a *must*-analysis
on protection: it over-reports rather than under-reports, and the
baseline plus pragmas absorb the audited remainder.
"""

from __future__ import annotations

from .callgraph import Program
from .diagnostics import Finding
from .effects import reachable_from


def must_held_at_entry(program: Program,
                       entries: set) -> dict[str, frozenset]:
    """Intersection-over-call-sites fixpoint of locks held on every
    path into each function. Functions not yet reached are ⊤ (absent)."""
    held: dict[str, frozenset] = {entry: frozenset() for entry in entries
                                  if entry in program.functions}
    sites_by_callee: dict[str, list] = {}
    for site in program.resolved_edges():
        sites_by_callee.setdefault(site.callee, []).append(site)
    changed = True
    while changed:
        changed = False
        for callee, sites in sites_by_callee.items():
            incoming = None
            for site in sites:
                caller_held = held.get(site.caller)
                if caller_held is None:
                    continue  # caller not reached yet: no constraint
                path_held = frozenset(site.held) | caller_held
                incoming = (path_held if incoming is None
                            else incoming & path_held)
            if incoming is None:
                continue
            if callee in entries:
                # An entry point is entered lock-free by its thread no
                # matter what internal callers also hold.
                incoming = frozenset()
            old = held.get(callee)
            merged = incoming if old is None else old & incoming
            if merged != old:
                held[callee] = merged
                changed = True
    return held


def race_findings(program: Program) -> list[Finding]:
    config = program.config
    if not config.entry_points:
        return []
    # Which threads reach which functions.
    closures = {thread: reachable_from(program, entries)
                for thread, entries in config.entry_points.items()}
    all_entries = {entry for entries in config.entry_points.values()
                   for entry in entries}
    reached = set().union(*closures.values()) if closures else set()

    # A class is shared when ≥ 2 threads reach methods of it.
    classes_by_thread: dict[str, set] = {}
    for thread, closure in closures.items():
        classes_by_thread[thread] = {
            program.functions[q].cls for q in closure
            if program.functions[q].cls is not None}
    shared: set = set()
    for cls_name in set().union(*classes_by_thread.values()) \
            if classes_by_thread else set():
        threads = [thread for thread, classes in classes_by_thread.items()
                   if cls_name in classes]
        if len(threads) >= 2 and cls_name not in config.thread_confined:
            shared.add(cls_name)

    held_at_entry = must_held_at_entry(program, all_entries)
    findings: list[Finding] = []
    for qualname in sorted(reached):
        info = program.functions[qualname]
        if info.cls is None or info.cls not in shared:
            continue
        # Lifecycle methods run before/after the object is shared.
        leaf = info.name.split(".")[-1]
        if leaf in config.init_methods:
            continue
        entry_held = held_at_entry.get(qualname, frozenset())
        for write in program.facts[qualname].writes:
            attr_key = f"{write.cls}.{write.attr}"
            if attr_key in config.race_allow:
                continue
            if program.pragmas[info.rel_path].suppresses(write.line,
                                                         "ENG104"):
                continue
            if set(write.held) | set(entry_held):
                continue  # some known lock protects every path
            threads = sorted(thread
                             for thread, closure in closures.items()
                             if qualname in closure)
            findings.append(Finding(
                code="ENG104",
                path=info.rel_path,
                line=write.line,
                function=qualname,
                message=(f"unsynchronized write to shared attribute "
                         f"{attr_key} (class reachable from threads: "
                         f"{', '.join(threads)}) with no lock held on "
                         f"any path"),
                hint=("guard the write with the owning object's mutex, "
                      "mark the class thread-confined in the analyzer "
                      "config, or justify with "
                      "'# eng: allow-ENG104 (reason)'"),
                detail=attr_key,
            ))
    return findings
