"""Shared diagnostic plumbing for the static-analysis tool layer.

Two tools build on this module:

* ``tools/lint_engine.py`` — the per-module engine-invariant linter
  (rule names like ``wall-clock``, pragma tag ``lint``);
* ``tools/analyzer`` — the whole-program concurrency analyzer
  (``ENG1xx`` codes, pragma tag ``eng``).

Both share the same violation shape, the same inline-pragma suppression
grammar, and (for the analyzer) a fingerprint-based baseline that
grandfathers pre-existing findings so CI only blocks regressions.

Pragma grammar::

    some_call()  # lint: allow-wall-clock (reason why this is fine)
    self.x = n   # eng: allow-ENG104 (single-threaded setup phase)

A pragma suppresses exactly one rule on exactly its own line. The
:class:`PragmaIndex` records which pragmas actually suppressed
something, so the linter can report *stale* pragmas — a justification
comment left behind after the violating code was fixed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

#: ``# <tag>: allow-<rule> (optional reason)``
PRAGMA_PATTERN = re.compile(
    r"#\s*(?P<tag>lint|eng):\s*allow-(?P<rule>[A-Za-z0-9_-]+)")


@dataclass(frozen=True)
class Violation:
    """One per-module lint finding (``path:line: [rule] message``)."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Finding:
    """One whole-program analyzer finding (a typed ``ENG1xx`` diagnostic).

    ``detail`` is a short, line-number-free key describing the finding's
    subject (a lock cycle, a written attribute, a call edge); together
    with the code, path, and function it forms the :attr:`fingerprint`
    used by the baseline, so findings survive unrelated line drift.
    """

    code: str           # "ENG101" ... "ENG105"
    path: str           # repo-relative source path of the primary span
    line: int
    function: str       # qualified name of the enclosing function
    message: str
    hint: str = ""      # one-line fix suggestion
    detail: str = ""    # stable subject key (no line numbers)

    @property
    def fingerprint(self) -> str:
        return f"{self.code}|{self.path}|{self.function}|{self.detail}"

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.code}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def render_github(self) -> str:
        """GitHub Actions workflow-command annotation format."""
        message = self.message.replace("%", "%25").replace("\n", "%0A")
        return (f"::error file={self.path},line={self.line},"
                f"title={self.code}::{message}")


class PragmaIndex:
    """Inline suppression pragmas of one source file, usage-tracked.

    ``suppresses(line, rule)`` is the only query: it returns whether the
    line carries an ``allow-<rule>`` pragma of this index's tag, and
    marks that pragma as *used*. After all rules ran, :meth:`unused`
    lists the pragmas that never suppressed anything — stale
    justifications that should be deleted with the next edit.
    """

    def __init__(self, source_lines: Sequence[str], tag: str = "lint"):
        self.tag = tag
        #: (line, rule) -> used?
        self._pragmas: dict[tuple[int, str], bool] = {}
        for lineno, text in enumerate(source_lines, start=1):
            for match in PRAGMA_PATTERN.finditer(text):
                if match.group("tag") == tag:
                    self._pragmas[(lineno, match.group("rule"))] = False

    def suppresses(self, line: int, rule: str) -> bool:
        key = (line, rule)
        if key in self._pragmas:
            self._pragmas[key] = True
            return True
        return False

    def has_pragma(self, line: int, rule: str) -> bool:
        """Peek without marking the pragma used."""
        return (line, rule) in self._pragmas

    def unused(self) -> list[tuple[int, str]]:
        return sorted(key for key, used in self._pragmas.items()
                      if not used)


# ---------------------------------------------------------------------------
# Baseline files
# ---------------------------------------------------------------------------

BASELINE_HEADER = """\
# Grandfathered findings of the whole-program analyzer
# (tools/analyzer). One fingerprint per line:
#
#     CODE|path|function|detail
#
# The gated run suppresses exactly these findings, so CI blocks only
# regressions. Regenerate after deliberate changes with:
#
#     python -m tools.analyzer --write-baseline
#
# Shrinking this file is progress; growing it needs review.
"""


def load_baseline(path: Path) -> set[str]:
    """Read a baseline file into a set of fingerprints (missing file =
    empty baseline)."""
    if not path.exists():
        return set()
    fingerprints: set[str] = set()
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            fingerprints.add(line)
    return fingerprints


def save_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write the findings' fingerprints as the new baseline; returns the
    number of entries written."""
    fingerprints = sorted({finding.fingerprint for finding in findings})
    body = BASELINE_HEADER + "".join(f"{fp}\n" for fp in fingerprints)
    path.write_text(body)
    return len(fingerprints)


def split_by_baseline(findings: Sequence[Finding], baseline: set[str],
                      ) -> tuple[list[Finding], list[Finding]]:
    """(new, grandfathered) partition of ``findings``."""
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        (old if finding.fingerprint in baseline else new).append(finding)
    return new, old


def has_pragma(source_lines: Sequence[str], line: int, rule: str,
               tag: str = "lint") -> bool:
    """One-shot pragma check (no usage tracking) — kept for callers that
    do not need stale-pragma reporting."""
    if 1 <= line <= len(source_lines):
        for match in PRAGMA_PATTERN.finditer(source_lines[line - 1]):
            if match.group("tag") == tag and match.group("rule") == rule:
                return True
    return False


__all__ = [
    "Finding", "PragmaIndex", "Violation", "has_pragma", "load_baseline",
    "save_baseline", "split_by_baseline", "PRAGMA_PATTERN",
    "BASELINE_HEADER",
]
