"""Call-graph construction with class-method resolution.

The whole-program analyses (lock-state dataflow, effect inference, race
detection) all run over one shared program model built here:

* every module under the analysis root is parsed and indexed: classes
  (with their base classes, ``__init__``-inferred attribute types, and
  lock attributes), functions and methods (nested functions included,
  as ``outer.<name>``), and per-module import aliases;
* a lightweight flow-insensitive **type environment** per function maps
  names to classes: parameter annotations (``Optional``/``"quoted"``/
  ``X | None`` unwrapped), ``self``, constructor-call assignments,
  attribute loads through known attribute types, and call results
  through return annotations;
* attribute calls resolve through the inferred receiver type and its
  base-class chain. Receivers the types cannot reach fall back to the
  config's **polymorphic seam table** (``scan`` → every snapshot
  resolver, accumulator protocol → every Accumulator subclass) and,
  last, to a unique-definer rule: if exactly one known class defines
  the method and the name is not a common built-in collision
  (``append``, ``get``, ...), the call binds to it.

Alongside the edges, one sequential abstract-interpretation pass per
function records the **facts** the dataflow analyses consume: call
sites with the set of locks held at each, lock acquisitions (``with``
blocks exactly scoped; explicit ``LockManager.acquire``-style calls
held to function end, a documented over-approximation), ``self.attr``
writes, and direct effects (wall-clock reads, sleeps, file I/O, fsync,
condition waits, row materialization) with their source lines. Effects
whose line carries the matching suppression pragma are *not* recorded —
a justified source does not taint its callers.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from .config import AnalyzerConfig
from .diagnostics import PragmaIndex

#: Method names too generic for unique-definer fallback resolution: a
#: receiver of unknown type calling one of these is far more likely a
#: builtin container/file/executor than the one engine class defining it.
GENERIC_METHOD_NAMES = frozenset({
    "append", "extend", "add", "get", "pop", "items", "keys", "values",
    "update", "copy", "clear", "sort", "join", "split", "strip", "close",
    "read", "write", "flush", "submit", "result", "acquire", "release",
    "wait", "notify", "notify_all", "put", "setdefault", "remove",
    "index", "count", "format", "encode", "decode", "open", "send",
    "commit", "rollback", "begin", "execute", "run", "next", "reset",
})

#: Wall-clock reads (mirrors the per-module linter's table).
CLOCK_CALLS = {
    "time": {"time", "monotonic", "sleep", "perf_counter", "localtime",
             "gmtime", "process_time"},
    "datetime": {"now", "utcnow", "today"},
}

#: ``os.<attr>(...)`` calls that touch the filesystem.
IO_OS_CALLS = {"open", "fdopen", "write", "replace", "truncate", "fsync",
               "unlink", "remove", "rename", "makedirs", "listdir"}
IO_PATH_METHODS = {"write_text", "write_bytes", "read_text", "read_bytes"}

#: Effect labels.
WALL_CLOCK = "wall-clock"
SLEEP = "sleep"
IO = "io"
FSYNC = "fsync"
LOCK_WAIT = "lock-wait"
MATERIALIZE = "materialize"

#: Labels that can stall a thread (the ENG102 blocking set). A plain
#: ``with mutex:`` is deliberately *not* here — mutex-vs-mutex waiting
#: is the acquired-before graph's concern (ENG101), not a blocking
#: effect; counting it would flag every nested critical section.
BLOCKING_LABELS = frozenset({SLEEP, IO, FSYNC, LOCK_WAIT})


@dataclass
class FunctionInfo:
    qualname: str               # "txn.manager.Transaction.commit"
    module: str                 # "txn.manager"
    rel_path: str               # "txn/manager.py"
    cls: Optional[str]          # bare class name, None for free functions
    name: str                   # "commit"
    node: ast.AST               # FunctionDef / AsyncFunctionDef
    lineno: int
    returns: Optional[str] = None   # bare class name of return annotation


@dataclass
class ClassInfo:
    name: str                   # bare name
    qualname: str               # "txn.manager.Transaction"
    module: str
    rel_path: str
    node: ast.ClassDef
    bases: list[str]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> bare class name (from __init__ assignments and
    #: annotated ``self.x: T`` statements)
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attribute name -> lock id ("Class.attr") for threading.Lock /
    #: RLock / Condition attributes
    locks: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    caller: str
    callee: Optional[str]       # resolved qualname, None if unresolved
    raw: str                    # source-ish spelling ("relation.pairs")
    line: int
    held: frozenset             # lock ids held at the call


@dataclass(frozen=True)
class Acquisition:
    lock: str                   # lock id
    line: int
    held: frozenset             # lock ids already held when acquiring
    via_with: bool              # with-block (scoped) vs. explicit call


@dataclass(frozen=True)
class AttrWrite:
    cls: str                    # bare class name of ``self``
    attr: str
    line: int
    held: frozenset


@dataclass(frozen=True)
class DirectEffect:
    label: str
    line: int
    held: frozenset
    what: str                   # human-readable source ("time.sleep()")


@dataclass
class FunctionFacts:
    calls: list[CallSite] = field(default_factory=list)
    acquisitions: list[Acquisition] = field(default_factory=list)
    writes: list[AttrWrite] = field(default_factory=list)
    effects: list[DirectEffect] = field(default_factory=list)


class Program:
    """The indexed program: modules, classes, functions, and facts."""

    def __init__(self, root: Path, config: AnalyzerConfig):
        self.root = root
        self.config = config
        self.modules: dict[str, ast.Module] = {}
        self.module_paths: dict[str, str] = {}      # module -> rel_path
        self.source_lines: dict[str, list[str]] = {}  # rel_path -> lines
        self.pragmas: dict[str, PragmaIndex] = {}   # rel_path -> eng index
        self.lint_pragmas: dict[str, PragmaIndex] = {}  # rel_path -> lint
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}     # by bare name
        self.imports: dict[str, dict[str, str]] = {}  # mod -> alias -> target
        self.facts: dict[str, FunctionFacts] = {}
        self._load()
        self._infer_class_attributes()
        self._resolve_seams()
        self._compute_facts()

    # -- loading and indexing ------------------------------------------------

    def _load(self) -> None:
        for path in sorted(self.root.rglob("*.py")):
            rel_path = path.relative_to(self.root).as_posix()
            module = rel_path[:-3].replace("/", ".")
            if module.endswith(".__init__"):
                module = module[:-len(".__init__")]
            source = path.read_text()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue
            lines = source.splitlines()
            self.modules[module] = tree
            self.module_paths[module] = rel_path
            self.source_lines[rel_path] = lines
            self.pragmas[rel_path] = PragmaIndex(lines, tag="eng")
            self.lint_pragmas[rel_path] = PragmaIndex(lines, tag="lint")
            self.imports[module] = self._index_imports(tree)
            self._index_module(module, rel_path, tree)

    @staticmethod
    def _index_imports(tree: ast.Module) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    aliases[alias.asname or alias.name.split(".")[0]] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"
        return aliases

    def _index_module(self, module: str, rel_path: str,
                      tree: ast.Module) -> None:
        def add_function(node: ast.AST, cls: Optional[ClassInfo],
                         prefix: str) -> None:
            name = f"{prefix}{node.name}" if prefix else node.name
            qualname = (f"{module}.{cls.name}.{name}" if cls
                        else f"{module}.{name}")
            info = FunctionInfo(
                qualname=qualname, module=module, rel_path=rel_path,
                cls=cls.name if cls else None, name=name, node=node,
                lineno=node.lineno,
                returns=_annotation_class(node.returns))
            self.functions[qualname] = info
            if cls is not None and not prefix:
                cls.methods[node.name] = info
            # Nested defs get their own entry ("outer.<inner>"); the
            # facts pass adds an implicit call edge outer -> inner, so
            # closures handed to pools/schedulers stay reachable.
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    add_function(child, cls, f"{name}.")

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(node, None, "")
            elif isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    name=node.name, qualname=f"{module}.{node.name}",
                    module=module, rel_path=rel_path, node=node,
                    bases=[base.id for base in node.bases
                           if isinstance(base, ast.Name)])
                # First definition wins on bare-name collisions; the
                # engine's class names are unique in practice.
                self.classes.setdefault(node.name, info)
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        add_function(child, info, "")

    # -- class attribute / lock inference -------------------------------------

    def _infer_class_attributes(self) -> None:
        for cls in self.classes.values():
            for method_name in ("__init__", "open"):
                method = cls.methods.get(method_name)
                if method is None:
                    continue
                env = self._parameter_env(method)
                for node in ast.walk(method.node):
                    target: Optional[ast.expr] = None
                    value: Optional[ast.expr] = None
                    annotation: Optional[str] = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                        annotation = _annotation_class(node.annotation)
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    attr = target.attr
                    lock_kind = _lock_constructor(value)
                    if lock_kind is not None:
                        cls.locks[attr] = f"{cls.name}.{attr}"
                        continue
                    inferred = annotation or self._infer_expr_type(
                        value, env, cls)
                    if inferred is not None:
                        cls.attr_types.setdefault(attr, inferred)

    def _parameter_env(self, func: FunctionInfo) -> dict[str, str]:
        env: dict[str, str] = {}
        node = func.node
        args = list(node.args.posonlyargs) + list(node.args.args) \
            + list(node.args.kwonlyargs)
        for arg in args:
            inferred = _annotation_class(arg.annotation)
            if inferred is not None:
                env[arg.arg] = inferred
        if func.cls is not None and args and args[0].arg == "self":
            env["self"] = func.cls
        return env

    # -- type resolution --------------------------------------------------------

    def class_of(self, name: Optional[str]) -> Optional[ClassInfo]:
        if name is None:
            return None
        return self.classes.get(name)

    def attr_type(self, cls_name: str, attr: str) -> Optional[str]:
        """Type of ``<instance of cls>.<attr>``, through the base chain
        and the config's manual binding table."""
        binding = self.config.attr_bindings.get(f"{cls_name}.{attr}")
        if binding is not None:
            return binding
        seen: set[str] = set()
        stack = [cls_name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            stack.extend(info.bases)
        return None

    def lock_of(self, cls_name: str, attr: str) -> Optional[str]:
        seen: set[str] = set()
        stack = [cls_name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if attr in info.locks:
                return info.locks[attr]
            stack.extend(info.bases)
        return None

    def method_of(self, cls_name: str, method: str) -> Optional[FunctionInfo]:
        seen: set[str] = set()
        stack = [cls_name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack.extend(info.bases)
        return None

    def _infer_expr_type(self, expr: Optional[ast.expr],
                         env: dict[str, str],
                         cls: Optional[ClassInfo]) -> Optional[str]:
        """Bare class name of ``expr``, or None."""
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            if expr.id in self.classes:
                return None  # the class object itself, not an instance
            return None
        if isinstance(expr, ast.Attribute):
            base = self._infer_expr_type(expr.value, env, cls)
            if base is not None:
                return self.attr_type(base, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            # Constructor call -> instance of the class.
            if isinstance(expr.func, ast.Name) and expr.func.id in self.classes:
                return expr.func.id
            # Resolved call -> return annotation.
            resolved = self._resolve_call_target(expr, env, cls)
            if resolved is not None:
                info = self.functions.get(resolved)
                if info is not None:
                    return info.returns
            return None
        return None

    def _resolve_module_name(self, module: str, name: str) -> Optional[str]:
        """Resolve a bare name in ``module`` to a function qualname."""
        if f"{module}.{name}" in self.functions:
            return f"{module}.{name}"
        target = self.imports.get(module, {}).get(name)
        if target is not None:
            # "pkg.mod.func" — normalize against the analysis root's
            # module namespace by trying progressively shorter prefixes.
            candidates = [target]
            parts = target.split(".")
            for start in range(1, len(parts)):
                candidates.append(".".join(parts[start:]))
            for candidate in candidates:
                if candidate in self.functions:
                    return candidate
        return None

    def _resolve_call_target(self, call: ast.Call, env: dict[str, str],
                             cls: Optional[ClassInfo]) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            # Module is carried via env["__module__"] (set by the walker).
            module_name = env.get("__module__")
            if module_name is not None:
                resolved = self._resolve_module_name(module_name, func.id)
                if resolved is not None:
                    return resolved
            if func.id in self.classes:
                ctor = self.method_of(func.id, "__init__")
                return ctor.qualname if ctor is not None else None
            return None
        if isinstance(func, ast.Attribute):
            receiver = self._infer_expr_type(func.value, env, cls)
            if receiver is not None:
                method = self.method_of(receiver, func.attr)
                if method is not None:
                    return method.qualname
            # Module-attribute call: ``codec.encode(...)``.
            if isinstance(func.value, ast.Name):
                module_name = env.get("__module__")
                alias = self.imports.get(module_name or "", {}) \
                    .get(func.value.id)
                if alias is not None:
                    parts = alias.split(".")
                    for start in range(len(parts)):
                        candidate = ".".join(parts[start:] + [func.attr])
                        if candidate in self.functions:
                            return candidate
            return None
        return None

    # -- polymorphic seams -------------------------------------------------------

    def _resolve_seams(self) -> None:
        """Expand the config's seam table into concrete qualnames."""
        self.seams: dict[str, list[str]] = {}
        for method, classes in self.config.method_seams.items():
            targets: list[str] = []
            expanded: list[str] = []
            for cls_name in classes:
                if cls_name.startswith("subclasses-of:"):
                    root = cls_name[len("subclasses-of:"):]
                    expanded.extend(
                        name for name, info in self.classes.items()
                        if name != root and self._derives_from(name, root))
                else:
                    expanded.append(cls_name)
            for cls_name in expanded:
                info = self.classes.get(cls_name)
                if info is None:
                    continue
                method_info = self.method_of(cls_name, method)
                if method_info is not None:
                    targets.append(method_info.qualname)
            if targets:
                self.seams[method] = sorted(set(targets))

    def _derives_from(self, cls_name: str, root: str) -> bool:
        seen: set[str] = set()
        stack = [cls_name]
        while stack:
            current = stack.pop()
            if current == root:
                return True
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is not None:
                stack.extend(info.bases)
        return False

    def _fallback_targets(self, method: str) -> list[str]:
        """Seam table first; then the unique-definer rule."""
        if method in self.seams:
            return self.seams[method]
        if method in GENERIC_METHOD_NAMES:
            return []
        definers = [info.methods[method].qualname
                    for info in self.classes.values()
                    if method in info.methods]
        # Bare-name class index dedups already; require a unique definer.
        return definers if len(definers) == 1 else []

    # -- the facts pass -----------------------------------------------------------

    def _compute_facts(self) -> None:
        for qualname, info in self.functions.items():
            self.facts[qualname] = self._function_facts(info)

    def _function_facts(self, info: FunctionInfo) -> FunctionFacts:
        facts = FunctionFacts()
        env = self._parameter_env(info)
        env["__module__"] = info.module
        cls = self.classes.get(info.cls) if info.cls else None
        pragmas = self.lint_pragmas[info.rel_path]
        config = self.config

        def effect(label: str, line: int, held: frozenset,
                   what: str, pragma_rule: Optional[str] = None) -> None:
            # The clock abstraction is where wall time is *supposed* to
            # be read; its reads are not leaks.
            if label == WALL_CLOCK and config.clock_exempt_paths \
                    and info.rel_path.startswith(config.clock_exempt_paths):
                return
            # A pragma at the source line justifies the effect for the
            # whole program: it neither fires locally (the linter's job)
            # nor taints callers transitively.
            if pragma_rule is not None and pragmas.has_pragma(line,
                                                              pragma_rule):
                return
            if self.pragmas[info.rel_path].has_pragma(line, label):
                return
            facts.effects.append(DirectEffect(label, line, held, what))

        def lock_of_expr(expr: ast.expr) -> Optional[str]:
            if isinstance(expr, ast.Attribute):
                base = self._infer_expr_type(expr.value, env, cls)
                if base is not None:
                    return self.lock_of(base, expr.attr)
                # Unqualified fallback: a terminal attribute that is a
                # configured global lock name (e.g. ``commit_mutex``)
                # identifies the lock even when the receiver chain is
                # not typeable.
                if expr.attr in config.global_lock_attrs:
                    return config.global_lock_attrs[expr.attr]
            return None

        def visit_expr(node: ast.AST, held: frozenset) -> None:
            """Record calls/effects/writes in an expression subtree."""
            for child in ast.walk(node):
                if isinstance(child, ast.Call):
                    self._record_call(child, env, cls, info, held, facts,
                                      effect)
                elif (isinstance(child, ast.Attribute)
                        and isinstance(child.ctx, ast.Load)
                        and child.attr == "rows"):
                    receiver = self._infer_expr_type(child.value, env, cls)
                    if receiver in config.materialize_classes:
                        effect(MATERIALIZE, child.lineno, held,
                               f"{receiver}.rows", pragma_rule="materialize")

        def record_write(target: ast.expr, line: int,
                         held: frozenset) -> None:
            if (info.cls is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                facts.writes.append(AttrWrite(info.cls, target.attr, line,
                                              held))

        def bind_assignment(stmt: ast.stmt) -> None:
            """Flow-insensitive local type bindings."""
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                inferred = self._infer_expr_type(stmt.value, env, cls)
                if inferred is not None:
                    env[stmt.targets[0].id] = inferred
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                inferred = _annotation_class(stmt.annotation)
                if inferred is not None:
                    env[stmt.target.id] = inferred

        def walk(stmts: list[ast.stmt], held: frozenset) -> frozenset:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # Nested def: implicit call edge (the closure is
                    # invoked by whoever receives it, charged here).
                    nested = f"{info.qualname}.{stmt.name}"
                    if nested in self.functions:
                        facts.calls.append(CallSite(
                            info.qualname, nested, f"<def {stmt.name}>",
                            stmt.lineno, held))
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    inner = held
                    for item in stmt.items:
                        visit_expr(item.context_expr, held)
                        lock = lock_of_expr(item.context_expr)
                        if lock is not None:
                            facts.acquisitions.append(Acquisition(
                                lock, stmt.lineno, inner, True))
                            inner = inner | {lock}
                    walk(stmt.body, inner)
                    continue
                bind_assignment(stmt)
                # Expression-bearing parts of the statement itself.
                for expr in _statement_expressions(stmt):
                    visit_expr(expr, held)
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        record_write(target, stmt.lineno, held)
                elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                    record_write(stmt.target, stmt.lineno, held)
                # Acquire-style calls extend the held set for the rest
                # of the function (may-hold; releases are not modeled).
                for expr in _statement_expressions(stmt):
                    for call in (c for c in ast.walk(expr)
                                 if isinstance(c, ast.Call)):
                        acquired = self._acquired_lock(call, env, cls)
                        if acquired is not None:
                            facts.acquisitions.append(Acquisition(
                                acquired, call.lineno, held, False))
                            held = held | {acquired}
                # Recurse into compound statements.
                for body in _statement_bodies(stmt):
                    held = walk(body, held)
            return held

        walk(list(info.node.body), frozenset())
        return facts

    def _record_call(self, call: ast.Call, env: dict[str, str],
                     cls: Optional[ClassInfo], info: FunctionInfo,
                     held: frozenset, facts: FunctionFacts,
                     effect) -> None:
        func = call.func
        raw = _call_repr(func)
        line = call.lineno
        # Direct effects first (they are calls too).
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            module, attr = func.value.id, func.attr
            if module in CLOCK_CALLS and attr in CLOCK_CALLS[module]:
                effect(WALL_CLOCK, line, held, f"{module}.{attr}()",
                       pragma_rule="wall-clock")
                if attr == "sleep":
                    effect(SLEEP, line, held, "time.sleep()")
                return
            if module == "os" and attr in IO_OS_CALLS:
                label = FSYNC if attr == "fsync" else IO
                effect(label, line, held, f"os.{attr}()")
                return
        if isinstance(func, ast.Name):
            if func.id == "open":
                effect(IO, line, held, "open()")
                return
            module_name = env.get("__module__", "")
            imported = self.imports.get(module_name, {}).get(func.id, "")
            root_module = imported.split(".")[0] if imported else ""
            if root_module == "time" and imported.endswith(
                    tuple(CLOCK_CALLS["time"])):
                effect(WALL_CLOCK, line, held, f"{func.id}()",
                       pragma_rule="wall-clock")
                return
        if isinstance(func, ast.Attribute):
            if func.attr in IO_PATH_METHODS:
                effect(IO, line, held, f".{func.attr}()")
                return
            if func.attr == "pairs":
                effect(MATERIALIZE, line, held, ".pairs()",
                       pragma_rule="materialize")
                # fall through: also record the call edge
            if func.attr == "wait" and isinstance(func.value,
                                                  ast.Attribute):
                # ``self._condition.wait(...)``: a wait on a known lock
                # attribute (Condition) is a blocking point.
                base = self._infer_expr_type(func.value.value, env, cls)
                if base is not None \
                        and self.lock_of(base, func.value.attr) is not None:
                    effect(LOCK_WAIT, line, held, ".wait()")
                    return
        resolved = self._resolve_call_target(call, env, cls)
        if resolved is None and isinstance(func, ast.Attribute):
            targets = self._fallback_targets(func.attr)
            if targets:
                for target in targets:
                    facts.calls.append(CallSite(info.qualname, target,
                                                raw, line, held))
                return
        facts.calls.append(CallSite(info.qualname, resolved, raw, line,
                                    held))

    def _acquired_lock(self, call: ast.Call, env: dict[str, str],
                       cls: Optional[ClassInfo]) -> Optional[str]:
        """Lock id acquired by an explicit call (LockManager.acquire, a
        configured wrapper, or ``.acquire()`` on a known lock
        attribute), else None."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr in self.config.table_lock_methods:
            receiver = self._infer_expr_type(func.value, env, cls)
            if receiver in self.config.table_lock_classes:
                return self.config.table_lock_id
        if func.attr == "acquire" and isinstance(func.value, ast.Attribute):
            base = self._infer_expr_type(func.value.value, env, cls)
            if base is not None:
                return self.lock_of(base, func.value.attr)
        return None

    # -- public helpers -------------------------------------------------------

    def resolved_edges(self) -> Iterator[CallSite]:
        for facts in self.facts.values():
            for site in facts.calls:
                if site.callee is not None:
                    yield site


# ---------------------------------------------------------------------------
# Small AST helpers
# ---------------------------------------------------------------------------


def _annotation_class(annotation: Optional[ast.expr]) -> Optional[str]:
    """Bare class name of an annotation: unwraps Optional[X], "X",
    X | None, and dotted names (keeping the terminal name)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) \
            and isinstance(annotation.value, str):
        text = annotation.value.strip().strip('"\'')
        try:
            annotation = ast.parse(text, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Subscript):
        base = annotation.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return _annotation_class(annotation.slice)
        return None
    if isinstance(annotation, ast.BinOp) \
            and isinstance(annotation.op, ast.BitOr):
        for side in (annotation.left, annotation.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                resolved = _annotation_class(side)
                if resolved is not None:
                    return resolved
    return None


def _lock_constructor(value: Optional[ast.expr]) -> Optional[str]:
    """'Lock'/'RLock'/'Condition' when ``value`` constructs one."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
            and func.value.id == "threading":
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    return name if name in ("Lock", "RLock", "Condition") else None


def _call_repr(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        base = _call_repr(func.value) if isinstance(
            func.value, (ast.Name, ast.Attribute)) else "?"
        return f"{base}.{func.attr}"
    return "<dynamic>"


def _statement_expressions(stmt: ast.stmt) -> list[ast.expr]:
    """The expression parts of a statement (excluding nested statement
    bodies, which the walker handles with their own held sets)."""
    exprs: list[ast.expr] = []
    if isinstance(stmt, ast.Expr):
        exprs.append(stmt.value)
    elif isinstance(stmt, (ast.Assign, ast.AugAssign)):
        if stmt.value is not None:
            exprs.append(stmt.value)
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        exprs.extend(targets)
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            exprs.append(stmt.value)
    elif isinstance(stmt, ast.Return) and stmt.value is not None:
        exprs.append(stmt.value)
    elif isinstance(stmt, (ast.If, ast.While)):
        exprs.append(stmt.test)
    elif isinstance(stmt, ast.For):
        exprs.extend([stmt.iter, stmt.target])
    elif isinstance(stmt, ast.Raise):
        exprs.extend([e for e in (stmt.exc, stmt.cause) if e is not None])
    elif isinstance(stmt, ast.Assert):
        exprs.append(stmt.test)
    elif isinstance(stmt, ast.Delete):
        exprs.extend(stmt.targets)
    return exprs


def _statement_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if block and not isinstance(stmt, (ast.FunctionDef,
                                           ast.AsyncFunctionDef,
                                           ast.ClassDef)):
            if isinstance(block, list) and block \
                    and isinstance(block[0], ast.stmt):
                bodies.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies
