"""Analyzer driver: orchestration, baselines, self-test, CLI.

Usage::

    python -m tools.analyzer                  # gated run on src/repro
    python -m tools.analyzer --all            # ignore the baseline
    python -m tools.analyzer --write-baseline # grandfather current findings
    python -m tools.analyzer --self-test      # prove every rule fires
    python -m tools.analyzer --dump-graph     # print acquired-before edges
    python -m tools.analyzer --github         # CI annotation format

The gated run builds the program model over ``src/repro``, runs the five
rules (ENG101 lock-order inversion, ENG102 blocking under the commit
mutex, ENG103 wall-clock in the scheduler closure, ENG104 unsynchronized
shared write, ENG105 materialization on the streaming hot path), drops
findings justified by an ``# eng: allow-ENG1xx (reason)`` pragma on
their line, splits the rest against the baseline file, and exits
non-zero iff any *new* finding remains.

The self-test runs the same code over the seeded mini-trees in
``tools/analyzer_fixtures/`` — one fixture per rule, plus a clean tree —
each with its own :class:`~tools.analyzer.config.AnalyzerConfig`, and
checks that exactly the expected codes fire.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .callgraph import Program
from .config import AnalyzerConfig, REPRO_CONFIG
from .diagnostics import (Finding, load_baseline, save_baseline,
                          split_by_baseline)
from .effects import materialize_findings, wallclock_findings
from .lockstate import (LockGraph, blocking_findings, build_lock_graph,
                        lock_order_findings)
from .races import race_findings

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_ROOT = REPO_ROOT / "src" / "repro"
DEFAULT_BASELINE = REPO_ROOT / "tools" / "analyzer_baseline.txt"
FIXTURE_ROOT = REPO_ROOT / "tools" / "analyzer_fixtures"

#: All rule codes, in reporting order.
CODES = ("ENG101", "ENG102", "ENG103", "ENG104", "ENG105")


def analyze(root: Path, config: AnalyzerConfig,
            ) -> tuple[Program, LockGraph, list[Finding]]:
    """Build the program model and run every rule. Findings justified by
    an ``# eng: allow-<code>`` pragma on their own line are dropped."""
    program = Program(root, config)
    graph = build_lock_graph(program)
    findings: list[Finding] = []
    findings += lock_order_findings(program, graph)
    findings += blocking_findings(program)
    findings += wallclock_findings(program)
    findings += race_findings(program)
    findings += materialize_findings(program)
    kept = [finding for finding in findings
            if not program.pragmas[finding.path].suppresses(finding.line,
                                                            finding.code)]
    kept.sort(key=lambda f: (f.code, f.path, f.line, f.detail))
    return program, graph, kept


# ---------------------------------------------------------------------------
# Self-test fixtures: one mini-tree per rule, each with its own config.
# ---------------------------------------------------------------------------

_SHARED_WRITE_CONFIG = AnalyzerConfig(
    entry_points={
        "server-worker": ("server.Server.worker_loop",),
        "checkpointer": ("checkpointer.Checkpointer.run",),
    },
)

FIXTURES: dict[str, tuple[AnalyzerConfig, frozenset]] = {
    "lock_cycle": (AnalyzerConfig(), frozenset({"ENG101"})),
    # A partition (table) lock taken inside a worker task submitted
    # under the coordinator's own mutex — the parallel-refresh deadlock
    # shape.
    "worker_lock": (
        AnalyzerConfig(table_lock_methods=frozenset({"acquire"}),
                       table_lock_classes=frozenset({"LockManager"})),
        frozenset({"ENG101"})),
    "blocking_commit": (
        AnalyzerConfig(commit_locks=frozenset({"Manager.commit_mutex"})),
        frozenset({"ENG102"})),
    "sched_clock": (AnalyzerConfig(scheduler_paths=("scheduler/",)),
                    frozenset({"ENG103"})),
    "shared_write": (_SHARED_WRITE_CONFIG, frozenset({"ENG104"})),
    "hot_materialize": (
        AnalyzerConfig(hot_path_roots=("stream.stream_rows",),
                       materialize_classes=frozenset({"Relation"})),
        frozenset({"ENG105"})),
    "clean": (AnalyzerConfig(scheduler_paths=("scheduler/",),
                             commit_locks=frozenset(
                                 {"Manager.commit_mutex"})),
              frozenset()),
}


def fixture_findings(name: str,
                     root: Optional[Path] = None) -> list[Finding]:
    """Run one fixture's analysis (``root`` overrides the fixture dir,
    for mutation tests over copies)."""
    config, __ = FIXTURES[name]
    __, __, findings = analyze(root or (FIXTURE_ROOT / name), config)
    return findings


def self_test() -> int:
    """Prove every rule fires on its seeded fixture and stays quiet on
    the clean tree. Returns a process exit code."""
    failures = 0
    for name, (config, expected) in sorted(FIXTURES.items()):
        root = FIXTURE_ROOT / name
        if not root.is_dir():
            print(f"FAIL {name}: fixture directory missing: {root}")
            failures += 1
            continue
        __, __, findings = analyze(root, config)
        fired = frozenset(finding.code for finding in findings)
        if fired == expected:
            label = ", ".join(sorted(expected)) or "no findings"
            print(f"ok   {name}: {label}")
        else:
            failures += 1
            print(f"FAIL {name}: expected {sorted(expected)}, "
                  f"got {sorted(fired)}")
            for finding in findings:
                print(f"     {finding.render()}")
    missing = set(CODES) - {code for __, expected in FIXTURES.values()
                            for code in expected}
    if missing:
        failures += 1
        print(f"FAIL coverage: no fixture exercises {sorted(missing)}")
    print("self-test: " + ("PASS" if failures == 0
                           else f"{failures} failure(s)"))
    return 0 if failures == 0 else 2


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyzer",
        description="Whole-program concurrency analyzer for src/repro.")
    parser.add_argument("--root", type=Path, default=DEFAULT_ROOT,
                        help="analysis root (default: src/repro)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings")
    parser.add_argument("--all", action="store_true",
                        help="report baselined findings too")
    parser.add_argument("--write-baseline", action="store_true",
                        help="grandfather the current findings and exit")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub Actions ::error annotations")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture self-test")
    parser.add_argument("--dump-graph", action="store_true",
                        help="print the global acquired-before relation")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    __, graph, findings = analyze(args.root, REPRO_CONFIG)

    if args.dump_graph:
        for held in sorted(graph.edges):
            for acquired in sorted(graph.edges[held]):
                qualname, rel_path, line = graph.examples[(held, acquired)]
                print(f"{held} -> {acquired}    "
                      f"[{qualname} @ {rel_path}:{line}]")
        cycles = graph.cycles()
        print(f"# {len(graph.examples)} edges, {len(cycles)} cycle(s)")
        return 0 if not cycles else 1

    if args.write_baseline:
        count = save_baseline(args.baseline, findings)
        print(f"wrote {count} fingerprint(s) to {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    new, grandfathered = split_by_baseline(findings, baseline)
    shown = findings if args.all else new
    for finding in shown:
        print(finding.render_github() if args.github
              else finding.render())
    if new:
        print(f"\n{len(new)} new finding(s) "
              f"({len(grandfathered)} baselined)", file=sys.stderr)
        return 1
    stale = baseline - {finding.fingerprint for finding in findings}
    if stale:
        print(f"note: {len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'} (fixed findings); "
              f"regenerate with --write-baseline", file=sys.stderr)
    print(f"analyzer: clean ({len(grandfathered)} baselined finding(s))")
    return 0
