"""Whole-program concurrency analyzer for the engine (``tools/analyzer``).

Layers (see ``tools/README.md`` for the full picture):

* :mod:`.diagnostics` — findings, pragmas, baselines (shared with the
  per-module linter, ``tools/lint_engine.py``);
* :mod:`.config` — the manual knowledge: binding table, polymorphic
  seams, lock identities, thread entry points;
* :mod:`.callgraph` — program model: modules, classes, a call graph
  with class-method resolution, and per-function lock/effect facts;
* :mod:`.effects` — transitive effect inference (ENG103, ENG105);
* :mod:`.lockstate` — acquired-before graph, cycle detection, blocking
  under the commit mutex (ENG101, ENG102);
* :mod:`.races` — static race detection from thread entry points
  (ENG104);
* :mod:`.driver` — orchestration, baseline gate, self-test, CLI.
"""

from .callgraph import Program
from .config import AnalyzerConfig, REPRO_CONFIG
from .diagnostics import Finding
from .driver import analyze, fixture_findings, main, self_test

__all__ = [
    "AnalyzerConfig", "Finding", "Program", "REPRO_CONFIG", "analyze",
    "fixture_findings", "main", "self_test",
]
