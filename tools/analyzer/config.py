"""Analyzer configuration: the manual knowledge the engine's source
cannot express in annotations alone.

Everything here is data, not code — the analyses read it through
:class:`AnalyzerConfig`, so the fixture trees under
``tools/analyzer_fixtures/`` run the very same analysis code with their
own small configs (see ``driver.FIXTURES``). :data:`REPRO_CONFIG` is the
configuration for the real tree, ``src/repro``.

The binding table and seam table deserve a word each:

* ``attr_bindings`` types the attributes the lightweight inference
  cannot see through — chiefly the ``durability`` hooks, which are
  assigned ``None`` at construction and attached later by ``Database``;
* ``method_seams`` resolves the polymorphic call sites that would
  otherwise dangle: the executor's ``resolver.scan(...)`` goes to every
  SnapshotResolver implementation, and the aggregate fold's
  ``acc.insert(...)``-style calls go to every ``Accumulator`` subclass
  (spelled ``subclasses-of:Accumulator`` so new accumulators are picked
  up automatically).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AnalyzerConfig:
    """All tree-specific knowledge of one analyzer run."""

    #: "Class.attr" -> bare class name of the attribute's value, for
    #: attributes whose assignment the inference cannot type.
    attr_bindings: dict[str, str] = field(default_factory=dict)

    #: method name -> class names implementing it, for polymorphic call
    #: sites; "subclasses-of:X" expands to every transitive subclass.
    method_seams: dict[str, tuple[str, ...]] = field(default_factory=dict)

    #: Fallback: a terminal attribute with this name is this lock, even
    #: when the receiver chain cannot be typed.
    global_lock_attrs: dict[str, str] = field(default_factory=dict)

    #: ``<obj>.<method>(...)`` calls that acquire a table lock when the
    #: receiver's class is in ``table_lock_classes``. All table locks
    #: collapse into the single abstract id ``table_lock_id`` — the
    #: per-function sorted-acquisition discipline within that family is
    #: the per-module linter's ``lock-order`` rule, so self-edges on the
    #: abstract id are not cycles.
    table_lock_methods: frozenset = frozenset()
    table_lock_classes: frozenset = frozenset()
    table_lock_id: str = "LockManager.<table>"

    #: Classes whose ``.rows`` attribute is a full materialization.
    materialize_classes: frozenset = frozenset()

    #: The commit-critical-section locks: a blocking effect reachable
    #: while one of these is held is ENG102.
    commit_locks: frozenset = frozenset()

    #: rel-path prefixes whose direct wall-clock reads are the clock
    #: abstraction itself (exempt, mirroring the linter's exemption).
    clock_exempt_paths: tuple = ()

    #: rel-path prefixes defining the scheduler scope: wall-clock
    #: reachable from any function defined here is ENG103.
    scheduler_paths: tuple = ()

    #: Function qualnames rooting the streaming hot path: row
    #: materialization reachable from these is ENG105.
    hot_path_roots: tuple = ()

    #: thread name -> entry-point function qualnames (ENG104 roots).
    entry_points: dict[str, tuple[str, ...]] = field(default_factory=dict)

    #: Classes whose instances are confined to one thread at a time by
    #: construction (per-transaction, per-session, per-statement
    #: objects), so their unguarded writes are not races.
    thread_confined: frozenset = frozenset()

    #: Methods that run before (or after) an object is shared:
    #: construction and lifecycle edges, exempt from ENG104.
    init_methods: frozenset = frozenset({
        "__init__", "__post_init__", "open", "close", "__enter__",
        "__exit__",
    })

    #: "Class.attr" writes exempt from ENG104 with a standing
    #: justification (documented at the declaration site).
    race_allow: frozenset = frozenset()


#: The configuration for the real tree (src/repro).
REPRO_CONFIG = AnalyzerConfig(
    attr_bindings={
        # Durability hooks are assigned None at construction and
        # attached by Database after recovery.
        "TransactionManager.durability": "DurabilityManager",
        "Catalog.durability": "DurabilityManager",
        "Database.durability": "DurabilityManager",
        # The scheduler's clock is shared with the database.
        "Scheduler.clock": "SimClock",
    },
    method_seams={
        # resolver.scan(...) in the executor: every snapshot resolver.
        "scan": ("Transaction", "SnapshotReader", "DictResolver"),
        "scan_pruned": ("Transaction", "SnapshotReader"),
        "scan_partitions": ("Transaction", "SnapshotReader"),
        # The aggregate fold's accumulator protocol.
        "insert": ("subclasses-of:Accumulator",),
        "retract": ("subclasses-of:Accumulator",),
        "merge": ("subclasses-of:Accumulator",),
        "finalize": ("subclasses-of:Accumulator",),
        "insert_arrays": ("subclasses-of:Accumulator",),
        "retract_arrays": ("subclasses-of:Accumulator",),
    },
    global_lock_attrs={
        "commit_mutex": "TransactionManager.commit_mutex",
    },
    table_lock_methods=frozenset({"acquire"}),
    table_lock_classes=frozenset({"LockManager"}),
    table_lock_id="LockManager.<table>",
    materialize_classes=frozenset({"Relation", "Partition"}),
    commit_locks=frozenset({"TransactionManager.commit_mutex"}),
    clock_exempt_paths=("scheduler/clock.py",),
    scheduler_paths=("scheduler/",),
    hot_path_roots=(
        "txn.manager.Transaction.scan_partitions",
        "txn.manager.SnapshotReader.scan_partitions",
    ),
    entry_points={
        # Pool workers of the server front end (each statement runs on
        # one; the public entry methods approximate the job closures,
        # whose ``work()`` indirection the call graph cannot follow).
        "server-worker": (
            "server.server.Server.execute",
            "server.server.Server.submit_transaction",
            "server.server.Server._transaction_attempts",
            "server.server.Connection.execute",
            "server.server.Connection.executemany",
            "server.server.Connection._submit",
        ),
        # The background checkpoint triggers: the simulated-time tick
        # and the WAL-size threshold check after server commits.
        "checkpointer": (
            "api.database.Database._schedule_checkpoint_tick.tick",
            "durability.manager.DurabilityManager.maybe_checkpoint",
        ),
        # The refresh control loop.
        "scheduler": (
            "scheduler.scheduler.Scheduler.run_until",
        ),
        # DAG-coordinator pool workers: each runs one whole refresh
        # (ParallelRefreshCoordinator.refresh_wave submits engine.refresh
        # closures whose pool indirection the call graph cannot follow).
        "refresh-worker": (
            "core.refresh.RefreshEngine.refresh",
        ),
        # Partition-pool workers: the intra-refresh fan-out closures
        # (partition diffs, chunked aggregate scans and columnar folds),
        # submitted through WorkerPool.map_ordered.
        "partition-worker": (
            "streams.changes.changes_between.slices",
            "ivm.aggstate.AggregateNodeState._initialize_parallel.scan_chunk",
            "ivm.aggstate.DistinctNodeState._initialize_parallel.scan_chunk",
            "ivm.aggstate._chunked_eval.run",
            "ivm.aggstate._chunked_eval_rows.run",
        ),
    },
    thread_confined=frozenset({
        # One transaction / session / statement / cursor is used by one
        # thread at a time (the connection serialization lock enforces
        # it for server sessions).
        "Transaction", "Session", "Connection", "Cursor",
        "PreparedStatement", "QueryResult", "SnapshotReader",
        "_OverlayPartition", "_StagedPartition", "StagedWrite",
        # The discrete-event scheduler runs on the driving thread; its
        # callbacks (including the checkpoint tick) and all tick
        # bookkeeping — even in DAG-parallel mode, where only
        # engine.refresh runs on pool workers — stay on that thread. The
        # simulated clock is advanced only by that driving thread; pool
        # workers may read it, but reads are not writes and wall-time
        # tests pin the clock. LivenessMonitor is NOT confined anymore:
        # coordinator workers heartbeat into it concurrently, so it
        # carries its own mutex and the analyzer checks it like any
        # shared object.
        "Scheduler", "SchedulerReport", "SimClock",
        # Exception objects are constructed, annotated (position info),
        # and consumed on the raising thread.
        "SqlError",
        # Refresh state is serialized per-DT by the DT's table lock.
        # A RefreshRecord is filled (and, on retry, reset) by the one
        # worker executing that refresh before it is published via
        # record_refresh.
        "DynamicTable", "RefreshRecord", "AggStateStore",
        "AggregateNodeState", "DistinctNodeState", "_Group",
    }),
    race_allow=frozenset(),
)
