"""Transitive effect inference over the call graph.

Direct effects (a ``time.time()`` read, an ``os.fsync``, a ``.pairs()``
materialization, a condition wait) are recorded per function by the
facts pass in :mod:`.callgraph`. This module closes them over the call
graph: a function *has* an effect if it performs it directly or calls —
at any depth, through any resolved edge — a function that has it. Each
propagated label keeps one representative :class:`Origin` (where the
effect actually happens), so a finding three frames up can still point
at the fsync call it is about.

The same fixpoint also computes ``may_take``: the set of lock ids a
function may acquire transitively, which the lock-order analysis turns
into interprocedural acquired-before edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from .callgraph import Program


@dataclass(frozen=True)
class Origin:
    """Where an effect is actually performed."""

    qualname: str
    path: str
    line: int
    what: str

    def describe(self) -> str:
        return f"{self.what} at {self.path}:{self.line}"


def transitive_effects(program: Program) -> dict[str, dict[str, Origin]]:
    """label -> representative origin, per function, closed over calls."""
    effects: dict[str, dict[str, Origin]] = {}
    for qualname, info in program.functions.items():
        direct: dict[str, Origin] = {}
        for eff in program.facts[qualname].effects:
            direct.setdefault(eff.label, Origin(
                qualname, info.rel_path, eff.line, eff.what))
        effects[qualname] = direct

    edges = _call_edges(program)
    changed = True
    while changed:
        changed = False
        for caller, callees in edges.items():
            mine = effects[caller]
            for callee in callees:
                for label, origin in effects.get(callee, {}).items():
                    if label not in mine:
                        mine[label] = origin
                        changed = True
    return effects


def may_take(program: Program) -> dict[str, set]:
    """Lock ids a function may acquire, directly or transitively."""
    taken: dict[str, set] = {}
    for qualname in program.functions:
        taken[qualname] = {acq.lock
                           for acq in program.facts[qualname].acquisitions}
    edges = _call_edges(program)
    changed = True
    while changed:
        changed = False
        for caller, callees in edges.items():
            mine = taken[caller]
            before = len(mine)
            for callee in callees:
                mine |= taken.get(callee, set())
            if len(mine) != before:
                changed = True
    return taken


def exit_holds(program: Program) -> dict[str, set]:
    """Lock ids a function may still hold when it returns: explicit
    (non-``with``) acquisitions, closed over calls. ``with`` blocks
    release on exit and are excluded."""
    holds: dict[str, set] = {}
    for qualname in program.functions:
        holds[qualname] = {acq.lock
                           for acq in program.facts[qualname].acquisitions
                           if not acq.via_with}
    edges = _call_edges(program)
    changed = True
    while changed:
        changed = False
        for caller, callees in edges.items():
            mine = holds[caller]
            before = len(mine)
            for callee in callees:
                mine |= holds.get(callee, set())
            if len(mine) != before:
                changed = True
    return holds


def wallclock_findings(program: Program) -> list:
    """ENG103: wall-clock reads reachable from the scheduler scope.

    The scheduler is a discrete-event loop over simulated time; a real
    clock read anywhere in its call closure silently couples refresh
    decisions to wall time. The clock abstraction itself
    (``clock_exempt_paths``) never records the effect, and justified
    reads carry a source pragma, so anything arriving here is a leak.
    """
    from .callgraph import WALL_CLOCK
    from .diagnostics import Finding

    paths = program.config.scheduler_paths
    if not paths:
        return []
    effects = transitive_effects(program)
    findings = []
    for qualname, info in sorted(program.functions.items()):
        if not info.rel_path.startswith(paths):
            continue
        origin = effects[qualname].get(WALL_CLOCK)
        if origin is None:
            continue
        findings.append(Finding(
            code="ENG103",
            path=info.rel_path,
            line=info.lineno,
            function=qualname,
            message=(f"wall-clock read ({origin.describe()}) reachable "
                     f"from scheduler function {qualname}"),
            hint=("route time through the injected clock, or add "
                  "'# lint: allow-wall-clock (reason)' at the read"),
            detail=f"{origin.qualname}|{origin.what}",
        ))
    return findings


def materialize_findings(program: Program) -> list:
    """ENG105: row materialization reachable from a streaming hot-path
    root — the point of partition-granular cursors is *not* to build the
    full row list, so a ``.pairs()``/``.rows`` in their closure defeats
    them."""
    from .callgraph import MATERIALIZE
    from .diagnostics import Finding

    effects = transitive_effects(program)
    findings = []
    for root in program.config.hot_path_roots:
        info = program.functions.get(root)
        if info is None:
            continue
        origin = effects[root].get(MATERIALIZE)
        if origin is None:
            continue
        findings.append(Finding(
            code="ENG105",
            path=info.rel_path,
            line=info.lineno,
            function=root,
            message=(f"row materialization ({origin.describe()}) "
                     f"reachable from streaming hot path {root}"),
            hint=("stream partitions instead of materializing, or "
                  "justify the overlay copy with a pragma/baseline "
                  "entry"),
            detail=f"{origin.qualname}|{origin.what}",
        ))
    return findings


def reachable_from(program: Program, roots: tuple) -> set:
    """Function qualnames reachable from ``roots`` via resolved edges."""
    edges = _call_edges(program)
    seen: set = set()
    stack = [root for root in roots if root in program.functions]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(edges.get(current, ()))
    return seen


def _call_edges(program: Program) -> dict[str, list]:
    edges: dict[str, list] = {qualname: [] for qualname in program.functions}
    for site in program.resolved_edges():
        edges[site.caller].append(site.callee)
    return edges
