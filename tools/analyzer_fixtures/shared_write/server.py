"""Seeded ENG104 fixture: the worker-thread side."""

from stats import Stats


class Server:
    def __init__(self) -> None:
        self.stats = Stats()

    def worker_loop(self) -> None:
        self.stats.count_commit()
