"""Seeded ENG104 fixture, modeled on the server/checkpointer seam:
one counter class touched by the pool workers *and* the background
checkpointer. ``count_commit`` takes the mutex; ``count_checkpoint``
forgot to — that write is the race.
"""

import threading


class Stats:
    def __init__(self) -> None:
        self.mutex = threading.Lock()
        self.commits = 0
        self.checkpoints = 0

    def count_commit(self) -> None:
        with self.mutex:
            self.commits += 1

    def count_checkpoint(self) -> None:
        self.checkpoints += 1
