"""Seeded ENG104 fixture: the background-checkpointer side."""

from stats import Stats


class Checkpointer:
    def __init__(self, stats: Stats) -> None:
        self.stats = stats

    def run(self) -> None:
        self.stats.count_checkpoint()
