"""Clean fixture: scheduler code with a *justified* wall-clock read.

The pragma on the read suppresses the effect at its source, so nothing
propagates to ``tick`` — the analyzer must stay silent here, proving
both the clean-exit path and pragma suppression.
"""

import threading
import time


class State:
    def __init__(self) -> None:
        self.mutex = threading.Lock()
        self.ticks = 0

    def bump(self) -> None:
        with self.mutex:
            self.ticks += 1


def stamp() -> float:
    return time.time()  # lint: allow-wall-clock (fixture: justified read)


def tick(state: State) -> None:
    state.bump()
    stamp()
