"""Seeded ENG101 fixture: the lock container."""

import threading


class Ctx:
    def __init__(self) -> None:
        self.a = threading.Lock()
        self.b = threading.Lock()
