"""Seeded ENG101 fixture: an *interprocedural* lock-order inversion.

``forward`` holds ``a`` while a helper two frames down takes ``b``;
``backward`` nests them the other way in one function. Neither function
alone misorders anything a per-module linter could see — the cycle only
exists on the global acquired-before relation.
"""

from locks import Ctx


def forward(ctx: Ctx) -> None:
    with ctx.a:
        grab_b(ctx)


def grab_b(ctx: Ctx) -> None:
    deeper(ctx)


def deeper(ctx: Ctx) -> None:
    with ctx.b:
        pass


def backward(ctx: Ctx) -> None:
    with ctx.b:
        with ctx.a:
            pass
