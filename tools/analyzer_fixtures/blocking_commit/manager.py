"""Seeded ENG102 fixture: an fsync reachable under the commit mutex.

``commit`` itself contains no I/O — the blocking effect lives in a
helper, so only transitive effect propagation can see it.
"""

import os
import threading


class Manager:
    def __init__(self) -> None:
        self.commit_mutex = threading.Lock()
        self.fd = 0

    def commit(self) -> None:
        with self.commit_mutex:
            flush_log(self)


def flush_log(manager: Manager) -> None:
    os.fsync(manager.fd)
