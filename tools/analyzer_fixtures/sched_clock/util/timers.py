"""Seeded ENG103 fixture: the wall-clock read the scheduler reaches."""

import time


def elapsed() -> float:
    return time.time()
