"""Seeded ENG103 fixture: the scheduler side.

``tick`` never reads a clock itself — the leak is two modules away.
"""

from util.timers import elapsed


def tick() -> None:
    elapsed()
