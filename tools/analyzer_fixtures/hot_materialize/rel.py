"""Seeded ENG105 fixture: a relation whose ``pairs()`` materializes."""


class Relation:
    def __init__(self) -> None:
        self.data: list = []

    def pairs(self) -> list:
        return list(self.data)
