"""Seeded ENG105 fixture: a streaming hot path that materializes."""

from rel import Relation


def stream_rows(relation: Relation):
    for pair in relation.pairs():
        yield pair
