"""Seeded ENG101 fixture: taking a partition lock inside a worker task.

``dispatch_wave`` holds the coordinator's wave mutex while the worker
task it submits (the direct call stands in for the pool closure, as in
the other fixtures) acquires a table/partition lock through the lock
manager; ``commit`` nests the same two locks the other way around —
table lock first, wave mutex inside. The acquired-before relation gains
a cycle between the wave mutex and the abstract table-lock id, which is
exactly the deadlock a coordinator invites by submitting lock-taking
work while holding its own scheduling mutex.
"""

from locks import Coordinator


def dispatch_wave(coordinator: Coordinator) -> None:
    with coordinator.wave_mutex:
        worker_task(coordinator)


def worker_task(coordinator: Coordinator) -> None:
    coordinator.locks.acquire("orders", 1, timeout=5.0)


def commit(coordinator: Coordinator) -> None:
    coordinator.locks.acquire("orders", 2, timeout=5.0)
    with coordinator.wave_mutex:
        pass
