"""Seeded ENG101 fixture: a refresh coordinator whose worker tasks take
partition (table) locks."""

import threading


class LockManager:
    def acquire(self, name: str, owner: int, timeout: float = 0.0) -> None:
        pass


class Coordinator:
    def __init__(self) -> None:
        self.wave_mutex = threading.Lock()
        self.locks = LockManager()
