"""Quickstart: your first dynamic table, through the layered API.

Opens a session, creates a base table, defines a dynamic table over it
with a 1-minute target lag (the session's default warehouse fills in the
WAREHOUSE clause), loads rows through a prepared statement, streams a
result page through a cursor, lets the scheduler refresh as data arrives,
and checks the delayed-view-semantics guarantee — the whole paper in a
screenful.

Run:  python examples/quickstart.py
"""

from repro import Database
from repro.util.timeutil import MINUTE, SECOND, format_duration, minutes


def main() -> None:
    db = Database()
    db.create_warehouse("quickstart_wh")

    # A session carries per-connection state: its default warehouse is
    # used by CREATE DYNAMIC TABLE statements that omit WAREHOUSE.
    session = db.session()
    session.use_warehouse("quickstart_wh")

    session.execute("CREATE TABLE orders (id int, customer text, amount int)")

    # Prepared statements parse and plan once; executemany loads every
    # bind set in a single transaction.
    loader = session.prepare("INSERT INTO orders VALUES (?, ?, ?)")
    loader.executemany([(1, "ada", 120), (2, "grace", 80), (3, "ada", 45)])

    # The paper's pitch: stream processing at the cost of writing a query.
    session.execute("""
        CREATE DYNAMIC TABLE customer_totals
        TARGET_LAG = '1 minute'
        AS SELECT customer, count(*) orders, sum(amount) total
           FROM orders
           GROUP BY customer
    """)
    print("initialized:",
          sorted(session.query("SELECT * FROM customer_totals").rows))

    # Point lookups re-execute the same plan with new binds — zero parse
    # or optimize work after the first call.
    lookup = session.prepare(
        "SELECT total FROM customer_totals WHERE customer = :who")
    print("ada's total:", lookup.query({"who": "ada"}).rows[0][0])

    # New data arrives over (simulated) time; the scheduler refreshes the
    # DT incrementally to keep it within its target lag.
    db.at(2 * MINUTE, lambda: session.execute(
        "INSERT INTO orders VALUES (4, 'grace', 200)"))
    db.at(4 * MINUTE, lambda: session.execute(
        "DELETE FROM orders WHERE id = 3"))
    report = db.run_for(minutes(6))

    print("after 6 simulated minutes:",
          sorted(session.query("SELECT * FROM customer_totals").rows))
    print(f"refresh actions: {report.actions}")

    # Cursors stream large scans lazily, one micro-partition per pull.
    cursor = session.cursor()
    cursor.execute("SELECT id, customer, amount FROM orders WHERE amount >= ?",
                   (100,))
    print("big orders:", cursor.fetchmany(10))

    # -- transactions --------------------------------------------------------
    # Statements auto-commit by default. An explicit transaction stages
    # multiple statements atomically: reads inside it see its own writes
    # (read-your-writes), other sessions see nothing until COMMIT, and
    # ROLLBACK leaves no trace. SQL text works the same way:
    #   session.execute("BEGIN"); ...; session.execute("COMMIT")
    other = db.session()
    with session.transaction():
        session.execute("INSERT INTO orders VALUES (5, 'lin', 70)")
        session.execute("UPDATE orders SET amount = 75 WHERE id = 5")
        mine = session.query("SELECT amount FROM orders WHERE id = 5").rows
        theirs = other.query("SELECT count(*) c FROM orders "
                             "WHERE id = 5").rows
        print(f"inside txn: I see amount={mine[0][0]}, "
              f"others see {theirs[0][0]} rows")
    print("after commit:",
          other.query("SELECT amount FROM orders WHERE id = 5").rows)

    # SAVEPOINT checkpoints the staged writes; ROLLBACK TO restores them.
    session.execute("BEGIN")
    session.execute("SAVEPOINT before_cleanup")
    session.execute("DELETE FROM orders")
    session.execute("ROLLBACK TO before_cleanup")   # phew
    session.execute("COMMIT")
    print("orders survive:",
          session.query("SELECT count(*) c FROM orders").rows[0][0])

    # Concurrent sessions: a thread-pool server retries transactions that
    # lose snapshot isolation's first-committer-wins race.
    with db.serve(workers=4) as server:
        def credit(amount):
            def work(s):
                (total,) = s.query("SELECT amount FROM orders "
                                   "WHERE id = 5").rows[0]
                s.execute("UPDATE orders SET amount = ? WHERE id = 5",
                          (total + amount,))
            return work

        futures = [server.submit_transaction(credit(1)) for __ in range(20)]
        for future in futures:
            future.result()
        print("after 20 concurrent credits:",
              server.query("SELECT amount FROM orders WHERE id = 5").rows,
              server.stats.snapshot())

    # Delayed view semantics, the paper's core guarantee: the DT equals
    # its defining query evaluated at its data timestamp.
    dt = db.dynamic_table("customer_totals")
    assert db.check_dvs("customer_totals")
    lag = dt.lag_at(db.now)
    print(f"data timestamp: t={dt.data_timestamp / SECOND:.0f}s; "
          f"current lag: {format_duration(lag)} "
          f"(target {dt.target_lag})")
    print("DVS check: contents == defining query at the data timestamp ✓")


if __name__ == "__main__":
    main()
