"""Quickstart: your first dynamic table, through the layered API.

Opens a session, creates a base table, defines a dynamic table over it
with a 1-minute target lag (the session's default warehouse fills in the
WAREHOUSE clause), loads rows through a prepared statement, streams a
result page through a cursor, lets the scheduler refresh as data arrives,
and checks the delayed-view-semantics guarantee — the whole paper in a
screenful.

Run:  python examples/quickstart.py
"""

from repro import Database
from repro.util.timeutil import MINUTE, SECOND, format_duration, minutes


def main() -> None:
    db = Database()
    db.create_warehouse("quickstart_wh")

    # A session carries per-connection state: its default warehouse is
    # used by CREATE DYNAMIC TABLE statements that omit WAREHOUSE.
    session = db.session()
    session.use_warehouse("quickstart_wh")

    session.execute("CREATE TABLE orders (id int, customer text, amount int)")

    # Prepared statements parse and plan once; executemany loads every
    # bind set in a single transaction.
    loader = session.prepare("INSERT INTO orders VALUES (?, ?, ?)")
    loader.executemany([(1, "ada", 120), (2, "grace", 80), (3, "ada", 45)])

    # The paper's pitch: stream processing at the cost of writing a query.
    session.execute("""
        CREATE DYNAMIC TABLE customer_totals
        TARGET_LAG = '1 minute'
        AS SELECT customer, count(*) orders, sum(amount) total
           FROM orders
           GROUP BY customer
    """)
    print("initialized:",
          sorted(session.query("SELECT * FROM customer_totals").rows))

    # Point lookups re-execute the same plan with new binds — zero parse
    # or optimize work after the first call.
    lookup = session.prepare(
        "SELECT total FROM customer_totals WHERE customer = :who")
    print("ada's total:", lookup.query({"who": "ada"}).rows[0][0])

    # New data arrives over (simulated) time; the scheduler refreshes the
    # DT incrementally to keep it within its target lag.
    db.at(2 * MINUTE, lambda: session.execute(
        "INSERT INTO orders VALUES (4, 'grace', 200)"))
    db.at(4 * MINUTE, lambda: session.execute(
        "DELETE FROM orders WHERE id = 3"))
    report = db.run_for(minutes(6))

    print("after 6 simulated minutes:",
          sorted(session.query("SELECT * FROM customer_totals").rows))
    print(f"refresh actions: {report.actions}")

    # Cursors stream large scans lazily, one micro-partition per pull.
    cursor = session.cursor()
    cursor.execute("SELECT id, customer, amount FROM orders WHERE amount >= ?",
                   (100,))
    print("big orders:", cursor.fetchmany(10))

    # Delayed view semantics, the paper's core guarantee: the DT equals
    # its defining query evaluated at its data timestamp.
    dt = db.dynamic_table("customer_totals")
    assert db.check_dvs("customer_totals")
    lag = dt.lag_at(db.now)
    print(f"data timestamp: t={dt.data_timestamp / SECOND:.0f}s; "
          f"current lag: {format_duration(lag)} "
          f"(target {dt.target_lag})")
    print("DVS check: contents == defining query at the data timestamp ✓")


if __name__ == "__main__":
    main()
