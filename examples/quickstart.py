"""Quickstart: your first dynamic table.

Creates a base table, defines a dynamic table over it with a 1-minute
target lag, lets the scheduler refresh it as data arrives, and checks the
delayed-view-semantics guarantee — the whole paper in 60 lines.

Run:  python examples/quickstart.py
"""

from repro import Database
from repro.util.timeutil import MINUTE, SECOND, format_duration, minutes


def main() -> None:
    db = Database()
    db.create_warehouse("quickstart_wh")

    # A base table with some data.
    db.execute("CREATE TABLE orders (id int, customer text, amount int)")
    db.execute("INSERT INTO orders VALUES "
               "(1, 'ada', 120), (2, 'grace', 80), (3, 'ada', 45)")

    # The paper's pitch: stream processing at the cost of writing a query.
    db.execute("""
        CREATE DYNAMIC TABLE customer_totals
        TARGET_LAG = '1 minute'
        WAREHOUSE = quickstart_wh
        AS SELECT customer, count(*) orders, sum(amount) total
           FROM orders
           GROUP BY customer
    """)
    print("initialized:",
          sorted(db.query("SELECT * FROM customer_totals").rows))

    # New data arrives over (simulated) time; the scheduler refreshes the
    # DT incrementally to keep it within its target lag.
    db.at(2 * MINUTE, lambda: db.execute(
        "INSERT INTO orders VALUES (4, 'grace', 200)"))
    db.at(4 * MINUTE, lambda: db.execute(
        "DELETE FROM orders WHERE id = 3"))
    report = db.run_for(minutes(6))

    print("after 6 simulated minutes:",
          sorted(db.query("SELECT * FROM customer_totals").rows))
    print(f"refresh actions: {report.actions}")

    # Delayed view semantics, the paper's core guarantee: the DT equals
    # its defining query evaluated at its data timestamp.
    dt = db.dynamic_table("customer_totals")
    assert db.check_dvs("customer_totals")
    lag = dt.lag_at(db.now)
    print(f"data timestamp: t={dt.data_timestamp / SECOND:.0f}s; "
          f"current lag: {format_duration(lag)} "
          f"(target {dt.target_lag})")
    print("DVS check: contents == defining query at the data timestamp ✓")


if __name__ == "__main__":
    main()
