"""A fleet report: the section 6 production view, in miniature.

Builds a small "account" of dynamic tables over mixed workloads, runs it
for a simulated hour, and prints the reports an operator (or the paper's
section 6.3) would look at:

* target-lag distribution and operator mix of the synthetic fleet
  (Figures 5 and 6);
* per-DT SLO table — refreshes, skips, failures, max peak lag, who owns
  any violation (section 6.2);
* refresh-action mix and warehouse credit consumption;
* the liveness monitor's verdict (nothing stuck).

Run:  python examples/fleet_report.py
"""

from repro import Database
from repro.scheduler.liveness import slo_report
from repro.util.timeutil import HOUR, MINUTE, SECOND, format_duration
from repro.workload.population import generate_population, summarize


def simulated_account():
    db = Database()
    db.create_warehouse("etl_wh", size=2)
    db.execute("CREATE TABLE clicks (id int, page text, ms int)")
    db.execute("CREATE TABLE pages (page text, team text)")
    db.execute("INSERT INTO pages VALUES ('home', 'web'), ('search', "
               "'core'), ('cart', 'shop')")
    db.execute("INSERT INTO clicks VALUES (1, 'home', 120), "
               "(2, 'search', 340), (3, 'cart', 80)")

    db.create_dynamic_table(
        "slow_pages", "SELECT id, page, ms FROM clicks WHERE ms > 100",
        "downstream", "etl_wh")
    db.create_dynamic_table(
        "team_latency", "SELECT p.team, count(*) n, max(s.ms) worst "
        "FROM slow_pages s JOIN pages p ON s.page = p.page GROUP BY p.team",
        "2 minutes", "etl_wh")
    db.create_dynamic_table(
        "leaderboard", "SELECT page, ms, rank() over (partition by page "
        "order by ms desc, id) r FROM slow_pages", "5 minutes", "etl_wh")

    next_id = [100]
    for step in range(40):
        def mutate(s=step):
            db.execute(f"INSERT INTO clicks VALUES ({next_id[0]}, "
                       f"'{['home', 'search', 'cart'][s % 3]}', "
                       f"{60 + (s * 37) % 400})")
            next_id[0] += 1
        db.at((step + 1) * 90 * SECOND, mutate)
    report = db.run_for(HOUR)
    return db, report


def main() -> None:
    print("=" * 68)
    print("Synthetic fleet (Figures 5 & 6 view)")
    print("=" * 68)
    summary = summarize(generate_population(3000, seed=7))
    print(f"{summary.size} DTs: {summary.fraction_below_5m:.0%} with lag "
          f"< 5 min, {summary.fraction_between:.0%} in the middle band, "
          f"{summary.fraction_at_least_16h:.0%} at >= 16 h")
    print(f"incremental mode: {summary.incremental_fraction:.0%}; "
          f"cloned: {summary.cloned_fraction:.0%}; shared: "
          f"{summary.shared_fraction:.0%}")
    top_ops = sorted(summary.operator_frequency.items(),
                     key=lambda item: -item[1])[:6]
    print("most common operators in incremental DTs:",
          ", ".join(f"{name} {value:.0%}" for name, value in top_ops))

    print()
    print("=" * 68)
    print("One simulated hour of a live account")
    print("=" * 68)
    db, report = simulated_account()
    print(f"ticks: {report.ticks}; refreshes: {report.refreshes_succeeded} "
          f"({report.actions}); skipped: {report.refreshes_skipped}; "
          f"failed: {report.refreshes_failed}")
    no_data = report.no_data_refreshes / max(report.refreshes_succeeded, 1)
    print(f"NO_DATA fraction: {no_data:.0%} "
          "(paper: >90% on an idle-ish fleet)")

    print("\nper-DT SLO view (section 6.2):")
    header = f"  {'DT':14s} {'target':10s} {'refr':>4s} {'skip':>4s} " \
             f"{'fail':>4s} {'max peak':>9s}  status"
    print(header)
    for entry in slo_report(db.dynamic_tables()):
        target = (format_duration(entry.target_lag)
                  if entry.target_lag else "DOWNSTREAM")
        peak = (f"{entry.max_peak_lag / SECOND:.0f}s"
                if entry.max_peak_lag is not None else "-")
        status = ("ok" if entry.within_lag
                  else f"VIOLATION ({entry.responsibility})")
        print(f"  {entry.dt_name:14s} {target:10s} {entry.refreshes:4d} "
              f"{entry.skips:4d} {entry.failures:4d} {peak:>9s}  {status}")

    stuck = db.scheduler.liveness.check(db.now)
    print(f"\nliveness check: "
          f"{'all refreshes heartbeating' if not stuck else stuck}")
    warehouse = db.warehouses.get("etl_wh")
    print(f"warehouse credits: {warehouse.credits_used():.0f} "
          f"(utilization {warehouse.utilization(HOUR):.1%})")

    for name in ("slow_pages", "team_latency", "leaderboard"):
        assert db.check_dvs(name)
    print("DVS verified on every dynamic table ✓")


if __name__ == "__main__":
    main()
