"""The paper's Listing 1: tracking late-arriving trains.

Two stacked dynamic tables over a VARIANT event stream:

* ``train_arrivals`` — TARGET_LAG = DOWNSTREAM; extracts ARRIVAL events
  and joins them to the train dimension;
* ``delayed_trains`` — TARGET_LAG = '1 minute'; counts arrivals more than
  10 minutes late per train and hour (GROUP BY ALL).

The demo runs the scheduler while events stream in, then reports the lag
sawtooth (Figure 4) and the refresh-action mix for both tables.

Run:  python examples/train_delays.py
"""

from repro import Database
from repro.core.graph import DependencyGraph
from repro.scheduler.metrics import decompose_peaks, peak_lags, trough_lags
from repro.util.timeutil import MINUTE, SECOND, format_duration, minutes
from repro.workload.trains import TrainWorkload


def main() -> None:
    db = Database()
    workload = TrainWorkload()
    workload.setup(db, trains=6, schedules_per_train=4)

    graph = DependencyGraph(db.catalog)
    print("pipeline: train_events + trains -> train_arrivals "
          "-> (join schedule) -> delayed_trains")
    print("effective lag of train_arrivals (DOWNSTREAM):",
          format_duration(graph.effective_lag("train_arrivals")))

    # Stream arrival events every simulated minute for 10 minutes.
    late_total = [0]
    for step in range(10):
        def emit(s=step):
            late_total[0] += workload.emit_arrivals(db, 12,
                                                    late_fraction=0.3)
        db.at((step + 1) * MINUTE, emit)
    report = db.run_for(minutes(12))

    counted = sum(row[2] for row in
                  db.query("SELECT * FROM delayed_trains").rows)
    print(f"\nlate arrivals emitted: {late_total[0]}; "
          f"counted by delayed_trains: {counted}")
    assert counted == late_total[0]

    top = db.query(
        "SELECT t.name, d.hour, d.num_delays FROM delayed_trains d "
        "JOIN trains t ON d.train_id = t.id "
        "WHERE d.num_delays > 0 ORDER BY d.num_delays DESC LIMIT 5")
    print("\nworst offenders (train, hour bucket, delays):")
    for name, hour, delays in top.rows:
        print(f"  {name:10s} hour={hour // (3600 * SECOND):2d}  "
              f"delays={delays}")

    print(f"\nscheduler: {report.refreshes_succeeded} refreshes "
          f"({report.actions}); {report.refreshes_skipped} skipped")

    for dt_name in ("train_arrivals", "delayed_trains"):
        dt = db.dynamic_table(dt_name)
        peaks = peak_lags(dt)
        troughs = trough_lags(dt)
        if peaks:
            print(f"{dt_name}: peak lag max "
                  f"{max(peaks) / SECOND:.1f}s, trough lag min "
                  f"{min(troughs) / SECOND:.1f}s")
        for decomposition in decompose_peaks(dt)[:3]:
            print(f"   v={decomposition.data_timestamp / SECOND:5.0f}s  "
                  f"p={decomposition.p / SECOND:4.0f}s  "
                  f"w={decomposition.w / SECOND:5.1f}s  "
                  f"d={decomposition.d / SECOND:4.1f}s  "
                  f"peak={decomposition.peak_lag / SECOND:5.1f}s")

    assert db.check_dvs("train_arrivals")
    assert db.check_dvs("delayed_trains")
    print("\nDVS holds on both tables ✓")


if __name__ == "__main__":
    main()
