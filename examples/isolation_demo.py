"""Delayed view semantics and transaction isolation (section 4).

Part 1 replays the paper's Figures 1 and 2 through the formalism: the same
read-skew scenario is invisible under persisted table semantics and
exposed (G2 / G-single) once refreshes are modeled as derivations.

Part 2 reproduces the scenario on the *live* system: a base-table update
leaves a dynamic table stale; a query joining the stale DT with the fresh
base table exhibits read skew, which the history recorder detects — while
a single-DT read is snapshot-consistent, matching the paper's two
guarantees (PL-SI for single-DT reads, PL-2 otherwise).

Run:  python examples/isolation_demo.py
"""

from repro import Database
from repro.isolation import (DirectSerializationGraph, classify,
                             detect_phenomena)
from repro.isolation.examples import figure1_history, figure2_history
from repro.isolation.theorems import check_transaction_invariance
from repro.isolation.history import Derive
from repro.testing.recorder import HistoryRecorder
from repro.util.timeutil import MINUTE


def formalism_part() -> None:
    print("=" * 64)
    print("Part 1 — the formalism (Figures 1 and 2)")
    print("=" * 64)

    fig1 = figure1_history()
    print("\nFigure 1 (persisted table semantics):")
    print(fig1.pretty())
    print("phenomena:", detect_phenomena(fig1).pretty(),
          "| level:", classify(fig1))

    fig2 = figure2_history()
    print("\nFigure 2 (delayed view semantics, refreshes as derivations):")
    print(fig2.pretty())
    dsg = DirectSerializationGraph(fig2)
    print(dsg.pretty())
    print("phenomena:", detect_phenomena(fig2).pretty(),
          "| level:", classify(fig2))

    derivation = next(e for e in fig2.events
                      if isinstance(e, Derive) and e.version.index == 3)
    print("\nTheorem 1 (moving the derivation between transactions "
          "changes nothing):",
          all(check_transaction_invariance(fig2, derivation, txn)
              for txn in (1, 2, 5)))


def live_part() -> None:
    print("\n" + "=" * 64)
    print("Part 2 — the same scenario on the live system")
    print("=" * 64)

    db = Database()
    db.create_warehouse("wh")
    db.execute("CREATE TABLE accounts (balance int)")
    db.execute("INSERT INTO accounts VALUES (100)")
    db.create_dynamic_table(
        "fee_view", "SELECT balance, balance / 10 fee FROM accounts",
        "1 minute", "wh")

    db.clock.advance(MINUTE)
    db.execute("UPDATE accounts SET balance = 200")  # T2 in the paper
    print("\nbase table updated; fee_view is stale "
          f"(lag = {db.dynamic_table('fee_view').lag_at(db.now) / 1e9:.0f}s)")

    recorder = HistoryRecorder(db)
    skewed = recorder.query(
        "SELECT f.fee, a.balance FROM fee_view f, accounts a")
    print("query joining stale DT with fresh base table returned:",
          skewed.rows, " <- fee computed from the OLD balance")
    report = detect_phenomena(recorder.history())
    print("recorder verdict:", report.pretty(),
          "(read skew detected, as in Figure 2)")

    clean = HistoryRecorder(db)
    clean.query("SELECT fee FROM fee_view")
    print("single-DT read verdict:",
          detect_phenomena(clean.history()).pretty(),
          "(snapshot isolation holds, as the paper guarantees)")

    db.refresh_dynamic_table("fee_view")
    fresh = HistoryRecorder(db)
    fresh.query("SELECT f.fee, a.balance FROM fee_view f, accounts a")
    print("after a refresh, the multi-table read verdict:",
          detect_phenomena(fresh.history()).pretty())


if __name__ == "__main__":
    formalism_part()
    live_part()
