"""An operations tour: the lifecycle features of sections 3.3–3.4.

A three-layer pipeline (bronze → silver → gold) demonstrating:

* DOWNSTREAM target lags aligning a chain to its consumer;
* refresh actions over time (NO_DATA dominating an idle pipeline);
* skips under an overloaded warehouse — and DVS surviving them;
* a failing query (division by zero) auto-suspending after repeated
  errors, then resuming after the data is fixed;
* upstream DDL: CREATE OR REPLACE forces a REINITIALIZE; DROP breaks the
  pipeline; UNDROP heals it without intervention;
* warehouse credit accounting (co-location economics).

Run:  python examples/operations_tour.py
"""

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.scheduler.cost import CostModel
from repro.util.timeutil import MINUTE, SECOND, minutes


def build_pipeline(db: Database) -> None:
    db.execute("CREATE TABLE raw_events (id int, kind text, qty int)")
    db.execute("INSERT INTO raw_events VALUES "
               "(1, 'sale', 3), (2, 'sale', 5), (3, 'return', 1)")
    db.create_dynamic_table(
        "bronze", "SELECT id, kind, qty FROM raw_events WHERE qty > 0",
        "downstream", "pipeline_wh")
    db.create_dynamic_table(
        "silver", "SELECT kind, count(*) n, sum(qty) total FROM bronze "
        "GROUP BY kind", "downstream", "pipeline_wh")
    db.create_dynamic_table(
        "gold", "SELECT kind, total FROM silver WHERE n > 0",
        "2 minutes", "pipeline_wh")


def main() -> None:
    db = Database(cost_model=CostModel(fixed_cost=30 * SECOND))
    db.create_warehouse("pipeline_wh", size=1)
    build_pipeline(db)

    from repro.core.graph import DependencyGraph

    graph = DependencyGraph(db.catalog)
    print("DOWNSTREAM lags resolved to the gold consumer's 2 minutes:")
    for name in ("bronze", "silver", "gold"):
        lag = graph.effective_lag(name)
        print(f"  {name:8s} effective lag = {lag / MINUTE:.0f} minute(s)")

    # --- steady state: mostly NO_DATA ------------------------------------
    next_id = [100]

    def trickle():
        db.execute(f"INSERT INTO raw_events VALUES "
                   f"({next_id[0]}, 'sale', {next_id[0] % 7 + 1})")
        next_id[0] += 1

    for step in range(3):
        db.at((step + 1) * 5 * MINUTE, trickle)
    report = db.run_for(minutes(20))
    print(f"\n20 idle-ish minutes: actions = {report.actions}, "
          f"skips = {report.refreshes_skipped}")
    print("gold contents:", sorted(db.query("SELECT * FROM gold").rows))

    # --- overload: skips kick in ------------------------------------------
    for step in range(10):
        db.at(db.now + (step + 1) * 30 * SECOND, trickle)
    report = db.run_for(minutes(6))
    print(f"\n6 busy minutes on a slow warehouse: "
          f"skips = {report.refreshes_skipped} "
          "(section 3.3.3: later refreshes absorb skipped intervals)")
    for name in ("bronze", "silver", "gold"):
        assert db.check_dvs(name)
    print("DVS holds across all layers despite skips ✓")

    # --- failure and auto-suspension ---------------------------------------
    db.execute("INSERT INTO raw_events VALUES (999, 'poison', 0)")
    db.create_dynamic_table(
        "fragile", "SELECT id, 100 / qty per_unit FROM raw_events "
        "WHERE kind = 'poison'", "1 minute", "pipeline_wh",
        initialize="on_schedule")
    db.run_for(minutes(8))
    fragile = db.dynamic_table("fragile")
    failures = [r for r in fragile.refresh_history if r.error]
    print(f"\nfragile DT failed {len(failures)} times "
          f"(division by zero) -> suspended = {fragile.suspended}")

    db.execute("UPDATE raw_events SET qty = 2 WHERE kind = 'poison'")
    db.execute("ALTER DYNAMIC TABLE fragile RESUME")
    db.execute("ALTER DYNAMIC TABLE fragile REFRESH")
    print("after fixing the data and RESUME:",
          db.query("SELECT * FROM fragile").rows)

    # --- upstream DDL -------------------------------------------------------
    db.execute("CREATE OR REPLACE TABLE raw_events "
               "(id int, kind text, qty int)")
    db.execute("INSERT INTO raw_events VALUES (1, 'sale', 9)")
    db.refresh_dynamic_table("gold")
    bronze = db.dynamic_table("bronze")
    print("\nafter CREATE OR REPLACE of raw_events, bronze's refresh was:",
          bronze.refresh_history[-1].action)
    assert bronze.refresh_history[-1].action == RefreshAction.REINITIALIZE

    db.execute("DROP TABLE raw_events")
    record = db.engine.refresh(bronze, db.now + MINUTE)
    print("with raw_events dropped, a refresh fails:",
          record.error.split(":")[0])
    db.execute("UNDROP TABLE raw_events")
    db.refresh_dynamic_table("gold")
    print("after UNDROP, the pipeline healed itself:",
          sorted(db.query("SELECT * FROM gold").rows))

    # --- credits --------------------------------------------------------------
    warehouse = db.warehouses.get("pipeline_wh")
    print(f"\nwarehouse credits consumed: {warehouse.credits_used():.0f} "
          f"(co-locating 4 DTs in one warehouse)")


if __name__ == "__main__":
    main()
