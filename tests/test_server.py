"""Stress tests for the concurrent multi-session server front end.

These are the first tests that exercise the transaction manager, the
lock manager, and snapshot isolation's first-committer-wins validation
under *real* thread contention: N writer sessions hammer one table and
the table invariant (no lost updates / conserved totals) must hold.
"""

from __future__ import annotations

import threading

import pytest

from repro import Database
from repro.errors import LockConflict, UserError
from repro.server import Connection, Server

WRITERS = 8
TXNS_PER_WRITER = 12


@pytest.fixture
def server():
    database = Database()
    database.create_warehouse("wh")
    with Server(database, workers=WRITERS) as srv:
        yield srv


def _increment(session):
    (current,) = session.query("SELECT n FROM counter WHERE id = 1").rows[0]
    session.execute("UPDATE counter SET n = ? WHERE id = 1", (current + 1,))
    return current + 1


class TestContention:
    def test_concurrent_increments_lose_no_updates(self, server):
        """The sharp invariant: N writers x M read-modify-write increments
        on one row end at exactly N*M — every lost update would show."""
        server.execute("CREATE TABLE counter (id int, n int)").result()
        server.execute("INSERT INTO counter VALUES (1, 0)").result()

        futures = [server.submit_transaction(_increment)
                   for __ in range(WRITERS * TXNS_PER_WRITER)]
        results = [future.result() for future in futures]

        final = server.query("SELECT n FROM counter WHERE id = 1").rows[0][0]
        assert final == WRITERS * TXNS_PER_WRITER
        # Every attempt returned the value it installed; all distinct.
        assert sorted(results) == list(range(1, final + 1))
        # The pessimistic path was really exercised: all committed, and
        # any conflicts were retried to completion.
        stats = server.stats.snapshot()
        assert stats["commits"] == WRITERS * TXNS_PER_WRITER
        # No leaked locks after the dust settles.
        assert server.database.txns.locks.held_tables() == []

    def test_concurrent_transfers_conserve_total(self, server):
        server.execute("CREATE TABLE accounts (id int, balance int)").result()
        server.execute(
            "INSERT INTO accounts VALUES (0, 100), (1, 100), "
            "(2, 100), (3, 100)").result()

        def transfer(source: int, target: int, amount: int):
            def work(session):
                (from_balance,) = session.query(
                    "SELECT balance FROM accounts WHERE id = ?",
                    (source,)).rows[0]
                (to_balance,) = session.query(
                    "SELECT balance FROM accounts WHERE id = ?",
                    (target,)).rows[0]
                session.execute(
                    "UPDATE accounts SET balance = ? WHERE id = ?",
                    (from_balance - amount, source))
                session.execute(
                    "UPDATE accounts SET balance = ? WHERE id = ?",
                    (to_balance + amount, target))
            return work

        futures = []
        for index in range(WRITERS * TXNS_PER_WRITER):
            source = index % 4
            target = (index + 1 + index % 3) % 4
            if target == source:
                target = (target + 1) % 4
            futures.append(server.submit_transaction(
                transfer(source, target, (index % 7) + 1)))
        for future in futures:
            future.result()

        total = server.query("SELECT sum(balance) s FROM accounts").rows[0][0]
        assert total == 400
        assert server.database.txns.locks.held_tables() == []

    def test_connections_are_serialized_but_independent(self, server):
        server.execute("CREATE TABLE t (a int)").result()
        connections = [server.connect() for __ in range(4)]
        futures = []
        for index, connection in enumerate(connections):
            for value in range(10):
                futures.append(connection.execute(
                    "INSERT INTO t VALUES (?)", (index * 10 + value,)))
        for future in futures:
            future.result()
        rows = server.query("SELECT count(*) c FROM t").rows
        assert rows == [(40,)]
        for connection in connections:
            connection.close()

    def test_open_transactions_stay_invisible_across_threads(self, server):
        server.execute("CREATE TABLE t (a int)").result()
        writer = server.connect()
        reader = server.connect()
        writer.begin()
        writer.execute("INSERT INTO t VALUES (1)").result()
        assert reader.query("SELECT count(*) c FROM t").rows == [(0,)]
        writer.commit()
        assert reader.query("SELECT count(*) c FROM t").rows == [(1,)]
        writer.close()
        reader.close()

    def test_commit_queues_behind_held_lock(self, server):
        """A commit blocked on another holder's table lock waits (instead
        of failing instantly) and proceeds once the holder releases."""
        server.execute("CREATE TABLE t (a int)").result()
        server.execute("INSERT INTO t VALUES (1)").result()
        database = server.database

        blocker = database.txns.begin_at_latest()
        blocker.lock("t")

        session = database.session()
        session.begin()
        session.execute("UPDATE t SET a = 2")

        release_timer = threading.Timer(0.05, blocker.abort)
        release_timer.start()
        try:
            # Blocks ~50ms on the blocker's lock, then commits fine.
            session.commit()
        finally:
            release_timer.join()
        assert database.query("SELECT a FROM t").rows == [(2,)]

    def test_run_transaction_gives_up_eventually(self, server):
        server.execute("CREATE TABLE t (a int)").result()
        server.execute("INSERT INTO t VALUES (0)").result()

        def always_conflicts(session):
            session.query("SELECT a FROM t")
            # Sneak a concurrent commit in behind the transaction's back.
            server.database.session().execute("UPDATE t SET a = a + 1")
            session.execute("UPDATE t SET a = a + 10")

        with pytest.raises(LockConflict, match="gave up"):
            server.run_transaction(always_conflicts, max_attempts=3)
        assert server.stats.snapshot()["conflicts"] >= 3

    def test_closed_server_rejects_work(self, server):
        server.close()
        with pytest.raises(UserError, match="closed"):
            server.connect()

    def test_connection_close_rolls_back(self, server):
        server.execute("CREATE TABLE t (a int)").result()
        connection = server.connect()
        connection.begin()
        connection.execute("INSERT INTO t VALUES (1)").result()
        connection.close()
        assert server.query("SELECT count(*) c FROM t").rows == [(0,)]
        with pytest.raises(UserError, match="closed"):
            connection.execute("SELECT a FROM t")


class TestConcurrentDdl:
    def test_parallel_table_creation(self, server):
        futures = [server.execute(f"CREATE TABLE t{index} (a int)")
                   for index in range(12)]
        for future in futures:
            future.result()
        names = {entry.name
                 for entry in server.database.catalog.entries(kind="table")}
        assert {f"t{index}" for index in range(12)} <= names

    def test_parallel_writers_on_disjoint_tables(self, server):
        for index in range(4):
            server.execute(f"CREATE TABLE d{index} (a int)").result()
        futures = []
        for index in range(4):
            for value in range(20):
                futures.append(server.execute(
                    f"INSERT INTO d{index} VALUES (?)", (value,)))
        for future in futures:
            future.result()
        for index in range(4):
            count = server.query(f"SELECT count(*) c FROM d{index}").rows
            assert count == [(20,)]
