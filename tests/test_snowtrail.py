"""Tests for the configuration-comparison harness (section 6.1, level 5)."""

import random

import pytest

from repro import Database
from repro.scheduler.cost import CostModel
from repro.testing.snowtrail import (ObfuscatedResult, compare_configurations)
from repro.util.timeutil import MINUTE, SECOND, hours


def standard_workload(seed=3):
    """DDL + DML + DTs + a stream of mutations.

    All randomness is materialized while *building* the workload, so the
    same workload replays identically on every configuration (the harness
    runs it twice).
    """
    rng = random.Random(seed)
    seed_values = ", ".join(
        f"({i}, '{rng.choice('ab')}', {rng.randint(0, 50)})"
        for i in range(50))

    def setup(db: Database):
        db.create_warehouse("wh", size=1)
        db.execute("CREATE TABLE facts (id int, grp text, val int)")
        db.execute("CREATE TABLE dims (grp text, label text)")
        db.execute("INSERT INTO dims VALUES ('a', 'x'), ('b', 'y')")
        db.execute(f"INSERT INTO facts VALUES {seed_values}")
        db.execute(
            "CREATE DYNAMIC TABLE joined TARGET_LAG = '1 minute' "
            "WAREHOUSE = wh AS SELECT f.id, f.val, d.label FROM facts f "
            "LEFT JOIN dims d ON f.grp = d.grp")
        db.execute(
            "CREATE DYNAMIC TABLE summary TARGET_LAG = '2 minutes' "
            "WAREHOUSE = wh AS SELECT label, count(*) n, sum(val) s "
            "FROM joined GROUP BY label")

    workload = [(0, setup)]
    for step in range(8):
        value = rng.randint(0, 50)

        def mutate(db: Database, v=value, s=step):
            db.execute(f"INSERT INTO facts VALUES "
                       f"({100 + s}, 'a', {v})")
            if s % 3 == 0:
                db.execute(f"DELETE FROM facts WHERE val = {v % 20}")

        workload.append(((step + 1) * MINUTE, mutate))
    return workload


class TestObfuscation:
    def test_digest_order_independent(self):
        db = Database()
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db2 = Database()
        db2.execute("CREATE TABLE t (a int)")
        db2.execute("INSERT INTO t VALUES (3), (1), (2)")
        assert ObfuscatedResult.of(db, "t").digest == \
               ObfuscatedResult.of(db2, "t").digest

    def test_digest_detects_content_difference(self):
        db = Database()
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1)")
        db2 = Database()
        db2.execute("CREATE TABLE t (a int)")
        db2.execute("INSERT INTO t VALUES (2)")
        assert ObfuscatedResult.of(db, "t").digest != \
               ObfuscatedResult.of(db2, "t").digest

    def test_digest_never_contains_values(self):
        db = Database()
        db.execute("CREATE TABLE t (a text)")
        db.execute("INSERT INTO t VALUES ('super-secret-value')")
        result = ObfuscatedResult.of(db, "t")
        assert "secret" not in result.digest


class TestComparisons:
    def test_outer_join_strategies_agree(self):
        """The §5.5.1 equivalence on a full workload: both outer-join
        derivative strategies produce identical database states."""
        report = compare_configurations(
            lambda: Database(outer_join_strategy="direct"),
            lambda: Database(outer_join_strategy="rewrite"),
            standard_workload(), horizon=12 * MINUTE)
        assert report.consistent, report.pretty()
        assert "joined" in report.matches
        assert "summary" in report.matches

    def test_cost_models_agree_on_results(self):
        """Different refresh durations change *when* things run, but the
        final state after a quiet period must match."""
        report = compare_configurations(
            lambda: Database(),
            lambda: Database(cost_model=CostModel(fixed_cost=20 * SECOND)),
            standard_workload(), horizon=20 * MINUTE)
        assert report.consistent, report.pretty()

    def test_mismatch_is_reported(self):
        """Sanity: a configuration that actually changes results is
        caught. We fake one by injecting different data per run."""
        counter = [0]

        def setup(db: Database):
            counter[0] += 1
            db.execute("CREATE TABLE t (a int)")
            db.execute(f"INSERT INTO t VALUES ({counter[0]})")

        report = compare_configurations(
            Database, Database, [(0, setup)], horizon=MINUTE,
            tables=["t"])
        assert not report.consistent
        assert report.mismatches[0][0] == "t"
