"""Tests for the synthetic DT population (Figures 5–6 calibration)."""

from repro.plan.properties import OPERATOR_CATEGORIES
from repro.workload.population import (INCREMENTAL_FRACTION,
                                       TARGET_LAG_BUCKETS,
                                       generate_population, summarize)
from repro.util.timeutil import HOUR, MINUTE


class TestCalibration:
    def test_bucket_probabilities_sum_to_one(self):
        total = sum(weight for __, __, weight in TARGET_LAG_BUCKETS)
        assert abs(total - 1.0) < 1e-9

    def test_bucket_marginals_match_paper(self):
        """The generator's parameters must encode the paper's marginals
        exactly: <5min ≈ 20%, ≥16h ≈ 26%."""
        below = sum(w for __, lag, w in TARGET_LAG_BUCKETS
                    if lag < 5 * MINUTE)
        above = sum(w for __, lag, w in TARGET_LAG_BUCKETS
                    if lag >= 16 * HOUR)
        assert abs(below - 0.20) < 0.01
        assert abs(above - 0.26) < 0.01


class TestGeneration:
    def test_population_size(self):
        assert len(generate_population(200, seed=1)) == 200

    def test_deterministic_under_seed(self):
        first = generate_population(50, seed=3)
        second = generate_population(50, seed=3)
        assert [dt.query_sql for dt in first] == \
               [dt.query_sql for dt in second]

    def test_queries_are_buildable(self):
        for dt in generate_population(50, seed=5):
            assert dt.operators  # inventory computed from a bound plan

    def test_full_mode_only_on_unsupported_or_choice(self):
        population = generate_population(300, seed=2)
        assert {dt.refresh_mode for dt in population} == {
            "incremental", "full"}


class TestMeasuredMarginals:
    def test_lag_marginals_close_to_paper(self):
        summary = summarize(generate_population(4000, seed=0))
        assert abs(summary.fraction_below_5m - 0.20) < 0.03
        assert abs(summary.fraction_at_least_16h - 0.26) < 0.03
        assert abs(summary.fraction_between - 0.54) < 0.03

    def test_incremental_fraction_close_to_70pct(self):
        summary = summarize(generate_population(4000, seed=0))
        # Some sampled queries are not incrementalizable, so the measured
        # fraction sits at or slightly below the 70% knob.
        assert 0.55 <= summary.incremental_fraction <= INCREMENTAL_FRACTION + 0.05

    def test_cloned_and_shared_fractions(self):
        summary = summarize(generate_population(4000, seed=0))
        assert abs(summary.cloned_fraction - 0.20) < 0.03
        assert abs(summary.shared_fraction - 0.20) < 0.03

    def test_operator_frequencies_have_expected_shape(self):
        """Figure 6's qualitative shape: projections/filters dominate;
        joins and aggregates are common; flatten & scalar aggregates are
        rare among incremental DTs."""
        summary = summarize(generate_population(4000, seed=0))
        frequency = summary.operator_frequency
        assert frequency["project"] > 0.9
        assert frequency["inner_join"] > 0.2
        assert frequency["grouped_aggregate"] > 0.1
        assert frequency["window_function"] > 0.05
        # The Figure 6 population predates stateful aggregation: its
        # sampled queries never use scalar aggregates (though they are
        # incrementally maintainable now).
        assert frequency["scalar_aggregate"] == 0.0
        assert set(frequency) == set(OPERATOR_CATEGORIES)

    def test_histogram_covers_all_buckets(self):
        summary = summarize(generate_population(4000, seed=0))
        assert sum(summary.lag_histogram.values()) == 4000
        assert all(count > 0 for count in summary.lag_histogram.values())
