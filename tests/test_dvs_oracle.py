"""The randomized DVS workload test (the paper's section 6.1, level 4).

"Checking this assertion within a framework that generates random SQL
queries allows us to test the correctness of hundreds of thousands of
different DTs in a matter of hours. We run this workload test daily."

Here: random defining queries become DTs over a mutating star schema;
after every refresh (manual and scheduled, incremental and full) the
oracle re-runs the defining query at the frontier and compares.
"""

import random

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.util.timeutil import MINUTE
from repro.workload.generator import (QueryGenerator, UpdateWorkload,
                                      create_workload_schema)


def fresh_db(seed):
    db = Database()
    db.create_warehouse("wh")
    create_workload_schema(db)
    workload = UpdateWorkload(rng=random.Random(seed))
    workload.seed(db, facts=60, dims=8)
    return db, workload


@pytest.mark.parametrize("seed", range(6))
def test_random_queries_maintain_dvs(seed):
    db, workload = fresh_db(seed)
    generator = QueryGenerator(rng=random.Random(seed * 7 + 1))
    names = []
    for index in range(6):
        name = f"dt_{index}"
        db.create_dynamic_table(name, generator.query(), "1 minute", "wh")
        names.append(name)
    for step in range(6):
        workload.step(db)
        db.clock.advance(MINUTE)
        for name in names:
            db.refresh_dynamic_table(name)
            assert db.check_dvs(name)


@pytest.mark.parametrize("seed", range(3))
def test_full_only_queries_maintain_dvs(seed):
    """ORDER BY / LIMIT / scalar aggregates run in FULL mode; the oracle
    must hold there too (sorted comparison makes ORDER BY well-defined)."""
    db, workload = fresh_db(seed + 100)
    generator = QueryGenerator(rng=random.Random(seed), allow_full_only=True)
    names = []
    for index in range(4):
        name = f"dt_{index}"
        db.create_dynamic_table(name, generator.query(), "1 minute", "wh")
        names.append(name)
    for step in range(4):
        workload.step(db)
        db.clock.advance(MINUTE)
        for name in names:
            db.refresh_dynamic_table(name)
            assert db.check_dvs(name)


def test_scheduled_refreshes_maintain_dvs():
    db, workload = fresh_db(42)
    generator = QueryGenerator(rng=random.Random(42))
    names = []
    for index in range(4):
        name = f"dt_{index}"
        db.create_dynamic_table(name, generator.query(), "1 minute", "wh")
        names.append(name)
    for step in range(10):
        db.at((step + 1) * MINUTE, lambda: workload.step(db))
    db.run_for(12 * MINUTE)
    for name in names:
        assert db.check_dvs(name)
        history = db.dynamic_table(name).refresh_history
        assert any(r.action == RefreshAction.INCREMENTAL
                   or r.action == RefreshAction.FULL
                   for r in history if r.succeeded)


def test_stacked_random_dts_maintain_dvs():
    db, workload = fresh_db(7)
    db.create_dynamic_table(
        "layer1", "SELECT id, category, amount FROM facts WHERE amount > 10",
        "1 minute", "wh")
    db.create_dynamic_table(
        "layer2",
        "SELECT category, count(*) n, sum(amount) total FROM layer1 "
        "GROUP BY category", "downstream", "wh")
    db.create_dynamic_table(
        "layer3", "SELECT category, total FROM layer2 WHERE n > 1",
        "1 minute", "wh")
    for step in range(8):
        workload.step(db)
        db.clock.advance(MINUTE)
        db.refresh_dynamic_table("layer3")
        assert db.check_dvs("layer1")
        assert db.check_dvs("layer2")
        assert db.check_dvs("layer3")


def test_oracle_detects_corruption():
    """Sanity: the oracle actually fires when a DT's stored contents are
    tampered with (a corrupted merge would look like this)."""
    db, __ = fresh_db(1)
    db.create_dynamic_table("d", "SELECT id, amount FROM facts",
                            "1 minute", "wh")
    dt = db.dynamic_table("d")
    from repro.ivm.changes import ChangeSet
    from repro.storage.table import StagedWrite

    poison = ChangeSet()
    poison.insert("evil:1", (999_999, -1))
    dt.table.apply(StagedWrite(changeset=poison), db.txns.hlc.now())
    with pytest.raises(AssertionError, match="DVS violation"):
        db.check_dvs("d")
