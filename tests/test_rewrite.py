"""Tests for the plan optimizer: semantics-preserving and id-preserving."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.executor import evaluate
from repro.engine.relation import DictResolver, Relation
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.ivm.changes import ChangeSet
from repro.ivm.differentiator import DictDeltaSource, differentiate
from repro.plan import logical as lp
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.plan.rewrite import fold_constants, optimize
from repro.engine import expressions as e
from repro.sql.parser import parse_query

ITEMS = schema_of(("id", SqlType.INT), ("grp", SqlType.TEXT),
                  ("val", SqlType.INT), table="items")
LOOKUP = schema_of(("key", SqlType.TEXT), ("label", SqlType.TEXT),
                   table="lookup")
PROVIDER = DictSchemaProvider({"items": ITEMS, "lookup": LOOKUP})


def plan_of(sql):
    return build_plan(parse_query(sql), PROVIDER)


def data():
    items = Relation(ITEMS, [(1, "a", 5), (2, "b", 9), (3, "a", 2)],
                     ["i0", "i1", "i2"])
    lookup = Relation(LOOKUP, [("a", "x"), ("b", "y")], ["l0", "l1"])
    return {"items": items, "lookup": lookup}


class TestConstantFolding:
    def test_folds_arithmetic(self):
        folded = fold_constants(e.Arithmetic("+", e.Literal(1), e.Literal(2)))
        assert folded == e.Literal(3)

    def test_preserves_column_refs(self):
        expr = e.Arithmetic("+", e.ColumnRef(0, SqlType.INT), e.Literal(2))
        assert fold_constants(expr) is expr

    def test_preserves_runtime_errors(self):
        poison = e.Arithmetic("/", e.Literal(1), e.Literal(0))
        assert fold_constants(poison) is poison

    def test_preserves_context_functions(self):
        expr = e.ContextFunction("current_timestamp")
        assert fold_constants(expr) is expr


class TestStructure:
    def test_true_filter_removed(self):
        plan = optimize(plan_of("SELECT id FROM items WHERE 1 = 1"))
        assert not any(isinstance(node, lp.Filter) for node in plan.walk())

    def test_stacked_filters_merge(self):
        inner = plan_of("SELECT id FROM items WHERE val > 1")
        outer = lp.Filter(inner, e.Comparison(
            ">", e.ColumnRef(0, SqlType.INT), e.Literal(0)))
        optimized = optimize(outer)
        # The two predicates end up in one Filter below the Project.
        filters = [node for node in optimized.walk()
                   if isinstance(node, lp.Filter)]
        assert len(filters) == 1

    def test_filter_pushed_below_project(self):
        plan = optimize(plan_of(
            "SELECT v FROM (SELECT val * 2 v FROM items) s WHERE v > 4"))
        # Filter must sit below the projection, directly over the scan.
        filter_node = next(node for node in plan.walk()
                           if isinstance(node, lp.Filter))
        assert isinstance(filter_node.child, lp.Scan)

    def test_filter_pushed_into_inner_join_sides(self):
        plan = optimize(plan_of(
            "SELECT i.id FROM items i JOIN lookup l ON i.grp = l.key "
            "WHERE i.val > 3 AND l.label = 'x'"))
        join = next(node for node in plan.walk() if isinstance(node, lp.Join))
        assert isinstance(join.left, lp.Filter)
        assert isinstance(join.right, lp.Filter)

    def test_left_join_keeps_right_filter_above(self):
        plan = optimize(plan_of(
            "SELECT i.id FROM items i LEFT JOIN lookup l ON i.grp = l.key "
            "WHERE l.label = 'x'"))
        join = next(node for node in plan.walk() if isinstance(node, lp.Join))
        assert not isinstance(join.right, lp.Filter)

    def test_filter_pushed_into_union_branches(self):
        plan = optimize(plan_of(
            "SELECT v FROM (SELECT id v FROM items UNION ALL "
            "SELECT val v FROM items) u WHERE v > 1"))
        union = next(node for node in plan.walk()
                     if isinstance(node, lp.UnionAll))
        for branch in union.inputs:
            assert any(isinstance(node, lp.Filter)
                       for node in branch.walk())

    def test_group_key_filter_pushed_below_aggregate(self):
        plan = optimize(plan_of(
            "SELECT grp, count(*) n FROM items GROUP BY grp "
            "HAVING grp != 'b'"))
        agg = next(node for node in plan.walk()
                   if isinstance(node, lp.Aggregate))
        assert isinstance(agg.child, lp.Filter)

    def test_aggregate_filter_stays_above(self):
        plan = optimize(plan_of(
            "SELECT grp, count(*) n FROM items GROUP BY grp "
            "HAVING count(*) > 1"))
        agg = next(node for node in plan.walk()
                   if isinstance(node, lp.Aggregate))
        assert not isinstance(agg.child, lp.Filter)

    def test_adjacent_projects_merge(self):
        plan = optimize(plan_of(
            "SELECT v + 1 w FROM (SELECT val * 2 v FROM items) s"))
        projects = [node for node in plan.walk()
                    if isinstance(node, lp.Project)]
        assert len(projects) == 1


QUERIES = [
    "SELECT id, val FROM items WHERE val > 3 AND grp = 'a'",
    "SELECT v FROM (SELECT val * 2 v, grp FROM items) s WHERE v > 4",
    "SELECT i.id, l.label FROM items i JOIN lookup l ON i.grp = l.key "
    "WHERE i.val > 1 AND l.label = 'x'",
    "SELECT i.id, l.label FROM items i LEFT JOIN lookup l ON i.grp = l.key "
    "WHERE i.val > 1",
    "SELECT grp, count(*) n FROM items GROUP BY grp HAVING grp != 'b'",
    "SELECT v FROM (SELECT id v FROM items UNION ALL SELECT val FROM items)"
    " u WHERE v > 2",
    "SELECT id, sum(val) over (partition by grp order by id) s FROM items"
    " WHERE val < 9",
]


class TestEquivalence:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_same_rows_and_ids(self, sql):
        plan = plan_of(sql)
        optimized = optimize(plan)
        resolver = DictResolver(data())
        original = evaluate(plan, resolver)
        rewritten = evaluate(optimized, resolver)
        assert sorted(original.pairs()) == sorted(rewritten.pairs())

    @pytest.mark.parametrize("sql", QUERIES)
    def test_same_deltas(self, sql):
        """Optimized plans must differentiate to the same net changes."""
        old_rels = data()
        new_items = Relation(
            ITEMS, [(1, "a", 5), (3, "a", 7), (4, "b", 1)],
            ["i0", "i2", "i3"])
        delta = ChangeSet()
        delta.delete("i1", (2, "b", 9))
        delta.delete("i2", (3, "a", 2))
        delta.insert("i2", (3, "a", 7))
        delta.insert("i3", (4, "b", 1))
        new_rels = {"items": new_items, "lookup": old_rels["lookup"]}
        source = DictDeltaSource(old_rels, new_rels,
                                 {"items": delta, "lookup": ChangeSet()})
        plan = plan_of(sql)
        base, __ = differentiate(plan, source)
        opt, __ = differentiate(optimize(plan), source)
        canon = lambda cs: sorted((c.action.value, c.row_id, c.row)
                                  for c in cs)
        assert canon(base) == canon(opt)
