"""Tests for AST → logical plan binding."""

import pytest

from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.errors import BindError
from repro.plan import logical as lp
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.plan.properties import incrementalizability
from repro.sql.parser import parse_query


@pytest.fixture
def provider():
    facts = schema_of(("id", SqlType.INT), ("cat", SqlType.TEXT),
                      ("amt", SqlType.INT), ("score", SqlType.FLOAT),
                      ("payload", SqlType.VARIANT), table="facts")
    dims = schema_of(("id", SqlType.INT), ("region", SqlType.TEXT),
                     table="dims")
    views = {"big_facts": parse_query("SELECT id, amt FROM facts WHERE amt > 10")}
    return DictSchemaProvider({"facts": facts, "dims": dims}, views)


def plan_of(sql, provider):
    return build_plan(parse_query(sql), provider)


class TestProjectionsAndNames:
    def test_output_names(self, provider):
        plan = plan_of("SELECT id, amt * 2 AS doubled, amt + 1 FROM facts",
                       provider)
        assert plan.schema.names == ["id", "doubled", "col_2"]

    def test_star_expansion(self, provider):
        plan = plan_of("SELECT * FROM facts", provider)
        assert plan.schema.names == ["id", "cat", "amt", "score", "payload"]

    def test_qualified_star(self, provider):
        plan = plan_of(
            "SELECT d.* FROM facts f JOIN dims d ON f.id = d.id", provider)
        assert plan.schema.names == ["id", "region"]

    def test_derived_name_from_path(self, provider):
        plan = plan_of("SELECT payload:a.b FROM facts", provider)
        assert plan.schema.names == ["b"]

    def test_unknown_column(self, provider):
        with pytest.raises(BindError):
            plan_of("SELECT nope FROM facts", provider)

    def test_unknown_table(self, provider):
        with pytest.raises(BindError):
            plan_of("SELECT 1 FROM nope", provider)

    def test_alias_scoping(self, provider):
        plan = plan_of("SELECT f.id FROM facts f", provider)
        assert isinstance(plan, lp.Project)
        with pytest.raises(BindError):
            plan_of("SELECT facts.id FROM facts f", provider)


class TestViews:
    def test_view_expansion(self, provider):
        plan = plan_of("SELECT id FROM big_facts", provider)
        scans = [node for node in plan.walk() if isinstance(node, lp.Scan)]
        assert [scan.table for scan in scans] == ["facts"]

    def test_view_alias(self, provider):
        plan = plan_of("SELECT b.id FROM big_facts b", provider)
        assert plan.schema.names == ["id"]


class TestAggregation:
    def test_group_by_all_matches_listing1(self, provider):
        plan = plan_of(
            "SELECT cat, count_if(amt > 10) n FROM facts GROUP BY ALL",
            provider)
        aggregates = [node for node in plan.walk()
                      if isinstance(node, lp.Aggregate)]
        assert len(aggregates) == 1
        assert len(aggregates[0].group_exprs) == 1

    def test_group_by_ordinal(self, provider):
        plan = plan_of("SELECT cat, count(*) FROM facts GROUP BY 1", provider)
        agg = next(node for node in plan.walk()
                   if isinstance(node, lp.Aggregate))
        assert len(agg.group_exprs) == 1

    def test_ungrouped_column_rejected(self, provider):
        with pytest.raises(BindError, match="GROUP BY"):
            plan_of("SELECT cat, amt, count(*) FROM facts GROUP BY cat",
                    provider)

    def test_having_binds_aggregates(self, provider):
        plan = plan_of(
            "SELECT cat, count(*) c FROM facts GROUP BY cat "
            "HAVING count(*) > 2 AND cat != 'x'", provider)
        filters = [node for node in plan.walk()
                   if isinstance(node, lp.Filter)]
        assert filters  # HAVING became a Filter above the Aggregate

    def test_having_without_group_rejected(self, provider):
        with pytest.raises(BindError):
            plan_of("SELECT id FROM facts HAVING id > 1", provider)

    def test_scalar_aggregate(self, provider):
        plan = plan_of("SELECT count(*) FROM facts", provider)
        agg = next(node for node in plan.walk()
                   if isinstance(node, lp.Aggregate))
        assert agg.is_scalar

    def test_aggregate_output_types(self, provider):
        plan = plan_of(
            "SELECT cat, count(*) c, sum(amt) s, avg(amt) a FROM facts "
            "GROUP BY cat", provider)
        names_types = dict(zip(plan.schema.names, plan.schema.types))
        assert names_types["c"] == SqlType.INT
        assert names_types["s"] == SqlType.INT
        assert names_types["a"] == SqlType.FLOAT

    def test_aggregate_in_where_rejected(self, provider):
        with pytest.raises(BindError):
            plan_of("SELECT id FROM facts WHERE count(*) > 1", provider)


class TestWindows:
    def test_window_node_created(self, provider):
        plan = plan_of(
            "SELECT id, row_number() over (partition by cat order by amt) rn "
            "FROM facts", provider)
        windows = [node for node in plan.walk()
                   if isinstance(node, lp.Window)]
        assert len(windows) == 1
        assert windows[0].calls[0].function == "row_number"

    def test_distinct_partitions_stack(self, provider):
        plan = plan_of(
            "SELECT id, count(*) over (partition by cat) a, "
            "count(*) over (partition by id) b FROM facts", provider)
        windows = [node for node in plan.walk()
                   if isinstance(node, lp.Window)]
        assert len(windows) == 2

    def test_qualify_becomes_filter(self, provider):
        plan = plan_of(
            "SELECT id, row_number() over (partition by cat order by amt) rn "
            "FROM facts QUALIFY rn = 1", provider)
        assert isinstance(plan, lp.Project)
        assert isinstance(plan.child, lp.Filter)

    def test_rank_requires_order_by(self, provider):
        with pytest.raises(BindError):
            plan_of("SELECT rank() over (partition by cat) FROM facts",
                    provider)

    def test_window_over_aggregate(self, provider):
        plan = plan_of(
            "SELECT cat, sum(amt) s, "
            "rank() over (partition by cat order by sum(amt)) r "
            "FROM facts GROUP BY cat", provider)
        nodes = [type(node).__name__ for node in plan.walk()]
        assert "Window" in nodes and "Aggregate" in nodes


class TestSetOperations:
    def test_union_all(self, provider):
        plan = plan_of("SELECT id FROM facts UNION ALL SELECT id FROM dims",
                       provider)
        union = next(node for node in plan.walk()
                     if isinstance(node, lp.UnionAll))
        assert len(union.inputs) == 2

    def test_union_arity_mismatch(self, provider):
        with pytest.raises(BindError):
            plan_of("SELECT id, cat FROM facts UNION ALL SELECT id FROM dims",
                    provider)

    def test_union_type_mismatch(self, provider):
        with pytest.raises(Exception):
            plan_of("SELECT id FROM facts UNION ALL SELECT region FROM dims",
                    provider)


class TestSortLimit:
    def test_order_by_limit(self, provider):
        plan = plan_of("SELECT id FROM facts ORDER BY id DESC LIMIT 3",
                       provider)
        assert isinstance(plan, lp.Limit)
        nodes = [type(node).__name__ for node in plan.walk()]
        assert "Sort" in nodes

    def test_order_by_ordinal(self, provider):
        plan = plan_of("SELECT cat, id FROM facts ORDER BY 2", provider)
        assert any(isinstance(node, lp.Sort) for node in plan.walk())

    def test_order_by_unprojected_column(self, provider):
        plan = plan_of("SELECT id FROM facts ORDER BY amt", provider)
        sort = next(node for node in plan.walk() if isinstance(node, lp.Sort))
        assert sort.keys  # bound against the pre-projection input

    def test_order_by_ordinal_out_of_range(self, provider):
        with pytest.raises(BindError):
            plan_of("SELECT id FROM facts ORDER BY 5", provider)


class TestFlatten:
    def test_flatten_schema(self, provider):
        plan = plan_of(
            "SELECT id, f.value FROM facts, LATERAL FLATTEN("
            "input => payload:tags) f", provider)
        flatten = next(node for node in plan.walk()
                       if isinstance(node, lp.Flatten))
        assert flatten.schema.names[-2:] == ["value", "index"]


class TestIncrementalizability:
    def test_float_join_key_flagged(self, provider):
        plan = plan_of(
            "SELECT f.id FROM facts f JOIN dims d ON f.score = d.id",
            provider)
        check = incrementalizability(plan)
        assert not check.supported
        assert any("FLOAT" in reason for reason in check.reasons)

    def test_float_group_key_flagged(self, provider):
        plan = plan_of("SELECT score, count(*) FROM facts GROUP BY score",
                       provider)
        assert not incrementalizability(plan).supported

    def test_order_by_flagged(self, provider):
        plan = plan_of("SELECT id FROM facts ORDER BY id", provider)
        assert not incrementalizability(plan).supported

    def test_scalar_aggregate_supported(self, provider):
        """Scalar aggregates are incrementally maintainable now: the
        stateful rule keeps them as one implicit group (lifting the
        paper's section 3.3.2 restriction)."""
        plan = plan_of("SELECT count(*) FROM facts", provider)
        assert incrementalizability(plan).supported

    def test_plain_query_supported(self, provider):
        plan = plan_of(
            "SELECT cat, count(*) FROM facts GROUP BY cat", provider)
        assert incrementalizability(plan).supported
