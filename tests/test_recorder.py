"""Tests for the history recorder: live executions → isolation analysis."""

import pytest

from repro import Database
from repro.isolation import (Derive, IsolationLevel, Read, Write, classify,
                             detect_phenomena)
from repro.testing.recorder import HistoryRecorder
from repro.util.timeutil import MINUTE


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE bt (x int)")
    database.execute("INSERT INTO bt VALUES (1)")
    return database


class TestReconstruction:
    def test_base_versions_become_writes(self, db):
        recorder = HistoryRecorder(db)
        history = recorder.history()
        writes = [e for e in history.events if isinstance(e, Write)]
        assert len(writes) == 1
        assert writes[0].version.obj == "bt"

    def test_refreshes_become_derivations(self, db):
        db.create_dynamic_table("dt", "SELECT x FROM bt", "1 minute", "wh")
        recorder = HistoryRecorder(db)
        history = recorder.history()
        derivations = [e for e in history.events if isinstance(e, Derive)]
        assert len(derivations) == 1
        assert derivations[0].sources[0].obj == "bt"

    def test_queries_become_reads(self, db):
        recorder = HistoryRecorder(db)
        recorder.query("SELECT x FROM bt")
        history = recorder.history()
        reads = [e for e in history.events if isinstance(e, Read)]
        assert len(reads) == 1

    def test_query_results_match_plain_queries(self, db):
        recorder = HistoryRecorder(db)
        assert recorder.query("SELECT x FROM bt").rows == \
               db.query("SELECT x FROM bt").rows


class TestPaperScenarioLive:
    """Figure 1/2's scenario executed on the real system."""

    def build_scenario(self, db):
        db.create_dynamic_table("dt", "SELECT x, x * 10 y FROM bt",
                                "1 minute", "wh")
        db.clock.advance(MINUTE)
        db.execute("UPDATE bt SET x = 2")  # dt now stale

    def test_multi_table_read_shows_g_single(self, db):
        self.build_scenario(db)
        recorder = HistoryRecorder(db)
        result = recorder.query("SELECT d.y, b.x FROM dt d, bt b")
        assert result.rows == [(10, 2)]  # the skewed observation
        report = detect_phenomena(recorder.history())
        assert report.g_single

    def test_single_dt_read_is_clean(self, db):
        self.build_scenario(db)
        recorder = HistoryRecorder(db)
        recorder.query("SELECT y FROM dt")
        report = detect_phenomena(recorder.history())
        assert report.exhibited() == []

    def test_fresh_dt_read_is_clean(self, db):
        self.build_scenario(db)
        db.refresh_dynamic_table("dt")  # catch up
        recorder = HistoryRecorder(db)
        recorder.query("SELECT d.y, b.x FROM dt d, bt b")
        report = detect_phenomena(recorder.history())
        assert report.exhibited() == []

    def test_two_stale_dts_from_same_source_consistent(self, db):
        """Two DTs refreshed at the same data timestamp share a snapshot;
        reading both shows no skew even while both are stale."""
        db.create_dynamic_table("dt1", "SELECT x FROM bt", "1 minute", "wh")
        db.clock.advance(MINUTE)
        db.refresh_dynamic_table("dt1")
        db.create_dynamic_table("dt2", "SELECT x * 2 xx FROM bt",
                                "1 minute", "wh")
        db.clock.advance(MINUTE)
        db.execute("UPDATE bt SET x = 5")
        recorder = HistoryRecorder(db)
        recorder.query("SELECT a.x, b.xx FROM dt1 a, dt2 b")
        report = detect_phenomena(recorder.history())
        # Both DTs are stale, but the reader never observes the new base
        # write, so no anti-dependency cycle closes.
        assert report.g_single == [] and report.g2 == []
