"""Crash-recovery property test: run a seeded random workload against a
durable database, snapshot the durable state after every operation keyed
by the WAL byte position, then simulate kills by truncating a copy of
the WAL at arbitrary byte offsets — exact record boundaries, mid-record,
and uniformly random — and assert the reopened database's state equals
the reference snapshot at the last intact record boundary.

Kill points that fall between two records *inside* one multi-record
operation have no reference snapshot; for those the test asserts the
weaker (but still real) properties that recovery succeeds and is
deterministic: two recoveries of the same truncated prefix produce
identical states.

The captured state is the *durable* state only. The live HLC is
excluded: read-only and empty commits issue timestamps without writing
a WAL record (documented non-events), so the live clock legitimately
runs ahead of the last durable record; exact HLC round-tripping is
pinned by ``test_durability.py`` instead.
"""

import itertools
import os
import random
import shutil

import pytest

from repro import Database
from repro.durability import codec
from repro.durability.wal import WAL_MAGIC, scan_wal
from repro.util.timeutil import MINUTE

N_OPS = 28
RANDOM_KILLS = 10
STRONG_KILLS = 8


def wal_file(directory) -> str:
    return os.path.join(str(directory), "wal.log")


def capture(db) -> dict:
    """The durable state: catalog shape, row contents by row id, and
    per-DT refresh frontier (all JSON-comparable)."""
    entries = {}
    for entry in db.catalog.entries(include_dropped=True):
        info = {"kind": entry.kind, "dropped": entry.dropped,
                "entity_id": entry.entity_id,
                "generation": entry.generation}
        if not entry.dropped:
            if entry.kind == "table":
                info["rows"] = sorted(entry.payload.rows_by_id().items())
            elif entry.kind == "dynamic table":
                dt = entry.payload
                info["rows"] = sorted(dt.table.rows_by_id().items())
                info["initialized"] = dt.initialized
                info["suspended"] = dt.suspended
                info["hidden"] = dt.hidden
                info["frontier"] = codec.encode(dt.frontier)
        entries[entry.name] = info
    return {"epoch": db.catalog.epoch, "entries": entries}


class Workload:
    """One seeded random session against a durable database."""

    def __init__(self, db, rng):
        self.db = db
        self.rng = rng
        self.tables: list[str] = []
        self.dts: list[str] = []
        self.names = itertools.count(1)
        self.row_ids = itertools.count(100)
        #: WAL position -> durable state right after the op that ended
        #: there. Ops that log nothing keep the first snapshot (the
        #: durable state cannot have changed without a record).
        self.snapshots: dict[int, dict] = {}

    def note(self) -> None:
        position = self.db.durability.wal.position()
        self.snapshots.setdefault(position, capture(self.db))

    def seed_schema(self) -> None:
        self.note()  # the empty database, at the bare WAL header
        self.db.create_warehouse("wh")
        self.db.execute("CREATE TABLE t0 (id int, val int)")
        self.db.execute("INSERT INTO t0 VALUES (1, 10), (2, 20)")
        self.tables.append("t0")
        self.note()

    def step(self) -> None:
        db, rng = self.db, self.rng
        roll = rng.random()
        if roll < 0.40:
            table = rng.choice(self.tables)
            values = ", ".join(
                f"({next(self.row_ids)}, {rng.randrange(5) * 10})"
                for _ in range(rng.randrange(1, 4)))
            db.execute(f"INSERT INTO {table} VALUES {values}")
        elif roll < 0.50:
            table = rng.choice(self.tables)
            db.execute(f"DELETE FROM {table} "
                       f"WHERE val = {rng.randrange(5) * 10}")
        elif roll < 0.62 and self.dts:
            db.refresh_dynamic_table(rng.choice(self.dts))
        elif roll < 0.70:
            name = f"t{next(self.names)}"
            db.execute(f"CREATE TABLE {name} (id int, val int)")
            self.tables.append(name)
        elif roll < 0.80 and len(self.dts) < 3:
            name = f"dt{len(self.dts)}"
            source = rng.choice(self.tables)
            query = rng.choice([
                f"SELECT val, count(*) n FROM {source} GROUP BY val",
                f"SELECT id, val FROM {source} WHERE val > 0",
                f"SELECT sum(id) s FROM {source}",
            ])
            db.create_dynamic_table(name, query, "1 minute", "wh")
            self.dts.append(name)
        elif roll < 0.88:
            clone = f"c{next(self.names)}"
            db.execute(f"CREATE TABLE {clone} "
                       f"CLONE {rng.choice(self.tables)}")
            self.tables.append(clone)
        elif roll < 0.94:
            scratch = f"s{next(self.names)}"
            db.execute(f"CREATE TABLE {scratch} (id int)")
            db.execute(f"DROP TABLE {scratch}")
        else:
            db.run_for(MINUTE)  # scheduled refreshes fire in here
        self.note()

    def run(self, ops: int = N_OPS) -> None:
        self.seed_schema()
        for _ in range(ops):
            self.step()


def recover_state(tmp_path, source_dir, offset: int, tag: str) -> dict:
    """Copy the durable directory, truncate the WAL copy at ``offset``
    (the simulated kill), reopen, and capture the recovered state."""
    copy = tmp_path / f"kill-{tag}"
    shutil.copytree(source_dir, copy)
    with open(wal_file(copy), "r+b") as handle:
        handle.truncate(offset)
    db = Database(path=str(copy))
    try:
        return capture(db)
    finally:
        db.close()
        shutil.rmtree(copy)


def kill_offsets(rng, snapshots, file_size: int) -> list[tuple[int, str]]:
    # Only record-boundary and uniformly random kills here. Torn frames
    # from a crash *mid-append* are produced and checked through the
    # fault-injection subsystem instead (the ``wal.torn`` point with
    # ``leave_torn`` in ``test_faults_durability.py``), which exercises
    # the real append path rather than byte surgery on a copy.
    header = len(WAL_MAGIC)
    strong = sorted(p for p in snapshots if header <= p <= file_size)
    sample = (rng.sample(strong, STRONG_KILLS)
              if len(strong) > STRONG_KILLS else list(strong))
    offsets = [(p, "boundary") for p in sample]
    for _ in range(RANDOM_KILLS):
        offsets.append((rng.randrange(header, file_size + 1), "random"))
    return offsets


def check_kills(tmp_path, data_dir, rng, snapshots) -> None:
    file_size = os.path.getsize(wal_file(data_dir))
    for index, (offset, flavor) in enumerate(
            kill_offsets(rng, snapshots, file_size)):
        # The last intact record boundary at or before the kill point is
        # where recovery must land.
        probe = tmp_path / "probe.wal"
        shutil.copyfile(wal_file(data_dir), probe)
        with open(probe, "r+b") as handle:
            handle.truncate(offset)
        boundary = scan_wal(probe).good_end
        recovered = recover_state(tmp_path, data_dir, offset,
                                  f"{flavor}-{index}")
        if boundary in snapshots:
            assert recovered == snapshots[boundary], (
                f"kill at byte {offset} ({flavor}, boundary {boundary}) "
                f"recovered a different state than the live snapshot")
        else:
            # Intra-operation record boundary: no live snapshot exists,
            # but recovery must still be deterministic.
            again = recover_state(tmp_path, data_dir, offset,
                                  f"{flavor}-{index}-again")
            assert recovered == again, (
                f"kill at byte {offset} ({flavor}) recovered "
                f"nondeterministically")


@pytest.mark.parametrize("seed", [1, 23])
def test_recovery_matches_snapshots_at_any_kill_point(tmp_path, seed):
    rng = random.Random(seed)
    data_dir = tmp_path / "data"
    db = Database(path=str(data_dir))
    workload = Workload(db, rng)
    workload.run()
    db.close()
    assert len(workload.snapshots) > N_OPS // 2
    check_kills(tmp_path, data_dir, rng, workload.snapshots)


def test_recovery_after_mid_workload_checkpoint(tmp_path):
    """Kills after a checkpoint recover from checkpoint + WAL suffix:
    snapshots taken after the checkpoint (the WAL position restarts at
    the header there) must be reproduced from the truncated suffix."""
    rng = random.Random(7)
    data_dir = tmp_path / "data"
    db = Database(path=str(data_dir))
    workload = Workload(db, rng)
    workload.seed_schema()
    for _ in range(N_OPS // 2):
        workload.step()
    db.checkpoint()
    # Positions restart after the WAL truncation: only post-checkpoint
    # snapshots describe states reachable from the final on-disk layout.
    workload.snapshots.clear()
    workload.note()
    for _ in range(N_OPS // 2):
        workload.step()
    db.close()
    check_kills(tmp_path, data_dir, rng, workload.snapshots)
