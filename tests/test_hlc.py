"""Tests for the hybrid logical clock."""

from hypothesis import given, strategies as st

from repro.txn.hlc import HLC_ZERO, HlcTimestamp, HybridLogicalClock


class TestOrdering:
    def test_wall_dominates(self):
        assert HlcTimestamp(1, 99) < HlcTimestamp(2, 0)

    def test_logical_breaks_ties(self):
        assert HlcTimestamp(5, 1) < HlcTimestamp(5, 2)

    def test_zero_is_minimal(self):
        assert HLC_ZERO <= HlcTimestamp(0, 0)

    def test_next_is_strictly_greater(self):
        ts = HlcTimestamp(7, 3)
        assert ts < ts.next()


class TestMonotonicity:
    def test_stalled_physical_clock_still_advances(self):
        clock = HybridLogicalClock(lambda: 100)
        first = clock.now()
        second = clock.now()
        third = clock.now()
        assert first < second < third
        assert first.wall == second.wall == third.wall == 100

    def test_advancing_physical_clock_resets_logical(self):
        times = iter([10, 20])
        clock = HybridLogicalClock(lambda: next(times))
        first = clock.now()
        second = clock.now()
        assert first == HlcTimestamp(10, 0)
        assert second == HlcTimestamp(20, 0)

    def test_backwards_physical_clock_tolerated(self):
        times = iter([100, 50, 50])
        clock = HybridLogicalClock(lambda: next(times))
        first = clock.now()
        second = clock.now()
        third = clock.now()
        assert first < second < third
        assert second.wall == 100  # wall never regresses

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=2,
                    max_size=50))
    def test_always_strictly_increasing(self, physical_times):
        iterator = iter(physical_times)
        clock = HybridLogicalClock(
            lambda: next(iterator, physical_times[-1]))
        issued = [clock.now() for __ in physical_times]
        assert all(a < b for a, b in zip(issued, issued[1:]))


class TestUpdate:
    def test_remote_ahead(self):
        clock = HybridLogicalClock(lambda: 10)
        merged = clock.update(HlcTimestamp(50, 3))
        assert merged > HlcTimestamp(50, 3)
        assert merged.wall == 50

    def test_remote_behind(self):
        clock = HybridLogicalClock(lambda: 100)
        clock.now()
        merged = clock.update(HlcTimestamp(5, 0))
        assert merged.wall == 100

    def test_update_then_now_stays_ordered(self):
        clock = HybridLogicalClock(lambda: 10)
        merged = clock.update(HlcTimestamp(99, 7))
        later = clock.now()
        assert later > merged

    def test_equal_walls_merge_logical(self):
        clock = HybridLogicalClock(lambda: 10)
        clock.now()
        merged = clock.update(HlcTimestamp(10, 5))
        assert merged.wall == 10
        assert merged.logical >= 6
