"""Tests for cross-region replication (section 3.4)."""

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.core.replication import replicate_subgraph
from repro.errors import CatalogError
from repro.util.timeutil import MINUTE


@pytest.fixture
def primary():
    db = Database()
    db.create_warehouse("wh")
    db.execute("CREATE TABLE src (id int, grp text, val int)")
    db.execute("INSERT INTO src VALUES (1, 'a', 10), (2, 'b', 20),"
               " (3, 'a', 30)")
    db.create_dynamic_table(
        "clean", "SELECT id, grp, val FROM src WHERE val > 5",
        "downstream", "wh")
    db.create_dynamic_table(
        "totals", "SELECT grp, count(*) n, sum(val) s FROM clean "
        "GROUP BY grp", "1 minute", "wh")
    return db


class TestReplication:
    def test_replica_matches_primary(self, primary):
        secondary = Database()
        replicate_subgraph(primary, secondary, ["totals"])
        for name in ("src", "clean", "totals"):
            assert sorted(secondary.query(f"SELECT * FROM {name}").rows) \
                   == sorted(primary.query(f"SELECT * FROM {name}").rows)

    def test_replica_preserves_dvs_and_data_timestamp(self, primary):
        secondary = Database()
        replicate_subgraph(primary, secondary, ["totals"])
        assert secondary.check_dvs("clean")
        assert secondary.check_dvs("totals")
        assert secondary.dynamic_table("totals").data_timestamp == \
               primary.dynamic_table("totals").data_timestamp

    def test_failover_continues_incrementally(self, primary):
        """Disaster recovery: the replica resumes refreshes on its own,
        incrementally, with no reinitialization."""
        secondary = Database()
        replicate_subgraph(primary, secondary, ["totals"])
        secondary.execute("INSERT INTO src VALUES (9, 'b', 40)")
        secondary.refresh_dynamic_table("totals")
        totals = secondary.dynamic_table("totals")
        assert totals.refresh_history[-1].action == \
               RefreshAction.INCREMENTAL
        assert secondary.check_dvs("totals")
        assert ("b", 2, 60) in secondary.query(
            "SELECT * FROM totals").rows

    def test_replica_scheduler_operates_independently(self, primary):
        secondary = Database()
        replicate_subgraph(primary, secondary, ["totals"])
        secondary.at(secondary.now + MINUTE,
                     lambda: secondary.execute(
                         "INSERT INTO src VALUES (10, 'a', 7)"))
        secondary.run_for(4 * MINUTE)
        assert secondary.check_dvs("totals")
        # The primary is untouched.
        assert (10, "a", 7) not in primary.query(
            "SELECT * FROM src").rows

    def test_views_replicate(self, primary):
        primary.execute("CREATE VIEW big AS SELECT id FROM src "
                        "WHERE val > 15")
        primary.create_dynamic_table("over_view",
                                     "SELECT id FROM big", "1 minute", "wh")
        secondary = Database()
        replicate_subgraph(primary, secondary, ["over_view"])
        assert sorted(secondary.query("SELECT * FROM over_view").rows) == \
               sorted(primary.query("SELECT * FROM over_view").rows)

    def test_re_replication_advances_replica(self, primary):
        secondary = Database()
        replicate_subgraph(primary, secondary, ["clean"])
        primary.execute("INSERT INTO src VALUES (11, 'c', 50)")
        # Re-replicating the base table refreshes the replica's copy;
        # its DT catches up via its own refresh.
        from repro.core.replication import _replicate_base_table

        _replicate_base_table(primary, secondary, "src")
        secondary.refresh_dynamic_table("clean")
        assert (11, "c", 50) in secondary.query(
            "SELECT * FROM clean").rows
        assert secondary.check_dvs("clean")

    def test_existing_dt_on_replica_rejected(self, primary):
        secondary = Database()
        replicate_subgraph(primary, secondary, ["clean"])
        with pytest.raises(CatalogError):
            replicate_subgraph(primary, secondary, ["clean"])

    def test_clock_advances_to_primary(self, primary):
        primary.clock.advance(10 * MINUTE)
        secondary = Database()
        replicate_subgraph(primary, secondary, ["totals"])
        assert secondary.now >= primary.now
