"""Regression tests for the batched execution layer and its hot-path fixes.

Covers: the expression closure-compiler (constant folding, deferred
errors, interpreter equivalence), zone-map partition pruning, the
streaming LIMIT, the bounded relation cache, O(1) version access,
HLC-precise ``version_at``, the data-equivalent change-query skip, and the
refresh engine's compiled-plan cache.
"""

import pytest

from repro import Database
from repro.engine.executor import evaluate, extract_scan_bounds
from repro.engine.expressions import (BooleanOp, Case, ColumnRef, Comparison,
                                      ContextFunction, EvalContext,
                                      FunctionCall, DEFAULT_REGISTRY, InList,
                                      IsNull, Like, Literal, Arithmetic,
                                      compile_expression, compile_row,
                                      force_interpreted)
from repro.engine.relation import DictResolver
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.errors import EvaluationError, UserError, VersionNotFound
from repro.plan import logical as lp
from repro.storage.table import (RELATION_CACHE_VERSIONS, StagedWrite,
                                 VersionedTable)
from repro.streams.changes import changes_between
from repro.txn.hlc import HlcTimestamp

ITEMS = schema_of(("id", SqlType.INT), ("grp", SqlType.TEXT),
                  ("val", SqlType.INT), table="items")


def make_table(partition_rows=4):
    return VersionedTable("t", ITEMS, table_seq=1,
                          partition_rows=partition_rows)


def insert(table, rows, wall):
    return table.apply(StagedWrite(inserts=list(rows)), HlcTimestamp(wall))


# ---------------------------------------------------------------------------
# The closure compiler
# ---------------------------------------------------------------------------

class TestCompiler:
    def test_column_and_literal(self):
        fn = compile_expression(ColumnRef(1, SqlType.TEXT))
        assert fn((7, "x", 9)) == "x"
        assert compile_expression(Literal(42))(()) == 42

    def test_constant_folding(self):
        expr = Arithmetic("+", Literal(2), Literal(3))
        assert compile_expression(expr)(()) == 5

    def test_context_function_folds_to_pinned_timestamp(self):
        fn = compile_expression(ContextFunction("current_timestamp"),
                                EvalContext(timestamp=123))
        assert fn(()) == 123

    def test_erroring_constant_defers_to_runtime(self):
        expr = Arithmetic("/", Literal(1), Literal(0))
        fn = compile_expression(expr)  # compiling must not raise
        with pytest.raises(EvaluationError):
            fn(())

    def test_volatile_udf_not_folded(self):
        registry_calls = []

        def volatile():
            registry_calls.append(1)
            return len(registry_calls)

        registry = type(DEFAULT_REGISTRY)()
        registry.register_udf("ticker", volatile, SqlType.INT,
                              immutable=False)
        call = FunctionCall(registry.lookup("ticker"), ())
        fn = compile_expression(call)
        assert fn(()) == 1
        assert fn(()) == 2  # evaluated per row, not folded

    @pytest.mark.parametrize("expr", [
        Comparison(">=", ColumnRef(2, SqlType.INT), Literal(5)),
        Comparison("=", ColumnRef(1, SqlType.TEXT), Literal("a")),
        Comparison("<", Literal(10), ColumnRef(0, SqlType.INT)),
        BooleanOp("and", (IsNull(ColumnRef(1, SqlType.TEXT)),
                          Comparison("<", ColumnRef(0, SqlType.INT),
                                     Literal(3)))),
        BooleanOp("or", (Comparison("=", ColumnRef(1, SqlType.TEXT),
                                    Literal("b")),
                         IsNull(ColumnRef(2, SqlType.INT), negated=True))),
        InList(ColumnRef(0, SqlType.INT),
               (Literal(1), Literal(None), Literal(4))),
        Like(ColumnRef(1, SqlType.TEXT), Literal("a%")),
        Case(((Comparison(">", ColumnRef(2, SqlType.INT), Literal(5)),
               Literal("big")),), Literal("small")),
        Arithmetic("*", ColumnRef(2, SqlType.INT), Literal(3)),
        Arithmetic("%", ColumnRef(0, SqlType.INT), Literal(7)),
    ])
    def test_compiled_matches_eval_over_sample_rows(self, expr):
        ctx = EvalContext(timestamp=99)
        rows = [(1, "a", 10), (2, "b", 2), (9, None, None), (0, "abc", 5),
                (15, "b", -1)]
        compiled = compile_expression(expr, ctx)
        for row in rows:
            assert compiled(row) == expr.eval(row, ctx)

    def test_compile_row_matches_tuple_of_evals(self):
        exprs = (ColumnRef(0, SqlType.INT),
                 Arithmetic("+", ColumnRef(2, SqlType.INT), Literal(1)),
                 Literal("k"))
        fn = compile_row(exprs)
        row = (4, "g", 7)
        assert fn(row) == tuple(e.eval(row, EvalContext()) for e in exprs)

    def test_force_interpreted_round_trips(self):
        expr = Comparison(">=", ColumnRef(0, SqlType.INT), Literal(2))
        with force_interpreted():
            shim = compile_expression(expr)
        assert shim((3,)) is True
        assert shim((1,)) is False


# ---------------------------------------------------------------------------
# Zone maps and pruned scans
# ---------------------------------------------------------------------------

class TestZoneMapPruning:
    def test_extract_scan_bounds(self):
        predicate = BooleanOp("and", (
            Comparison(">=", ColumnRef(2, SqlType.INT), Literal(5)),
            Comparison("<", Literal(100), ColumnRef(0, SqlType.INT)),
            IsNull(ColumnRef(1, SqlType.TEXT)),
        ))
        assert extract_scan_bounds(predicate) == [
            ("cmp", 2, ">=", 5), ("cmp", 0, ">", 100), ("null", 1, False)]

    def test_any_unsafe_conjunct_disables_pruning_entirely(self):
        # A conjunct that could raise on skipped rows (col-vs-col,
        # arithmetic, LIKE...) must disable pruning for the whole
        # predicate, not just be skipped: the interpreter would evaluate
        # it on rows another bound excludes.
        unsafe = BooleanOp("and", (
            Comparison(">", ColumnRef(0, SqlType.INT), Literal(100)),
            Comparison("=", Arithmetic("%", Literal(1),
                                       ColumnRef(2, SqlType.INT)),
                       Literal(0)),  # raises on val == 0
        ))
        assert extract_scan_bounds(unsafe) == []
        col_vs_col = BooleanOp("and", (
            Comparison(">", ColumnRef(0, SqlType.INT), Literal(100)),
            Comparison("=", ColumnRef(0, SqlType.INT),
                       ColumnRef(2, SqlType.INT)),
        ))
        assert extract_scan_bounds(col_vs_col) == []

    def test_raising_predicate_errors_identically_with_storage(self):
        # End-to-end: a filter whose second conjunct divides by zero must
        # raise even though the first conjunct's bound excludes every
        # partition — pruning may never swallow runtime errors.
        db = Database()
        db.create_warehouse("wh")
        db.execute("CREATE TABLE src (id int, grp text, val int)")
        db.execute("INSERT INTO src VALUES (1, 'a', 0), (2, 'b', 5)")
        with pytest.raises(Exception, match="division by zero"):
            db.query("SELECT id FROM src WHERE 1 % val = 0 AND id > 100")

    def test_pruned_relation_skips_partitions(self):
        table = make_table(partition_rows=2)
        insert(table, [(i, f"g{i}", i * 10) for i in range(8)], wall=10)
        pruned = table.relation_pruned(None, [("cmp", 2, ">=", 60)])
        full = table.relation()
        assert pruned.rows == [row for row in full.rows if row[2] >= 60]
        # Partitions hold vals (0,10), (20,30), (40,50), (60,70): only the
        # last survives the bound.
        assert len(pruned) == 2

    def test_unpruned_scan_serves_cached_relation(self):
        table = make_table(partition_rows=2)
        insert(table, [(i, f"g{i}", i) for i in range(8)], wall=10)
        full = table.relation()
        # Bound matches every partition: must not rebuild the relation.
        assert table.relation_pruned(None, [("cmp", 2, ">=", 0)]) is full

    def test_pruning_preserves_refresh_results(self):
        db = Database()
        db.create_warehouse("wh")
        db.execute("CREATE TABLE src (id int, grp text, val int)")
        db.execute("INSERT INTO src VALUES " + ", ".join(
            f"({i}, 'g{i % 3}', {i})" for i in range(50)))
        db.create_dynamic_table(
            "filtered", "SELECT id, val FROM src WHERE val >= 40",
            "1 minute", "wh")
        assert sorted(db.query("SELECT * FROM filtered").rows) == [
            (i, i) for i in range(40, 50)]

    def test_is_null_never_prunes_partitions_holding_nulls(self):
        # Regression: has_null must stay accurate even when the column's
        # kind degrades to "other" (NULL next to a VARIANT/bool value), or
        # IS NULL filters silently lose their NULL rows to pruning.
        table = make_table(partition_rows=4)
        table.apply(StagedWrite(inserts=[(None, "a", None),
                                         (1, "b", {"k": 1})]),
                    HlcTimestamp(10))
        kept = table.relation_pruned(None, [("null", 0, False)])
        assert (None, "a", None) in kept.rows
        # IS NOT NULL over an all-NULL column still prunes.
        nulls = make_table(partition_rows=4)
        insert(nulls, [(None, None, None)] * 2, wall=10)
        assert len(nulls.relation_pruned(None, [("null", 0, True)])) == 0

    def test_all_null_columns_prune_but_mixed_do_not(self):
        table = make_table(partition_rows=4)
        insert(table, [(None, None, None)] * 3, wall=10)
        assert len(table.relation_pruned(None, [("cmp", 2, ">", 0)])) == 0
        mixed = make_table(partition_rows=4)
        insert(mixed, [(1, "a", "oops"), (2, "b", 3)], wall=10)
        # Mixed-kind column: never pruned, so runtime type errors surface.
        assert len(mixed.relation_pruned(None, [("cmp", 2, ">", 0)])) == 2


# ---------------------------------------------------------------------------
# LIMIT
# ---------------------------------------------------------------------------

class TestLimit:
    def _values(self, count):
        return lp.Values(ITEMS, tuple((i, "g", i) for i in range(count)))

    def test_limit_truncates(self):
        plan = lp.Limit(self._values(10), 3)
        result = evaluate(plan, DictResolver({}))
        assert len(result) == 3

    def test_limit_zero(self):
        plan = lp.Limit(self._values(4), 0)
        assert len(evaluate(plan, DictResolver({}))) == 0

    def test_negative_limit_rejected(self):
        plan = lp.Limit(self._values(4), -1)
        with pytest.raises(UserError):
            evaluate(plan, DictResolver({}))


# ---------------------------------------------------------------------------
# Storage: relation cache, version access, HLC resolution
# ---------------------------------------------------------------------------

class TestStorageFixes:
    def test_relation_cache_is_bounded(self):
        table = make_table()
        for wall in range(10, 10 + RELATION_CACHE_VERSIONS * 3):
            insert(table, [(wall, "x", wall)], wall=wall)
            table.relation()  # materialize every version once
        assert len(table._relation_cache) <= RELATION_CACHE_VERSIONS

    def test_relation_cache_still_caches(self):
        table = make_table()
        insert(table, [(1, "x", 2)], wall=10)
        assert table.relation() is table.relation()

    def test_version_accessor_matches_versions_list(self):
        table = make_table()
        insert(table, [(1, "x", 2)], wall=10)
        insert(table, [(2, "y", 3)], wall=20)
        assert table.version_count == 3
        for index, version in enumerate(table.versions):
            assert table.version(index) is version

    def test_version_at_discriminates_hlc_ties(self):
        table = make_table()
        first = insert(table, [(1, "x", 2)], wall=10)
        # Two commits sharing wall=20, ordered by the logical component.
        second = table.apply(StagedWrite(inserts=[(2, "y", 3)]),
                             HlcTimestamp(20, 0))
        third = table.apply(StagedWrite(inserts=[(3, "z", 4)]),
                            HlcTimestamp(20, 1))
        # A bare wall timestamp sees every commit at that wall.
        assert table.version_at(20) is third
        # A full HLC timestamp resolves between the tied commits.
        assert table.version_at(HlcTimestamp(20, 0)) is second
        assert table.version_at(HlcTimestamp(20, 1)) is third
        assert table.version_at(HlcTimestamp(19, 5)) is first
        with pytest.raises(VersionNotFound):
            table.version_at(HlcTimestamp(-1, 0))


# ---------------------------------------------------------------------------
# Change queries: pruned diffs
# ---------------------------------------------------------------------------

class TestChangesPruning:
    def test_data_equivalent_interval_skips_reading_partitions(self, monkeypatch):
        table = make_table(partition_rows=2)
        old = insert(table, [(i, "x", i) for i in range(6)], wall=10)
        new = table.recluster(HlcTimestamp(20))

        def boom(partition_id):
            raise AssertionError("partition read during data-equivalent skip")

        monkeypatch.setattr(table, "partition", boom)
        monkeypatch.setattr(table, "partitions_of", boom)
        assert len(changes_between(table, old, new)) == 0

    def test_mixed_interval_still_diffs(self):
        table = make_table(partition_rows=2)
        old = insert(table, [(i, "x", i) for i in range(4)], wall=10)
        table.recluster(HlcTimestamp(20))
        new = insert(table, [(99, "y", 99)], wall=30)
        changes = changes_between(table, old, new)
        assert [c.row for c in changes.inserts()] == [(99, "y", 99)]
        assert not changes.deletes()


# ---------------------------------------------------------------------------
# Refresh engine: compiled-plan cache
# ---------------------------------------------------------------------------

class TestPlanCache:
    @pytest.fixture
    def db(self):
        database = Database()
        database.create_warehouse("wh")
        database.execute("CREATE TABLE src (id int, grp text, val int)")
        database.execute("INSERT INTO src VALUES (1, 'a', 10)")
        return database

    def test_plan_reused_across_refreshes(self, db):
        dt = db.create_dynamic_table(
            "d", "SELECT id, val FROM src WHERE val > 0", "1 minute", "wh")
        engine = db.engine
        first = engine.build_plan(dt)
        assert engine.build_plan(dt) is first

    def test_udf_registration_invalidates_plan_cache(self, db):
        db.registry.register_udf("scale", lambda x: x * 2, SqlType.INT)
        dt = db.create_dynamic_table(
            "u", "SELECT id, scale(val) d FROM src", "1 minute", "wh")
        engine = db.engine
        first = engine.build_plan(dt)
        # Re-registering rebinds the implementation; the cached plan holds
        # the old ScalarFunction and must be invalidated.
        db.registry.register_udf("scale", lambda x: x * 10, SqlType.INT)
        assert engine.build_plan(dt) is not first
        # An incremental refresh over a new delta row must apply the new
        # implementation (existing rows are not recomputed).
        db.execute("INSERT INTO src VALUES (2, 'b', 3)")
        db.refresh_dynamic_table("u")
        assert sorted(db.query("SELECT * FROM u").rows) == [(1, 20), (2, 30)]

    def test_ddl_invalidates_plan_cache(self, db):
        dt = db.create_dynamic_table(
            "d", "SELECT id, val FROM src WHERE val > 0", "1 minute", "wh")
        engine = db.engine
        first = engine.build_plan(dt)
        db.execute("CREATE TABLE other (x int)")  # any DDL bumps the epoch
        assert engine.build_plan(dt) is not first
        # Refreshes keep converging after invalidation.
        db.execute("INSERT INTO src VALUES (2, 'b', 7)")
        db.refresh_dynamic_table("d")
        assert sorted(db.query("SELECT * FROM d").rows) == [(1, 10), (2, 7)]
