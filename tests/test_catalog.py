"""Tests for the catalog: DDL, drop/undrop, RBAC, the DDL log."""

import pytest

from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.errors import CatalogError, EntityDropped, EntityNotFound
from repro.sql.parser import parse_query
from repro.storage.catalog import Catalog


def schema():
    return schema_of(("a", SqlType.INT))


class TestCreateDrop:
    def test_create_and_get(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        assert catalog.get("t").kind == "table"

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        with pytest.raises(CatalogError):
            catalog.create_table("t", schema())

    def test_if_not_exists_returns_existing(self):
        catalog = Catalog()
        first = catalog.create_table("t", schema())
        second = catalog.create_table("t", schema(), if_not_exists=True)
        assert first is second

    def test_or_replace_bumps_generation(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        assert catalog.get("t").generation == 0
        catalog.create_table("t", schema(), or_replace=True)
        assert catalog.get("t").generation == 1

    def test_drop_then_get_raises_dropped(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        catalog.drop("t")
        with pytest.raises(EntityDropped):
            catalog.get("t")

    def test_undrop_restores_storage(self):
        catalog = Catalog()
        table = catalog.create_table("t", schema())
        catalog.drop("t")
        catalog.undrop("t")
        assert catalog.versioned_table("t") is table

    def test_drop_unknown(self):
        catalog = Catalog()
        with pytest.raises(EntityNotFound):
            catalog.drop("ghost")

    def test_drop_if_exists_tolerates_missing(self):
        Catalog().drop("ghost", if_exists=True)

    def test_drop_wrong_kind(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        with pytest.raises(CatalogError):
            catalog.drop("t", kind="view")

    def test_undrop_requires_dropped(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        with pytest.raises(EntityNotFound):
            catalog.undrop("t")

    def test_recreate_after_drop_bumps_generation(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        catalog.drop("t")
        catalog.create_table("t", schema())
        # The replaced (dropped) entry is gone; the new one starts fresh
        # under a new storage object but the name resolves again.
        assert catalog.get("t").kind == "table"


class TestViews:
    def test_view_definition(self):
        catalog = Catalog()
        query = parse_query("SELECT 1")
        catalog.create_view("v", "SELECT 1", query)
        assert catalog.view_definition("v") is query

    def test_view_definition_none_for_tables(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        assert catalog.view_definition("t") is None

    def test_view_has_no_storage(self):
        catalog = Catalog()
        catalog.create_view("v", "SELECT 1", parse_query("SELECT 1"))
        with pytest.raises(EntityNotFound):
            catalog.versioned_table("v")


class TestRename:
    def test_rename(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        catalog.rename("t", "u")
        assert catalog.exists("u")
        assert not catalog.exists("t")
        assert catalog.versioned_table("u").name == "u"

    def test_rename_to_existing_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        catalog.create_table("u", schema())
        with pytest.raises(CatalogError):
            catalog.rename("t", "u")


class TestDdlLog:
    def test_log_records_operations(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        catalog.drop("t")
        catalog.undrop("t")
        catalog.rename("t", "u")
        ops = [event.op for event in catalog.ddl_log]
        assert ops == ["create", "drop", "undrop", "rename"]

    def test_log_is_monotonic(self):
        catalog = Catalog()
        for index in range(5):
            catalog.create_table(f"t{index}", schema())
        seqs = [event.seq for event in catalog.ddl_log]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_log_since(self):
        catalog = Catalog()
        catalog.create_table("a", schema())
        cutoff = catalog.ddl_log[-1].seq
        catalog.create_table("b", schema())
        later = catalog.ddl_log_since(cutoff)
        assert [event.name for event in later] == ["b"]

    def test_replace_logged_as_replace(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        catalog.create_table("t", schema(), or_replace=True)
        assert catalog.ddl_log[-1].op == "replace"


class TestGrants:
    def test_owner_has_everything(self):
        catalog = Catalog()
        catalog.create_table("t", schema(), owner="eng")
        entry = catalog.get("t")
        assert entry.has_privilege("select", "eng")
        assert entry.has_privilege("operate", "eng")

    def test_grant_and_revoke(self):
        catalog = Catalog()
        catalog.create_table("t", schema(), owner="eng")
        entry = catalog.get("t")
        assert not entry.has_privilege("select", "analyst")
        entry.grant("select", "analyst")
        assert entry.has_privilege("select", "analyst")
        entry.revoke("select", "analyst")
        assert not entry.has_privilege("select", "analyst")

    def test_monitor_operate_privileges_exist(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        entry = catalog.get("t")
        entry.grant("monitor", "oncall")
        entry.grant("operate", "oncall")
        assert entry.has_privilege("monitor", "oncall")

    def test_unknown_privilege_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", schema())
        with pytest.raises(CatalogError):
            catalog.get("t").grant("fly", "anyone")
