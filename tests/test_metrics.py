"""Tests for lag metrics: the Figure 4 sawtooth algebra."""

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshRecord
from repro.scheduler import metrics
from repro.util.timeutil import MINUTE, SECOND, minutes


def synthetic_dt():
    """A DT-shaped object with a hand-written refresh history matching
    Figure 4's structure: refreshes with v_i < s_i < e_i."""
    db = Database()
    db.create_warehouse("wh")
    db.execute("CREATE TABLE t (a int)")
    dt = db.create_dynamic_table("d", "SELECT a FROM t", "1 minute", "wh")
    dt.refresh_history.clear()
    # (v_i, s_i, e_i) in seconds: refresh durations of 5s, waits vary.
    for v, s, e in [(0, 2, 7), (48, 50, 55), (96, 100, 103), (144, 146, 152)]:
        record = RefreshRecord(data_timestamp=v * SECOND)
        record.start_wall = s * SECOND
        record.end_wall = e * SECOND
        dt.refresh_history.append(record)
    return dt


class TestSawtoothAlgebra:
    def test_trough_is_end_minus_own_data_ts(self):
        dt = synthetic_dt()
        troughs = metrics.trough_lags(dt)
        assert troughs == [7 * SECOND, 7 * SECOND, 7 * SECOND, 8 * SECOND]

    def test_peak_is_end_minus_previous_data_ts(self):
        dt = synthetic_dt()
        peaks = metrics.peak_lags(dt)
        # e1 - v0 = 55, e2 - v1 = 55, e3 - v2 = 56.
        assert peaks == [55 * SECOND, 55 * SECOND, 56 * SECOND]

    def test_peak_exceeds_trough(self):
        dt = synthetic_dt()
        for peak, trough in zip(metrics.peak_lags(dt),
                                metrics.trough_lags(dt)[1:]):
            assert peak > trough

    def test_decomposition_sums_to_peak(self):
        """Section 5.2: peak lag = p + w + d exactly."""
        dt = synthetic_dt()
        for decomposition, peak in zip(metrics.decompose_peaks(dt),
                                       metrics.peak_lags(dt)):
            assert decomposition.peak_lag == peak
            assert decomposition.p == 48 * SECOND
            assert decomposition.d > 0

    def test_sawtooth_points_alternate(self):
        dt = synthetic_dt()
        points = metrics.sawtooth(dt)
        kinds = [point.kind for point in points]
        assert kinds[0] == "start"
        assert kinds[1::2] == ["peak"] * 3
        assert kinds[2::2] == ["trough"] * 3

    def test_lag_at_rises_linearly(self):
        dt = synthetic_dt()
        base = metrics.lag_at(dt, 60 * SECOND)
        later = metrics.lag_at(dt, 70 * SECOND)
        assert later - base == 10 * SECOND

    def test_lag_at_before_first_commit_is_none(self):
        dt = synthetic_dt()
        assert metrics.lag_at(dt, 1 * SECOND) is None

    def test_fraction_within_target(self):
        dt = synthetic_dt()
        always = metrics.fraction_within_target(
            dt, minutes(5), 10 * SECOND, 150 * SECOND)
        assert always == 1.0
        never = metrics.fraction_within_target(
            dt, 1 * SECOND, 10 * SECOND, 150 * SECOND)
        assert never < 0.1

    def test_skipped_and_failed_excluded(self):
        dt = synthetic_dt()
        dt.refresh_history.append(RefreshRecord(data_timestamp=0,
                                                skipped=True))
        failed = RefreshRecord(data_timestamp=0)
        failed.error = "boom"
        dt.refresh_history.append(failed)
        assert len(metrics.successful_refreshes(dt)) == 4


class TestOnRealScheduler:
    def test_sawtooth_from_live_history(self):
        db = Database()
        db.create_warehouse("wh")
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1)")
        dt = db.create_dynamic_table("d", "SELECT a FROM t", "1 minute", "wh")
        for step in range(8):
            db.at((step + 1) * MINUTE,
                  lambda s=step: db.execute(f"INSERT INTO t VALUES ({s})"))
        db.run_for(10 * MINUTE)
        peaks = metrics.peak_lags(dt)
        troughs = metrics.trough_lags(dt)
        assert peaks and troughs
        assert min(troughs) >= 0
        decompositions = metrics.decompose_peaks(dt)
        assert all(d.w >= 0 and d.d >= 0 for d in decompositions)
