"""Regression tests for the durability subsystem: WAL framing, the
tagged-JSON codec, checkpoint round-trips (including zero-copy clones
and schema evolution), aggregate-state coverage, and crash recovery.
The randomized kill-point test lives in ``test_durability_property.py``;
this file pins the individual mechanisms."""

import os

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.durability import codec
from repro.durability.wal import WAL_MAGIC, WriteAheadLog, scan_wal
from repro.errors import DurabilityError, UserError
from repro.txn.hlc import HlcTimestamp


def wal_path(directory) -> str:
    return os.path.join(str(directory), "wal.log")


# ---------------------------------------------------------------------------
# WAL framing
# ---------------------------------------------------------------------------


class TestWal:
    def test_append_scan_roundtrip(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        for i in range(3):
            wal.append({"kind": "test", "i": i})
        wal.close()
        scan = scan_wal(wal_path(tmp_path))
        assert [r.seq for r in scan.records] == [1, 2, 3]
        assert [r.payload["i"] for r in scan.records] == [0, 1, 2]
        assert scan.good_end == scan.file_size

    def test_torn_tail_is_ignored_and_truncated(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.append({"kind": "test", "i": 0})
        good = wal.position()
        wal.close()
        with open(wal_path(tmp_path), "ab") as handle:
            handle.write(b"\xff\xff\xff\xff torn garbage")
        scan = scan_wal(wal_path(tmp_path))
        assert len(scan.records) == 1
        assert scan.good_end == good < scan.file_size
        # Reopening for append truncates the tail and continues the seq.
        reopened = WriteAheadLog(wal_path(tmp_path))
        assert os.path.getsize(wal_path(tmp_path)) == good
        assert reopened.append({"kind": "test", "i": 1}).seq == 2
        reopened.close()

    def test_mid_record_truncation_drops_only_the_tail(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.append({"kind": "test", "i": 0})
        first_end = wal.position()
        wal.append({"kind": "test", "i": 1})
        wal.close()
        with open(wal_path(tmp_path), "r+b") as handle:
            handle.truncate(first_end + 5)  # cut inside record 2
        scan = scan_wal(wal_path(tmp_path))
        assert [r.payload["i"] for r in scan.records] == [0]
        assert scan.good_end == first_end

    def test_corrupted_record_body_stops_the_scan(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.append({"kind": "test", "i": 0})
        first_end = wal.position()
        wal.append({"kind": "test", "i": 1})
        wal.close()
        with open(wal_path(tmp_path), "r+b") as handle:
            handle.seek(first_end + 8 + 2)  # inside record 2's payload
            handle.write(b"!")
        scan = scan_wal(wal_path(tmp_path))
        assert [r.payload["i"] for r in scan.records] == [0]

    def test_bad_magic_raises(self, tmp_path):
        path = wal_path(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"NOTAWAL\x01" + b"x" * 32)
        with pytest.raises(DurabilityError):
            scan_wal(path)

    def test_seq_survives_reset(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path))
        wal.append({"kind": "test"})
        wal.append({"kind": "test"})
        wal.reset()
        assert wal.position() == len(WAL_MAGIC)
        record = wal.append({"kind": "test"})
        assert record.seq == 3  # keeps counting across truncation
        wal.close()

    def test_fsync_off_still_scannable(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), fsync=False)
        wal.append({"kind": "test", "i": 7})
        wal.close()
        scan = scan_wal(wal_path(tmp_path))
        assert scan.records[0].payload["i"] == 7


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------


class TestCodec:
    def test_dict_key_order_survives_sorted_json(self, tmp_path):
        import json
        original = {"zebra": 1, "alpha": 2, 3: "int key"}
        encoded = json.loads(json.dumps(codec.encode(original),
                                        sort_keys=True))
        decoded = codec.decode(encoded)
        assert decoded == original
        assert list(decoded) == ["zebra", "alpha", 3]

    def test_hlc_roundtrip(self):
        ts = HlcTimestamp(1234, 7)
        assert codec.decode(codec.encode(ts)) == ts

    def test_collections_roundtrip(self):
        value = {"t": (1, 2), "s": {3, 4}, "f": frozenset({5}),
                 "x": 1.5, "n": None, "b": True}
        decoded = codec.decode(codec.encode(value))
        assert decoded == value
        assert isinstance(decoded["t"], tuple)
        assert isinstance(decoded["s"], set)
        assert isinstance(decoded["f"], frozenset)

    def test_unknown_class_rejected(self):
        class NotRegistered:
            pass

        with pytest.raises(DurabilityError):
            codec.encode(NotRegistered())


# ---------------------------------------------------------------------------
# End-to-end recovery
# ---------------------------------------------------------------------------


def make_db(directory, **kwargs):
    db = Database(path=str(directory), **kwargs)
    db.create_warehouse("wh")
    db.execute("CREATE TABLE src (id int, val int)")
    db.execute("INSERT INTO src VALUES (1, 10), (2, 20), (3, 30)")
    return db


def reopen(db, directory, **kwargs):
    db.close()
    return Database(path=str(directory), **kwargs)


class TestRecovery:
    def test_wal_only_recovery_restores_rows_and_hlc(self, tmp_path):
        db = make_db(tmp_path / "d")
        hlc_before = db.txns.hlc.last
        db = reopen(db, tmp_path / "d")
        assert sorted(db.query("SELECT * FROM src").rows) == \
               [(1, 10), (2, 20), (3, 30)]
        assert db.txns.hlc.last == hlc_before
        status = db.durability_status()
        assert status["recovery"]["records_replayed"] > 0
        assert db.warehouses.exists("wh")
        db.close()

    def test_dt_refreshes_incrementally_after_recovery(self, tmp_path):
        db = make_db(tmp_path / "d")
        db.create_dynamic_table(
            "totals", "SELECT val, count(*) n FROM src GROUP BY val",
            "1 minute", "wh")
        db = reopen(db, tmp_path / "d")
        assert sorted(db.query("SELECT * FROM totals").rows) == \
               [(10, 1), (20, 1), (30, 1)]
        db.execute("INSERT INTO src VALUES (4, 10)")
        record = db.refresh_dynamic_table("totals")
        assert record.action == RefreshAction.INCREMENTAL
        assert db.check_dvs("totals")
        db.close()

    def test_checkpoint_skips_replay(self, tmp_path):
        db = make_db(tmp_path / "d")
        db.checkpoint()
        db = reopen(db, tmp_path / "d")
        recovery = db.durability_status()["recovery"]
        assert recovery["checkpoint_seq"] == 1
        assert recovery["records_replayed"] == 0
        assert sorted(db.query("SELECT * FROM src").rows) == \
               [(1, 10), (2, 20), (3, 30)]
        db.close()

    def test_commits_after_checkpoint_replay_on_top(self, tmp_path):
        db = make_db(tmp_path / "d")
        db.checkpoint()
        db.execute("INSERT INTO src VALUES (4, 40)")
        db = reopen(db, tmp_path / "d")
        recovery = db.durability_status()["recovery"]
        assert recovery["checkpoint_seq"] == 1
        assert recovery["records_replayed"] == 1
        assert (4, 40) in db.query("SELECT * FROM src").rows
        db.close()

    def test_torn_wal_tail_is_discarded(self, tmp_path):
        db = make_db(tmp_path / "d")
        db.close()
        with open(wal_path(tmp_path / "d"), "ab") as handle:
            handle.write(b"\xff\xff\xff\xff mid-crash garbage")
        db = Database(path=str(tmp_path / "d"))
        assert db.durability_status()["recovery"]["torn_bytes"] > 0
        assert sorted(db.query("SELECT * FROM src").rows) == \
               [(1, 10), (2, 20), (3, 30)]
        db.close()

    def test_ddl_replays_drop_and_rename(self, tmp_path):
        db = make_db(tmp_path / "d")
        db.execute("CREATE TABLE doomed (id int)")
        db.execute("DROP TABLE doomed")
        db.execute("ALTER TABLE src RENAME TO source")
        db = reopen(db, tmp_path / "d")
        assert sorted(db.query("SELECT * FROM source").rows) == \
               [(1, 10), (2, 20), (3, 30)]
        with pytest.raises(Exception):
            db.query("SELECT * FROM doomed")
        db.close()

    def test_in_memory_database_has_no_durability(self):
        db = Database()
        assert db.durability_status() is None
        with pytest.raises(UserError):
            db.checkpoint()

    def test_invalid_durability_mode_rejected(self, tmp_path):
        with pytest.raises(UserError):
            Database(path=str(tmp_path / "d"), durability="eventually")

    def test_async_mode_survives_clean_close(self, tmp_path):
        db = make_db(tmp_path / "d", durability="async")
        db = reopen(db, tmp_path / "d", durability="async")
        assert sorted(db.query("SELECT * FROM src").rows) == \
               [(1, 10), (2, 20), (3, 30)]
        db.close()


# ---------------------------------------------------------------------------
# Clones across checkpoint/restore (satellite 4 bugfix sweep)
# ---------------------------------------------------------------------------


class TestClonesAcrossRestart:
    def test_checkpointed_clone_shares_partitions_after_restore(
            self, tmp_path):
        db = make_db(tmp_path / "d")
        db.execute("CREATE TABLE copy CLONE src")
        db.checkpoint()
        db = reopen(db, tmp_path / "d")
        source = db.catalog.versioned_table("src")
        clone = db.catalog.versioned_table("copy")
        # The checkpoint pools partitions by id: restore must rebuild
        # the same object graph, not duplicate the shared partitions.
        shared_ids = (clone.current_version.partition_ids
                      & source.current_version.partition_ids)
        assert shared_ids
        source_parts = {p.id: p for p in
                        source.partitions_of(source.current_version)}
        clone_parts = {p.id: p for p in
                       clone.partitions_of(clone.current_version)}
        for pid in shared_ids:
            assert source_parts[pid] is clone_parts[pid]
        db.close()

    def test_clone_replayed_from_wal_matches_source(self, tmp_path):
        db = make_db(tmp_path / "d")
        db.execute("CREATE TABLE copy CLONE src")  # WAL record, no ckpt
        db = reopen(db, tmp_path / "d")
        assert sorted(db.query("SELECT * FROM copy").rows) == \
               sorted(db.query("SELECT * FROM src").rows)
        db.close()

    def test_clone_diverges_correctly_after_restart(self, tmp_path):
        db = make_db(tmp_path / "d")
        db.execute("CREATE TABLE copy CLONE src")
        db.checkpoint()
        db = reopen(db, tmp_path / "d")
        db.execute("INSERT INTO copy VALUES (9, 90)")
        db.execute("DELETE FROM src WHERE id = 1")
        assert len(db.query("SELECT * FROM copy").rows) == 4
        assert len(db.query("SELECT * FROM src").rows) == 2
        db.close()

    def test_clone_row_id_namespace_survives_restart(self, tmp_path):
        db = make_db(tmp_path / "d")
        db.execute("CREATE TABLE copy CLONE src")
        db.checkpoint()
        db = reopen(db, tmp_path / "d")
        db.execute("INSERT INTO src VALUES (4, 40)")
        db.execute("INSERT INTO copy VALUES (5, 50)")
        src_ids = set(db.query("SELECT * FROM src").row_ids)
        copy_new_ids = set(db.query("SELECT * FROM copy").row_ids) - src_ids
        assert len(copy_new_ids) == 1
        db.close()

    def test_dynamic_table_clone_refreshes_after_restart(self, tmp_path):
        db = make_db(tmp_path / "d")
        db.create_dynamic_table(
            "totals", "SELECT val, count(*) n FROM src GROUP BY val",
            "1 minute", "wh")
        db.execute("CREATE DYNAMIC TABLE totals2 CLONE totals")
        db.checkpoint()
        db = reopen(db, tmp_path / "d")
        db.execute("INSERT INTO src VALUES (4, 10)")
        record = db.refresh_dynamic_table("totals2")
        assert record.action == RefreshAction.INCREMENTAL
        assert db.check_dvs("totals2")
        db.close()


# ---------------------------------------------------------------------------
# Schema evolution across restart (satellite 4 bugfix sweep)
# ---------------------------------------------------------------------------


class TestEvolutionAcrossRestart:
    def test_replace_before_restart_reinitializes_after(self, tmp_path):
        db = make_db(tmp_path / "d")
        db.create_dynamic_table("d1", "SELECT id FROM src",
                                "1 minute", "wh")
        db.execute("CREATE OR REPLACE TABLE src (id int, val int)")
        db.execute("INSERT INTO src VALUES (7, 70)")
        db = reopen(db, tmp_path / "d")
        record = db.refresh_dynamic_table("d1")
        assert record.action == RefreshAction.REINITIALIZE
        assert sorted(db.query("SELECT * FROM d1").rows) == [(7,)]
        assert db.check_dvs("d1")
        db.close()

    def test_epoch_survives_checkpoint(self, tmp_path):
        db = make_db(tmp_path / "d")
        db.execute("CREATE OR REPLACE TABLE src (id int)")
        epoch_before = db.catalog.epoch
        db.checkpoint()
        db = reopen(db, tmp_path / "d")
        assert db.catalog.epoch == epoch_before
        db.close()


# ---------------------------------------------------------------------------
# Aggregate accumulator coverage (RPR031 condition)
# ---------------------------------------------------------------------------


class TestAggStateCoverage:
    def agg_db(self, tmp_path):
        db = make_db(tmp_path / "d")
        db.create_dynamic_table(
            "totals", "SELECT val, sum(id) s FROM src GROUP BY val",
            "1 minute", "wh")
        db.execute("INSERT INTO src VALUES (4, 10)")
        db.refresh_dynamic_table("totals")  # populates the agg store
        return db

    def test_uncheckpointed_store_reports_rebuild(self, tmp_path):
        db = self.agg_db(tmp_path)
        dt = db.dynamic_table("totals")
        assert dt.agg_state is not None
        assert db.durability.agg_recovery_status(dt) == "rebuild"
        db.close()

    def test_checkpoint_marks_store_intact(self, tmp_path):
        db = self.agg_db(tmp_path)
        db.checkpoint()
        dt = db.dynamic_table("totals")
        assert db.durability.agg_recovery_status(dt) == "intact"
        # A data-moving refresh after the checkpoint uncovers it again.
        db.execute("INSERT INTO src VALUES (5, 20)")
        db.refresh_dynamic_table("totals")
        assert db.durability.agg_recovery_status(dt) == "rebuild"
        db.close()

    def test_restored_store_is_intact_and_correct(self, tmp_path):
        db = self.agg_db(tmp_path)
        db.checkpoint()
        db = reopen(db, tmp_path / "d")
        dt = db.dynamic_table("totals")
        assert db.durability.agg_recovery_status(dt) == "intact"
        db.execute("INSERT INTO src VALUES (6, 10)")
        record = db.refresh_dynamic_table("totals")
        assert record.action == RefreshAction.INCREMENTAL
        assert db.check_dvs("totals")
        db.close()

    def test_rebuild_after_restart_still_correct(self, tmp_path):
        db = self.agg_db(tmp_path)  # no checkpoint: replay-only recovery
        db = reopen(db, tmp_path / "d")
        dt = db.dynamic_table("totals")
        # WAL replay cannot reconstruct live accumulators — the next
        # refresh reinitializes them from the stored result, correctly.
        db.execute("INSERT INTO src VALUES (6, 10)")
        db.refresh_dynamic_table("totals")
        assert db.check_dvs("totals")
        db.close()


# ---------------------------------------------------------------------------
# Checkpoint triggers
# ---------------------------------------------------------------------------


class TestCheckpointTriggers:
    def test_wal_byte_threshold(self, tmp_path):
        db = make_db(tmp_path / "d", checkpoint_wal_bytes=64)
        assert db.maybe_checkpoint()
        assert db.durability.last_checkpoint_seq == 1
        assert not db.maybe_checkpoint()  # WAL just truncated
        db.close()

    def test_background_tick_checkpoints(self, tmp_path):
        from repro.util.timeutil import MINUTE
        db = make_db(tmp_path / "d", checkpoint_every=MINUTE)
        db.run_for(3 * MINUTE)
        assert db.durability.last_checkpoint_seq >= 1
        db.close()

    def test_old_checkpoints_are_pruned(self, tmp_path):
        db = make_db(tmp_path / "d")
        for i in range(4):
            db.execute(f"INSERT INTO src VALUES ({10 + i}, 0)")
            db.checkpoint()
        db.close()
        files = [f for f in os.listdir(tmp_path / "d")
                 if f.startswith("checkpoint-")]
        assert len(files) == 2  # KEEP_CHECKPOINTS
