"""Tests for the static semantic analyzer (:mod:`repro.analysis`):
one firing and one non-firing case per diagnostic code, plus the
session surface — ``Session.analyze``, strict mode, the report attached
at ``CREATE DYNAMIC TABLE``, and the ``EXPLAIN`` merge."""

import pytest

from repro import Database
from repro.analysis import (AnalysisReport, CODES, Diagnostic, Severity,
                            analyze_bound_query, make_diagnostic)
from repro.errors import AnalysisError, UserError

# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture()
def db():
    database = Database()
    database.execute(
        "CREATE TABLE events (id NUMBER, ts NUMBER, amount NUMBER, "
        "rate FLOAT, city VARCHAR)")
    database.execute("CREATE TABLE cities (city VARCHAR, pop NUMBER)")
    database.create_warehouse("wh")
    return database


@pytest.fixture()
def session(db):
    return db.default_session


def codes_of(session, sql):
    return session.analyze(sql).codes()


# ---------------------------------------------------------------------------
# The diagnostics framework
# ---------------------------------------------------------------------------


def test_code_registry_is_stable():
    assert set(CODES) == {"RPR001", "RPR002", "RPR003", "RPR004",
                          "RPR005", "RPR011", "RPR012", "RPR013",
                          "RPR021", "RPR022", "RPR031"}
    for code, info in CODES.items():
        assert info.code == code
        assert info.title and info.rationale
        assert isinstance(info.default_severity, Severity)


def test_severity_ordering():
    assert Severity.INFO < Severity.WARNING < Severity.ERROR
    assert str(Severity.WARNING) == "warning"


def test_make_diagnostic_defaults_and_rendering():
    diag = make_diagnostic("RPR011", "impossible", line=2, column=7,
                           hint="fix it")
    assert diag.severity is Severity.WARNING
    assert diag.title == "contradictory-predicate"
    rendered = diag.render()
    assert "RPR011" in rendered and "[warning]" in rendered
    assert "line 2, column 7" in rendered and "fix it" in rendered
    with pytest.raises(KeyError):
        make_diagnostic("RPR999", "no such code")


def test_report_views():
    report = AnalysisReport("sql", (
        make_diagnostic("RPR003", "bad column"),
        make_diagnostic("RPR012", "constant"),
        make_diagnostic("RPR022", "fallback"),
    ))
    assert len(report) == 3
    assert [d.code for d in report] == ["RPR003", "RPR012", "RPR022"]
    assert report.errors[0].code == "RPR003"
    assert report.warnings[0].code == "RPR012"
    assert report.infos[0].code == "RPR022"
    assert not report.ok
    assert {d.code for d in report.strict_violations} == {"RPR003",
                                                          "RPR012"}
    assert "RPR012" in report.render()
    assert AnalysisReport("sql").render() == "no issues found"


# ---------------------------------------------------------------------------
# RPR001 syntax-error
# ---------------------------------------------------------------------------


def test_rpr001_fires_on_syntax_error(session):
    report = session.analyze("SELEKT 1 FORM t")
    assert report.codes() == ("RPR001",)
    diag = report.diagnostics[0]
    assert diag.severity is Severity.ERROR
    assert diag.line == 1 and diag.column == 1


def test_rpr001_not_firing_on_valid_sql(session):
    assert "RPR001" not in codes_of(session, "SELECT id FROM events")


# ---------------------------------------------------------------------------
# RPR002 unknown-table
# ---------------------------------------------------------------------------


def test_rpr002_fires_on_unknown_table(session):
    report = session.analyze("SELECT id FROM eventz")
    assert report.codes() == ("RPR002",)
    diag = report.diagnostics[0]
    assert diag.severity is Severity.ERROR
    assert diag.column == 16  # position of the table name
    assert diag.hint is not None and "events" in diag.hint


def test_rpr002_fires_on_dml_target(session):
    assert "RPR002" in codes_of(session, "DELETE FROM nosuch WHERE 1 = 2")


def test_rpr002_not_firing_on_known_table(session):
    assert "RPR002" not in codes_of(session, "SELECT id FROM events")


# ---------------------------------------------------------------------------
# RPR003 unknown-column
# ---------------------------------------------------------------------------


def test_rpr003_fires_on_unknown_column(session):
    report = session.analyze("SELECT id, nope FROM events")
    assert report.codes() == ("RPR003",)
    diag = report.diagnostics[0]
    assert "nope" in diag.message
    assert diag.line == 1 and diag.column == 12


def test_rpr003_fires_on_ambiguous_column(session):
    report = session.analyze(
        "SELECT city FROM events JOIN cities ON events.city = cities.city")
    assert report.codes() == ("RPR003",)
    assert "ambiguous" in report.diagnostics[0].message
    assert "qualify" in report.diagnostics[0].hint


def test_rpr003_not_firing_on_resolvable_columns(session):
    assert "RPR003" not in codes_of(
        session, "SELECT events.city FROM events JOIN cities "
                 "ON events.city = cities.city")


# ---------------------------------------------------------------------------
# RPR004 type-mismatch
# ---------------------------------------------------------------------------


def test_rpr004_fires_on_type_mismatch(session):
    report = session.analyze("SELECT amount + city FROM events")
    assert report.codes() == ("RPR004",)
    assert report.diagnostics[0].severity is Severity.ERROR
    assert report.diagnostics[0].line is not None


def test_rpr004_not_firing_on_well_typed(session):
    report = session.analyze("SELECT amount + id FROM events")
    assert "RPR004" not in report.codes()
    assert report.schema is not None  # typed: schema inferred


# ---------------------------------------------------------------------------
# RPR005 invalid-statement
# ---------------------------------------------------------------------------


def test_rpr005_fires_on_insert_arity_mismatch(session):
    report = session.analyze("INSERT INTO cities VALUES (1, 2, 3)")
    assert "RPR005" in report.codes()
    assert "arity" in report.diagnostics[0].message


def test_rpr005_not_firing_on_matching_insert(session):
    assert codes_of(session, "INSERT INTO cities VALUES ('b', 2)") == ()


# ---------------------------------------------------------------------------
# RPR011 contradictory-predicate
# ---------------------------------------------------------------------------


def test_rpr011_fires_on_range_contradiction(session):
    report = session.analyze(
        "SELECT id FROM events WHERE amount > 5 AND amount < 3")
    assert report.codes() == ("RPR011",)
    diag = report.diagnostics[0]
    assert diag.severity is Severity.WARNING
    assert "amount" in diag.message and diag.line is not None


@pytest.mark.parametrize("where", [
    "amount = 5 AND amount = 6",
    "amount = 5 AND amount != 5",
    "amount BETWEEN 10 AND 3",
    "city = 'a' AND city IS NULL",
    "amount >= 4 AND amount <= 4 AND amount > 4",
])
def test_rpr011_fires_on_other_contradictions(session, where):
    assert "RPR011" in codes_of(
        session, f"SELECT id FROM events WHERE {where}")


@pytest.mark.parametrize("where", [
    "amount > 3 AND amount < 5",
    "amount = 5 AND city = 'x'",
    "amount BETWEEN 3 AND 10",
    "amount > 5 OR amount < 3",          # OR is satisfiable
    "amount > 5 AND city < 'b'",         # different columns
])
def test_rpr011_not_firing_on_satisfiable(session, where):
    assert "RPR011" not in codes_of(
        session, f"SELECT id FROM events WHERE {where}")


def test_rpr011_fires_in_dml_where(session):
    assert "RPR011" in codes_of(
        session, "DELETE FROM events WHERE id > 9 AND id < 2")


# ---------------------------------------------------------------------------
# RPR012 constant-predicate
# ---------------------------------------------------------------------------


def test_rpr012_fires_on_constant_where(session):
    report = session.analyze("SELECT id FROM events WHERE 1 = 1")
    assert report.codes() == ("RPR012",)
    assert report.diagnostics[0].severity is Severity.WARNING


def test_rpr012_fires_on_constant_having(session):
    assert "RPR012" in codes_of(
        session,
        "SELECT city, count(*) FROM events GROUP BY city HAVING 2 > 1")


def test_rpr012_not_firing_on_column_predicate(session):
    assert "RPR012" not in codes_of(
        session, "SELECT id FROM events WHERE amount > 1")


# ---------------------------------------------------------------------------
# RPR013 null-comparison
# ---------------------------------------------------------------------------


def test_rpr013_fires_on_null_comparison(session):
    report = session.analyze("SELECT id FROM events WHERE city = NULL")
    assert report.codes() == ("RPR013",)
    assert "IS NULL" in report.diagnostics[0].hint


def test_rpr013_fires_on_inequality_with_null(session):
    assert "RPR013" in codes_of(
        session, "SELECT id FROM events WHERE amount != NULL")


def test_rpr013_not_firing_on_is_null(session):
    assert "RPR013" not in codes_of(
        session, "SELECT id FROM events WHERE city IS NULL")


# ---------------------------------------------------------------------------
# RPR021 full-refresh
# ---------------------------------------------------------------------------


def test_rpr021_fires_for_auto_dt_as_warning(session):
    report = session.analyze(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh "
        "AS SELECT rate, count(*) FROM events GROUP BY rate")
    assert report.codes() == ("RPR021",)
    diag = report.diagnostics[0]
    assert diag.severity is Severity.WARNING
    assert "FULL" in diag.message and "FLOAT" in diag.message
    assert "cast" in diag.hint


def test_rpr021_is_error_when_incremental_forced(session):
    report = session.analyze(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh "
        "REFRESH_MODE = incremental AS SELECT id FROM events ORDER BY id")
    assert "RPR021" in report.codes()
    assert report.diagnostics[0].severity is Severity.ERROR


def test_rpr021_is_info_for_plain_select(session):
    report = session.analyze("SELECT id FROM events ORDER BY id LIMIT 3")
    assert report.codes() == ("RPR021", "RPR021")
    assert all(d.severity is Severity.INFO for d in report)
    reasons = " ".join(d.message for d in report)
    assert "ORDER BY" in reasons and "LIMIT" in reasons


@pytest.mark.parametrize("query, needle", [
    ("SELECT id FROM events ORDER BY id", "ORDER BY"),
    ("SELECT id FROM events LIMIT 5", "LIMIT"),
    ("SELECT rate, count(*) FROM events GROUP BY rate",
     "grouping on a FLOAT"),
    ("SELECT id, sum(amount) OVER (PARTITION BY rate) FROM events",
     "partitioning on a FLOAT"),
    ("SELECT id, sum(amount) OVER () FROM events", "unpartitioned"),
    ("SELECT e.id FROM events e JOIN events f ON e.rate = f.rate",
     "joining on a FLOAT"),
    ("SELECT id, current_timestamp() FROM events", "context functions"),
], ids=["order-by", "limit", "float-group", "float-partition",
        "unpartitioned-window", "float-join", "context-fn"])
def test_rpr021_covers_every_properties_reason(session, query, needle):
    """Every FULL-resolution shape plan/properties.py knows about maps
    to an RPR021 diagnostic whose message carries the reason."""
    report = session.analyze(query)
    hits = [d for d in report if d.code == "RPR021"]
    assert hits, f"no RPR021 for {query!r}"
    assert any(needle in d.message for d in hits)


def test_rpr021_matches_auto_resolution(db, session):
    """The lint agrees with what refresh_mode=auto actually does."""
    for name, query in (
            ("full_dt", "SELECT id FROM events ORDER BY id"),
            ("incr_dt", "SELECT city, count(*) FROM events GROUP BY city")):
        dt = db.create_dynamic_table(name, query, target_lag="1 minute",
                                     warehouse="wh")
        lint_says_full = "RPR021" in dt.analysis.codes()
        assert lint_says_full == (not dt.incremental_supported)


def test_rpr021_not_firing_on_incremental_shape(session):
    assert "RPR021" not in codes_of(
        session, "SELECT city, count(*) FROM events GROUP BY city")


# ---------------------------------------------------------------------------
# RPR022 stateful-fallback
# ---------------------------------------------------------------------------


def test_rpr022_fires_on_non_retractable_aggregate(session):
    report = session.analyze(
        "SELECT city, median(amount) FROM events GROUP BY city")
    assert report.codes() == ("RPR022",)
    diag = report.diagnostics[0]
    assert diag.severity is Severity.INFO
    assert "recomputation" in diag.message


def test_rpr022_is_warning_for_dt(session):
    report = session.analyze(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh "
        "AS SELECT city, sum(rate) FROM events GROUP BY city")
    assert report.codes() == ("RPR022",)
    assert report.diagnostics[0].severity is Severity.WARNING


def test_rpr022_not_firing_on_retractable_aggregates(session):
    assert "RPR022" not in codes_of(
        session,
        "SELECT city, count(*), sum(amount) FROM events GROUP BY city")


# ---------------------------------------------------------------------------
# Session surface
# ---------------------------------------------------------------------------


def test_analyze_reports_schema_for_queries(session):
    report = session.analyze("SELECT id, city FROM events")
    assert report.ok
    assert report.schema.names == ["id", "city"]


def test_analyze_does_not_execute(db, session):
    session.execute("INSERT INTO cities VALUES ('a', 1)")
    session.analyze("DELETE FROM cities")
    assert session.query("SELECT count(*) FROM cities").rows == [(1,)]


def test_analyze_handles_parameters(session):
    report = session.analyze("SELECT id FROM events WHERE amount > ?")
    assert report.ok


def test_analyze_level_setting_validation(session):
    assert session.settings["analyze_level"] == "warn"
    session.set_setting("analyze_level", "error")
    assert session.settings["analyze_level"] == "error"
    with pytest.raises(UserError):
        session.set_setting("analyze_level", "loud")


def test_strict_mode_rejects_warnings(session):
    session.set_analyze_level("error")
    with pytest.raises(AnalysisError) as excinfo:
        session.execute("SELECT id FROM events WHERE amount > 5 "
                        "AND amount < 3")
    assert excinfo.value.diagnostics
    assert excinfo.value.diagnostics[0].code == "RPR011"
    assert "RPR011" in str(excinfo.value)


def test_strict_mode_allows_clean_statements(session):
    session.set_analyze_level("error")
    assert session.execute("SELECT id FROM events WHERE amount > 5"
                           ).rows == []


def test_strict_mode_off_by_default(session):
    assert session.execute("SELECT id FROM events WHERE 1 = 1").rows == []


def test_dynamic_table_carries_analysis(db):
    dt = db.create_dynamic_table(
        "d_rate", "SELECT rate, count(*) FROM events GROUP BY rate",
        target_lag="1 minute", warehouse="wh")
    assert isinstance(dt.analysis, AnalysisReport)
    assert "RPR021" in dt.analysis.codes()
    assert not dt.incremental_supported


def test_explain_merges_analysis_warnings(session):
    plan_text = session.explain(
        "SELECT id FROM events WHERE amount > 5 AND amount < 3")
    assert "-- analysis RPR011" in plan_text
    # plain selects keep incrementality lints at INFO: not merged
    assert "-- analysis RPR021" not in session.explain(
        "SELECT id FROM events ORDER BY id")


def test_explain_sections_share_format(session):
    plan_text = session.explain(
        "SELECT city, median(amount) FROM events GROUP BY city "
        "HAVING 1 = 1")
    refresh = [l for l in plan_text.splitlines() if l.startswith("-- refresh")]
    analysis = [l for l in plan_text.splitlines()
                if l.startswith("-- analysis")]
    assert refresh and analysis  # both sections, one `-- ` format
    assert "RPR012" in analysis[0]


def test_analyze_bound_query_reuses_plan(db):
    from repro.plan.builder import build_plan
    from repro.sql.parser import parse_query

    query = parse_query("SELECT id FROM events WHERE 1 = 1")
    plan = build_plan(query, db.catalog, db.registry)
    report = analyze_bound_query(query, plan)
    assert "RPR012" in report.codes()
    assert report.schema is plan.schema


def test_every_emitted_code_is_registered(session):
    for sql in ("SELEKT", "SELECT x FROM nosuch", "SELECT x FROM events",
                "SELECT amount + city FROM events",
                "SELECT id FROM events WHERE 1 = 1 AND amount = NULL",
                "SELECT rate, median(amount) FROM events GROUP BY rate"):
        for diag in session.analyze(sql):
            assert diag.code in CODES
            assert isinstance(diag, Diagnostic)
