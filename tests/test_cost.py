"""Tests for the refresh cost model (section 3.3.2's fixed+variable)."""

from repro.core.dynamic_table import RefreshAction, RefreshRecord
from repro.ivm.differentiator import DifferentiationStats
from repro.scheduler.cost import CostModel


def record(action, source_rows=0, inserted=0, deleted=0,
           endpoint_rows=0, delta_in=0):
    rec = RefreshRecord(data_timestamp=0, action=action)
    rec.source_rows_scanned = source_rows
    rec.rows_inserted = inserted
    rec.rows_deleted = deleted
    if action == RefreshAction.INCREMENTAL:
        stats = DifferentiationStats()
        stats.endpoint_rows = endpoint_rows
        stats.delta_rows_in = delta_in
        rec.ivm_stats = stats
    return rec


class TestDurations:
    def test_no_data_is_tiny_and_warehouse_free(self):
        model = CostModel()
        rec = record(RefreshAction.NO_DATA)
        assert model.duration_of(rec) == model.no_data_cost
        assert not model.uses_warehouse(rec)

    def test_full_scales_with_source_rows(self):
        model = CostModel()
        small = model.duration_of(record(RefreshAction.FULL, source_rows=100))
        large = model.duration_of(record(RefreshAction.FULL,
                                         source_rows=100_000))
        assert large > small

    def test_incremental_scales_with_delta(self):
        model = CostModel()
        small = model.duration_of(record(
            RefreshAction.INCREMENTAL, inserted=10, delta_in=10))
        large = model.duration_of(record(
            RefreshAction.INCREMENTAL, inserted=10_000, delta_in=10_000))
        assert large > small

    def test_fixed_cost_floor(self):
        model = CostModel()
        rec = record(RefreshAction.INCREMENTAL)
        assert model.duration_of(rec) >= model.fixed_cost

    def test_variable_cost_is_linear(self):
        """Section 3.3.2: 'variable costs scale linearly with the amount
        of changed data in the sources.'"""
        model = CostModel()
        base = model.duration_of(record(RefreshAction.INCREMENTAL))
        one = model.duration_of(record(RefreshAction.INCREMENTAL,
                                       delta_in=1000)) - base
        two = model.duration_of(record(RefreshAction.INCREMENTAL,
                                       delta_in=2000)) - base
        assert two == 2 * one

    def test_bigger_warehouse_is_faster(self):
        model = CostModel()
        rec = record(RefreshAction.FULL, source_rows=100_000,
                     inserted=100_000)
        assert model.duration_of(rec, warehouse_size=4) < \
               model.duration_of(rec, warehouse_size=1)

    def test_warehouse_size_does_not_reduce_fixed_cost(self):
        model = CostModel()
        rec = record(RefreshAction.FULL)
        assert model.duration_of(rec, warehouse_size=64) == model.fixed_cost

    def test_small_incremental_cheaper_than_full(self):
        """The crossover premise: tiny deltas beat recomputation."""
        model = CostModel()
        incremental = model.duration_of(record(
            RefreshAction.INCREMENTAL, inserted=10, delta_in=10,
            endpoint_rows=100))
        full = model.duration_of(record(
            RefreshAction.FULL, source_rows=1_000_000, inserted=1_000_000))
        assert incremental < full

    def test_initial_and_reinitialize_priced_like_full(self):
        model = CostModel()
        args = dict(source_rows=5000, inserted=5000)
        full = model.duration_of(record(RefreshAction.FULL, **args))
        initial = model.duration_of(record(RefreshAction.INITIAL, **args))
        reinit = model.duration_of(record(RefreshAction.REINITIALIZE, **args))
        assert full == initial == reinit
