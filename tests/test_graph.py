"""Tests for the dependency graph and DOWNSTREAM lag resolution."""

import pytest

from repro import Database
from repro.core.graph import DependencyGraph
from repro.util.timeutil import MINUTE, minutes


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE src (id int)")
    database.execute("INSERT INTO src VALUES (1)")
    return database


def dt(db, name, sql, lag="1 minute"):
    return db.create_dynamic_table(name, sql, lag, "wh")


class TestTopology:
    def test_upstream_downstream(self, db):
        dt(db, "a", "SELECT id FROM src")
        dt(db, "b", "SELECT id FROM a")
        graph = DependencyGraph(db.catalog)
        assert [u.name for u in graph.upstream_dts("b")] == ["a"]
        assert [d.name for d in graph.downstream_dts("a")] == ["b"]
        assert graph.upstream["a"] == {"src"}

    def test_topological_order(self, db):
        dt(db, "a", "SELECT id FROM src")
        dt(db, "b", "SELECT id FROM a")
        dt(db, "c", "SELECT x.id FROM b x JOIN a y ON x.id = y.id")
        order = [node.name for node in
                 DependencyGraph(db.catalog).topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_upstream_closure(self, db):
        dt(db, "a", "SELECT id FROM src")
        dt(db, "b", "SELECT id FROM a")
        dt(db, "c", "SELECT id FROM b")
        closure = [node.name for node in
                   DependencyGraph(db.catalog).upstream_closure("c")]
        assert closure == ["a", "b"]

    def test_connected_components(self, db):
        dt(db, "a", "SELECT id FROM src")
        dt(db, "b", "SELECT id FROM a")
        dt(db, "solo", "SELECT id FROM src")
        components = DependencyGraph(db.catalog).connected_components()
        names = sorted(tuple(node.name for node in component)
                       for component in components)
        assert names == [("a", "b"), ("solo",)]

    def test_views_do_not_hide_dt_edges(self, db):
        dt(db, "a", "SELECT id FROM src")
        db.execute("CREATE VIEW v AS SELECT id FROM a")
        dt(db, "b", "SELECT id FROM v")
        graph = DependencyGraph(db.catalog)
        assert [u.name for u in graph.upstream_dts("b")] == ["a"]


class TestDownstreamLag:
    def test_concrete_lag_passthrough(self, db):
        dt(db, "a", "SELECT id FROM src", lag="5 minutes")
        graph = DependencyGraph(db.catalog)
        assert graph.effective_lag("a") == minutes(5)

    def test_downstream_takes_minimum(self, db):
        dt(db, "a", "SELECT id FROM src", lag="downstream")
        dt(db, "b", "SELECT id FROM a", lag="10 minutes")
        dt(db, "c", "SELECT id FROM a", lag="2 minutes")
        graph = DependencyGraph(db.catalog)
        assert graph.effective_lag("a") == minutes(2)

    def test_downstream_chains(self, db):
        dt(db, "a", "SELECT id FROM src", lag="downstream")
        dt(db, "b", "SELECT id FROM a", lag="downstream")
        dt(db, "c", "SELECT id FROM b", lag="4 minutes")
        graph = DependencyGraph(db.catalog)
        assert graph.effective_lag("a") == minutes(4)
        assert graph.effective_lag("b") == minutes(4)

    def test_downstream_without_consumers_is_none(self, db):
        dt(db, "a", "SELECT id FROM src", lag="downstream")
        assert DependencyGraph(db.catalog).effective_lag("a") is None

    def test_listing1_shape(self, db):
        """Listing 1: DOWNSTREAM upstream aligned to a 1-minute consumer."""
        dt(db, "arrivals", "SELECT id FROM src", lag="downstream")
        dt(db, "delayed", "SELECT id FROM arrivals", lag="1 minute")
        graph = DependencyGraph(db.catalog)
        assert graph.effective_lag("arrivals") == MINUTE
