"""Tests for zero-copy cloning (section 3.4)."""

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.errors import CatalogError, NotInitializedError
from repro.util.timeutil import MINUTE


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE src (id int, val int)")
    database.execute("INSERT INTO src VALUES (1, 10), (2, 20), (3, 30)")
    return database


class TestTableClone:
    def test_clone_has_same_contents(self, db):
        db.execute("CREATE TABLE copy CLONE src")
        assert sorted(db.query("SELECT * FROM copy").rows) == \
               sorted(db.query("SELECT * FROM src").rows)

    def test_clone_shares_partitions(self, db):
        db.execute("CREATE TABLE copy CLONE src")
        source = db.catalog.versioned_table("src")
        clone = db.catalog.versioned_table("copy")
        assert clone.current_version.partition_ids <= \
               source.current_version.partition_ids  # shared by reference

    def test_clone_diverges_after_writes(self, db):
        db.execute("CREATE TABLE copy CLONE src")
        db.execute("INSERT INTO copy VALUES (9, 90)")
        db.execute("DELETE FROM src WHERE id = 1")
        assert len(db.query("SELECT * FROM copy").rows) == 4
        assert len(db.query("SELECT * FROM src").rows) == 2

    def test_clone_row_ids_do_not_collide_with_future_source_rows(self, db):
        db.execute("CREATE TABLE copy CLONE src")
        db.execute("INSERT INTO src VALUES (4, 40)")
        db.execute("INSERT INTO copy VALUES (5, 50)")
        src_ids = set(db.query("SELECT * FROM src").row_ids)
        copy_new_ids = set(db.query("SELECT * FROM copy").row_ids) - src_ids
        # The clone's new row got its own namespace.
        assert len(copy_new_ids) == 1

    def test_clone_wrong_kind_rejected(self, db):
        db.execute("CREATE VIEW v AS SELECT id FROM src")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE copy CLONE v")

    def test_clone_name_collision_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE src CLONE src")


class TestDynamicTableClone:
    def make_dt(self, db):
        return db.create_dynamic_table(
            "totals", "SELECT val, count(*) n FROM src GROUP BY val",
            "1 minute", "wh")

    def test_clone_is_immediately_readable(self, db):
        self.make_dt(db)
        db.execute("CREATE DYNAMIC TABLE totals2 CLONE totals")
        assert sorted(db.query("SELECT * FROM totals2").rows) == \
               sorted(db.query("SELECT * FROM totals").rows)

    def test_clone_avoids_reinitialization(self, db):
        """The headline claim: the clone's next refresh is INCREMENTAL
        from the copied frontier, not a REINITIALIZE."""
        self.make_dt(db)
        db.execute("CREATE DYNAMIC TABLE totals2 CLONE totals")
        db.execute("INSERT INTO src VALUES (4, 10)")
        db.refresh_dynamic_table("totals2")
        clone = db.dynamic_table("totals2")
        assert clone.refresh_history[-1].action == RefreshAction.INCREMENTAL
        assert db.check_dvs("totals2")

    def test_clone_preserves_data_timestamp(self, db):
        source = self.make_dt(db)
        db.clock.advance(MINUTE)
        db.execute("CREATE DYNAMIC TABLE totals2 CLONE totals")
        clone = db.dynamic_table("totals2")
        assert clone.data_timestamp == source.data_timestamp

    def test_clones_diverge(self, db):
        self.make_dt(db)
        db.execute("CREATE DYNAMIC TABLE totals2 CLONE totals")
        db.execute("INSERT INTO src VALUES (5, 99)")
        db.refresh_dynamic_table("totals2")
        source_rows = sorted(db.query("SELECT * FROM totals").rows)
        clone_rows = sorted(db.query("SELECT * FROM totals2").rows)
        assert source_rows != clone_rows  # only the clone refreshed

    def test_clone_of_uninitialized_rejected(self, db):
        db.create_dynamic_table(
            "lazy", "SELECT id FROM src", "1 minute", "wh",
            initialize="on_schedule")
        with pytest.raises(NotInitializedError):
            db.execute("CREATE DYNAMIC TABLE lazy2 CLONE lazy")

    def test_clone_participates_in_scheduling(self, db):
        self.make_dt(db)
        db.execute("CREATE DYNAMIC TABLE totals2 CLONE totals")
        db.execute("INSERT INTO src VALUES (6, 60)")
        db.run_for(3 * MINUTE)
        assert db.check_dvs("totals")
        assert db.check_dvs("totals2")
        assert sorted(db.query("SELECT * FROM totals").rows) == \
               sorted(db.query("SELECT * FROM totals2").rows)

    def test_downstream_of_clone_reads_exact_versions(self, db):
        self.make_dt(db)
        db.execute("CREATE DYNAMIC TABLE totals2 CLONE totals")
        db.create_dynamic_table(
            "downstream", "SELECT val FROM totals2 WHERE n > 0",
            "1 minute", "wh")
        assert db.check_dvs("downstream")
