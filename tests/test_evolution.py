"""Tests for query evolution: upstream DDL handling (sections 3.4, 5.4)."""

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.core.evolution import (EvolutionOutcome, check_evolution,
                                  collect_source_names)
from repro.sql.parser import parse_query
from repro.util.timeutil import MINUTE


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE src (id int, val int)")
    database.execute("INSERT INTO src VALUES (1, 10), (2, 20)")
    return database


class TestSourceCollection:
    def test_direct_tables(self, db):
        names = collect_source_names(
            parse_query("SELECT a.id FROM src a JOIN src b ON a.id = b.id"),
            db.catalog)
        assert names == {"src"}

    def test_views_and_their_sources(self, db):
        db.execute("CREATE VIEW v AS SELECT id FROM src")
        names = collect_source_names(parse_query("SELECT id FROM v"),
                                     db.catalog)
        assert names == {"v", "src"}

    def test_subqueries_and_unions(self, db):
        db.execute("CREATE TABLE other (id int)")
        names = collect_source_names(parse_query(
            "SELECT id FROM (SELECT id FROM src) s "
            "UNION ALL SELECT id FROM other"), db.catalog)
        assert names == {"src", "other"}


class TestDecisions:
    def test_unchanged_proceeds(self, db):
        dt = db.create_dynamic_table("d", "SELECT id FROM src",
                                     "1 minute", "wh")
        decision = check_evolution(dt.dependencies, db.catalog)
        assert decision.outcome == EvolutionOutcome.PROCEED

    def test_replace_triggers_reinitialize(self, db):
        dt = db.create_dynamic_table("d", "SELECT id FROM src",
                                     "1 minute", "wh")
        db.execute("CREATE OR REPLACE TABLE src (id int, val int)")
        decision = check_evolution(dt.dependencies, db.catalog)
        assert decision.outcome == EvolutionOutcome.REINITIALIZE

    def test_drop_fails(self, db):
        dt = db.create_dynamic_table("d", "SELECT id FROM src",
                                     "1 minute", "wh")
        db.execute("DROP TABLE src")
        decision = check_evolution(dt.dependencies, db.catalog)
        assert decision.outcome == EvolutionOutcome.FAIL


class TestEndToEnd:
    def test_replaced_table_causes_reinitialize_refresh(self, db):
        dt = db.create_dynamic_table("d", "SELECT id, val FROM src",
                                     "1 minute", "wh")
        db.execute("CREATE OR REPLACE TABLE src (id int, val int)")
        db.execute("INSERT INTO src VALUES (9, 90)")
        db.refresh_dynamic_table("d")
        assert dt.refresh_history[-1].action == RefreshAction.REINITIALIZE
        assert db.query("SELECT * FROM d").rows == [(9, 90)]

    def test_reinitialize_rerecords_dependencies(self, db):
        dt = db.create_dynamic_table("d", "SELECT id, val FROM src",
                                     "1 minute", "wh")
        db.execute("CREATE OR REPLACE TABLE src (id int, val int)")
        db.execute("INSERT INTO src VALUES (9, 90)")
        db.refresh_dynamic_table("d")
        db.execute("INSERT INTO src VALUES (10, 100)")
        db.refresh_dynamic_table("d")
        # Second refresh after the replace must be incremental again.
        assert dt.refresh_history[-1].action == RefreshAction.INCREMENTAL

    def test_drop_fails_then_undrop_recovers(self, db):
        """Section 3.4: 'if a table is dropped, a DT refresh downstream of
        it will fail. But if the table is UNDROPped, then refreshes should
        resume without issue.'"""
        dt = db.create_dynamic_table("d", "SELECT id, val FROM src",
                                     "1 minute", "wh")
        db.execute("DROP TABLE src")
        record = db.engine.refresh(dt, db.now + MINUTE)
        assert record.error is not None
        db.execute("UNDROP TABLE src")
        db.execute("INSERT INTO src VALUES (5, 50)")
        db.refresh_dynamic_table("d")
        record = dt.refresh_history[-1]
        assert record.succeeded
        assert record.action == RefreshAction.INCREMENTAL
        assert db.check_dvs("d")

    def test_view_replace_reinitializes_downstream(self, db):
        db.execute("CREATE VIEW v AS SELECT id FROM src WHERE val > 15")
        dt = db.create_dynamic_table("d", "SELECT id FROM v",
                                     "1 minute", "wh")
        assert db.query("SELECT * FROM d").rows == [(2,)]
        db.execute("CREATE OR REPLACE VIEW v AS SELECT id FROM src "
                   "WHERE val > 5")
        db.refresh_dynamic_table("d")
        assert dt.refresh_history[-1].action == RefreshAction.REINITIALIZE
        assert sorted(db.query("SELECT * FROM d").rows) == [(1,), (2,)]

    def test_rename_breaks_then_recreate_recovers(self, db):
        """Upstream precedence: the rename succeeds; downstream fails until
        the name exists again."""
        dt = db.create_dynamic_table("d", "SELECT id FROM src",
                                     "1 minute", "wh")
        db.execute("ALTER TABLE src RENAME TO src_new")
        record = db.engine.refresh(dt, db.now + MINUTE)
        assert record.error is not None
        db.execute("CREATE TABLE src (id int, val int)")
        db.execute("INSERT INTO src VALUES (42, 0)")
        db.refresh_dynamic_table("d")
        assert dt.refresh_history[-1].action == RefreshAction.REINITIALIZE
        assert db.query("SELECT * FROM d").rows == [(42,)]
