"""Tests for simulated virtual warehouses."""

import pytest

from repro.errors import CatalogError
from repro.scheduler.warehouse import Warehouse, WarehousePool
from repro.util.timeutil import MINUTE, SECOND


class TestSubmission:
    def test_idle_warehouse_starts_immediately(self):
        warehouse = Warehouse("wh", size=1)
        start, end = warehouse.submit(arrival=100, duration=50)
        assert (start, end) == (100, 150)

    def test_busy_slot_queues(self):
        warehouse = Warehouse("wh", size=1)
        warehouse.submit(arrival=0, duration=100)
        start, end = warehouse.submit(arrival=10, duration=20)
        assert start == 100
        assert end == 120

    def test_parallel_slots(self):
        warehouse = Warehouse("wh", size=2)
        warehouse.submit(arrival=0, duration=100)
        start, __ = warehouse.submit(arrival=10, duration=20)
        assert start == 10  # second slot free

    def test_next_free(self):
        warehouse = Warehouse("wh", size=1)
        warehouse.submit(arrival=0, duration=100)
        assert warehouse.next_free(50) == 100
        assert warehouse.next_free(200) == 200

    def test_size_validation(self):
        with pytest.raises(CatalogError):
            Warehouse("wh", size=0)


class TestCredits:
    def test_credits_scale_with_size(self):
        small = Warehouse("s", size=1, auto_suspend=None)
        big = Warehouse("b", size=4, auto_suspend=None)
        small.submit(0, 10 * SECOND)
        big.submit(0, 10 * SECOND)
        assert big.credits_used() == 4 * small.credits_used()

    def test_bursts_merge_within_auto_suspend(self):
        warehouse = Warehouse("wh", size=1, auto_suspend=MINUTE)
        warehouse.submit(0, SECOND)
        warehouse.submit(30 * SECOND, SECOND)  # within the idle window
        assert len(warehouse._activity) == 1

    def test_separate_bursts_after_suspension(self):
        warehouse = Warehouse("wh", size=1, auto_suspend=MINUTE)
        warehouse.submit(0, SECOND)
        warehouse.submit(10 * MINUTE, SECOND)
        assert len(warehouse._activity) == 2

    def test_colocation_is_cheaper_than_isolation(self):
        """The pattern from section 3.3.1: co-locating related DTs in one
        warehouse saves credits versus one warehouse each."""
        shared = Warehouse("shared", size=1, auto_suspend=MINUTE)
        for job in range(5):
            shared.submit(job * 10 * SECOND, 5 * SECOND)
        isolated = [Warehouse(f"iso{j}", size=1, auto_suspend=MINUTE)
                    for j in range(5)]
        for job, warehouse in enumerate(isolated):
            warehouse.submit(job * 10 * SECOND, 5 * SECOND)
        assert shared.credits_used() < sum(w.credits_used()
                                           for w in isolated)

    def test_utilization(self):
        warehouse = Warehouse("wh", size=2, auto_suspend=None)
        warehouse.submit(0, 10 * SECOND)
        assert warehouse.utilization(10 * SECOND) == pytest.approx(0.5)

    def test_is_active_at(self):
        warehouse = Warehouse("wh", size=1, auto_suspend=MINUTE)
        warehouse.submit(0, SECOND)
        assert warehouse.is_active_at(SECOND // 2)
        assert warehouse.is_active_at(30 * SECOND)  # idling, not suspended
        assert not warehouse.is_active_at(10 * MINUTE)


class TestPool:
    def test_create_get(self):
        pool = WarehousePool()
        created = pool.create("wh", size=2)
        assert pool.get("wh") is created
        assert pool.exists("wh")

    def test_duplicate_rejected(self):
        pool = WarehousePool()
        pool.create("wh")
        with pytest.raises(CatalogError):
            pool.create("wh")

    def test_unknown_rejected(self):
        with pytest.raises(CatalogError):
            WarehousePool().get("ghost")
