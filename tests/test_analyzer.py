"""Tests for the whole-program concurrency analyzer
(``tools/analyzer/``): call-graph construction (method resolution, the
binding and seam tables), the lock-state transfer function, the
must-hold fixpoint, mutation regressions over fixture copies, and the
real-tree contracts the CI gate relies on (clean gated run, acyclic
acquired-before relation with the documented discipline edges).
"""

import shutil
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.analyzer import driver  # noqa: E402
from tools.analyzer.callgraph import Program  # noqa: E402
from tools.analyzer.config import REPRO_CONFIG, AnalyzerConfig  # noqa: E402
from tools.analyzer.effects import (may_take,  # noqa: E402
                                    transitive_effects)
from tools.analyzer.lockstate import build_lock_graph  # noqa: E402
from tools.analyzer.races import must_held_at_entry  # noqa: E402

SRC_ROOT = REPO_ROOT / "src" / "repro"


def _program(tmp_path, sources: dict, config=None) -> Program:
    for rel_name, text in sources.items():
        target = tmp_path / rel_name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    return Program(tmp_path, config or AnalyzerConfig())


def _edges(program: Program) -> set:
    return {(site.caller, site.callee)
            for site in program.resolved_edges()}


# ---------------------------------------------------------------------------
# Call graph: resolution through annotations, constructors, attributes
# ---------------------------------------------------------------------------


def test_resolves_annotated_parameter_method_call(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        class Engine:
            def run(self):
                pass

        def drive(engine: Engine):
            engine.run()
    """})
    assert ("mod.drive", "mod.Engine.run") in _edges(program)


def test_resolves_optional_annotation(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        from typing import Optional

        class Engine:
            def run(self):
                pass

        def drive(engine: Optional[Engine]):
            engine.run()

        def drive2(engine: "Engine | None"):
            engine.run()
    """})
    edges = _edges(program)
    assert ("mod.drive", "mod.Engine.run") in edges
    assert ("mod.drive2", "mod.Engine.run") in edges


def test_resolves_constructor_assignment(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        class Engine:
            def run(self):
                pass

        def drive():
            engine = Engine()
            engine.run()
    """})
    assert ("mod.drive", "mod.Engine.run") in _edges(program)


def test_resolves_self_attribute_chain(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        class Engine:
            def run(self):
                pass

        class Car:
            def __init__(self):
                self.engine = Engine()

            def go(self):
                self.engine.run()
    """})
    assert ("mod.Car.go", "mod.Engine.run") in _edges(program)


def test_resolves_inherited_method_through_base_chain(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        class Base:
            def run(self):
                pass

        class Derived(Base):
            pass

        def drive(engine: Derived):
            engine.run()
    """})
    assert ("mod.drive", "mod.Base.run") in _edges(program)


def test_attr_binding_table_types_late_bound_attribute(tmp_path):
    # Two unrelated definers of ``fire``: the unique-definer fallback
    # stays out of it, so only the binding table can type the call.
    sources = {"mod.py": """
        class Hook:
            def fire(self):
                pass

        class Missile:
            def fire(self):
                pass

        class Owner:
            def __init__(self):
                self.hook = None

            def trigger(self):
                self.hook.fire()
    """}
    untyped = _program(tmp_path / "a", sources)
    assert ("mod.Owner.trigger", "mod.Hook.fire") not in _edges(untyped)
    bound = _program(tmp_path / "b", sources,
                     AnalyzerConfig(attr_bindings={"Owner.hook": "Hook"}))
    assert ("mod.Owner.trigger", "mod.Hook.fire") in _edges(bound)


def test_method_seam_fans_out_to_subclasses(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        class Acc:
            def fold(self, row):
                raise NotImplementedError

        class SumAcc(Acc):
            def fold(self, row):
                pass

        class CountAcc(Acc):
            def fold(self, row):
                pass

        def apply(acc):
            acc.fold(1)
    """}, AnalyzerConfig(method_seams={"fold": ("subclasses-of:Acc",)}))
    edges = _edges(program)
    assert ("mod.apply", "mod.SumAcc.fold") in edges
    assert ("mod.apply", "mod.CountAcc.fold") in edges


def test_nested_def_gets_implicit_edge_from_outer(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        import time

        def outer():
            def inner():
                time.sleep(1)
            return inner
    """})
    assert ("mod.outer", "mod.outer.inner") in _edges(program)
    effects = transitive_effects(program)
    assert "sleep" in effects["mod.outer"]


# ---------------------------------------------------------------------------
# Lock-state transfer function
# ---------------------------------------------------------------------------


def test_with_block_scopes_held_set_exactly(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        import threading

        class Box:
            def __init__(self):
                self.mutex = threading.Lock()
                self.n = 0

            def update(self):
                with self.mutex:
                    self.n += 1
                self.n += 2
    """})
    writes = {w.line: set(w.held)
              for w in program.facts["mod.Box.update"].writes
              if w.attr == "n"}
    inside, outside = sorted(writes)
    assert writes[inside] == {"Box.mutex"}
    assert writes[outside] == set()


def test_explicit_acquire_persists_to_function_end(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        import threading

        class Box:
            def __init__(self):
                self.mutex = threading.Lock()
                self.n = 0

            def update(self):
                self.mutex.acquire()
                self.n += 1
    """})
    facts = program.facts["mod.Box.update"]
    (acq,) = facts.acquisitions
    assert acq.lock == "Box.mutex" and not acq.via_with
    (write,) = [w for w in facts.writes if w.attr == "n"]
    assert "Box.mutex" in write.held


def test_nested_with_produces_acquired_before_edge(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        import threading

        class Box:
            def __init__(self):
                self.a = threading.Lock()
                self.b = threading.Lock()

            def both(self):
                with self.a:
                    with self.b:
                        pass
    """})
    graph = build_lock_graph(program)
    assert "Box.b" in graph.edges.get("Box.a", set())
    assert graph.cycles() == []


def test_interprocedural_inversion_detected(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        import threading

        class Box:
            def __init__(self):
                self.a = threading.Lock()
                self.b = threading.Lock()

            def forward(self):
                with self.a:
                    self.take_b()

            def take_b(self):
                with self.b:
                    pass

            def backward(self):
                with self.b:
                    with self.a:
                        pass
    """})
    graph = build_lock_graph(program)
    cycles = graph.cycles()
    assert len(cycles) == 1
    assert set(cycles[0]) == {"Box.a", "Box.b"}


def test_may_take_propagates_through_calls(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        import threading

        class Box:
            def __init__(self):
                self.a = threading.Lock()

            def inner(self):
                with self.a:
                    pass

            def outer(self):
                self.inner()
    """})
    takes = may_take(program)
    assert "Box.a" in takes["mod.Box.outer"]


def test_must_held_at_entry_intersects_paths(tmp_path):
    program = _program(tmp_path, {"mod.py": """
        import threading

        class Box:
            def __init__(self):
                self.mutex = threading.Lock()

            def guarded(self):
                with self.mutex:
                    self.work()

            def unguarded(self):
                self.work()

            def always(self):
                with self.mutex:
                    self.leaf()

            def work(self):
                pass

            def leaf(self):
                pass
    """})
    held = must_held_at_entry(
        program, {"mod.Box.guarded", "mod.Box.unguarded", "mod.Box.always"})
    # work() is reached with and without the mutex: intersection empty.
    assert held["mod.Box.work"] == frozenset()
    # leaf() is only ever reached under the mutex.
    assert held["mod.Box.leaf"] == frozenset({"Box.mutex"})


# ---------------------------------------------------------------------------
# Mutation regressions over fixture copies
# ---------------------------------------------------------------------------


def _mutated_fixture(tmp_path, name: str, rel_name: str, transform):
    root = tmp_path / name
    shutil.copytree(driver.FIXTURE_ROOT / name, root)
    target = root / rel_name
    target.write_text(transform(target.read_text()))
    return driver.fixture_findings(name, root)


def test_removing_with_block_introduces_race(tmp_path):
    findings = _mutated_fixture(
        tmp_path, "shared_write", "stats.py",
        lambda text: text.replace("        with self.mutex:\n"
                                  "            self.commits += 1",
                                  "        self.commits += 1"))
    races = [f for f in findings if f.code == "ENG104"]
    assert {f.detail for f in races} == {"Stats.commits",
                                         "Stats.checkpoints"}


def test_restoring_with_block_removes_race(tmp_path):
    findings = _mutated_fixture(
        tmp_path, "shared_write", "stats.py",
        lambda text: text.replace(
            "    def count_checkpoint(self) -> None:\n"
            "        self.checkpoints += 1",
            "    def count_checkpoint(self) -> None:\n"
            "        with self.mutex:\n"
            "            self.checkpoints += 1"))
    assert [f for f in findings if f.code == "ENG104"] == []


def test_breaking_lock_order_in_clean_tree_fires(tmp_path):
    name = "lock_cycle"
    findings = _mutated_fixture(
        tmp_path, name, "use.py", lambda text: text)
    assert any(f.code == "ENG101" for f in findings)
    fixed = tmp_path / "fixed"
    shutil.copytree(driver.FIXTURE_ROOT / name, fixed)
    use = fixed / "use.py"
    # Re-nest backward in the forward order (a outer, b inner): the
    # acquired-before relation becomes acyclic and the finding clears.
    use.write_text(use.read_text().replace(
        "    with ctx.b:\n        with ctx.a:",
        "    with ctx.a:\n        with ctx.b:"))
    assert driver.fixture_findings(name, fixed) == []


def test_eng_pragma_suppresses_finding(tmp_path):
    findings = _mutated_fixture(
        tmp_path, "shared_write", "stats.py",
        lambda text: text.replace(
            "self.checkpoints += 1",
            "self.checkpoints += 1  # eng: allow-ENG104 (test)"))
    assert [f for f in findings if f.code == "ENG104"] == []


# ---------------------------------------------------------------------------
# Real tree: the contracts CI relies on
# ---------------------------------------------------------------------------


def test_self_test_passes():
    assert driver.self_test() == 0


def test_real_tree_gated_run_is_clean(capsys):
    assert driver.main([]) == 0
    assert "analyzer: clean" in capsys.readouterr().out


def test_real_tree_lock_graph_is_acyclic_with_documented_edges():
    program = Program(driver.DEFAULT_ROOT, REPRO_CONFIG)
    graph = build_lock_graph(program)
    assert graph.cycles() == []
    # The documented engine discipline: table locks before the commit
    # mutex; commit mutex before the catalog and WAL internals;
    # checkpointing nests its own mutex outermost.
    must_have = {
        ("LockManager.<table>", "TransactionManager.commit_mutex"),
        ("TransactionManager.commit_mutex", "Catalog._mutex"),
        ("TransactionManager.commit_mutex", "WriteAheadLog._mutex"),
        ("DurabilityManager._checkpoint_mutex",
         "TransactionManager.commit_mutex"),
    }
    edges = {(held, acquired) for held in graph.edges
             for acquired in graph.edges[held]}
    assert must_have <= edges, sorted(must_have - edges)


def test_real_tree_baseline_has_no_stale_entries():
    from tools.analyzer.diagnostics import load_baseline
    __, __, findings = driver.analyze(driver.DEFAULT_ROOT, REPRO_CONFIG)
    baseline = load_baseline(driver.DEFAULT_BASELINE)
    live = {finding.fingerprint for finding in findings}
    assert baseline <= live, sorted(baseline - live)
    assert live <= baseline, sorted(live - baseline)


def test_commit_path_blocking_is_fully_baselined():
    """Every baselined finding is the known fsync-under-commit-mutex
    family (a by-design durability/latency trade, documented in
    tools/README.md) — nothing else hides in the baseline."""
    from tools.analyzer.diagnostics import load_baseline
    baseline = load_baseline(driver.DEFAULT_BASELINE)
    assert baseline, "expected the fsync-under-commit-mutex family"
    for fingerprint in baseline:
        assert fingerprint.startswith("ENG102|"), fingerprint
