"""Tests for change sets and consolidation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ChangeIntegrityError
from repro.ivm.changes import (Action, Change, ChangeSet, consolidate,
                               invert)


def cs(*ops):
    changes = ChangeSet()
    for action, row_id, row in ops:
        if action == "+":
            changes.insert(row_id, row)
        else:
            changes.delete(row_id, row)
    return changes


class TestChangeSetBasics:
    def test_insert_only_flag(self):
        assert cs(("+", "a", (1,))).insert_only
        assert not cs(("+", "a", (1,)), ("-", "b", (2,))).insert_only
        assert ChangeSet().insert_only

    def test_partition_by_action(self):
        changes = cs(("+", "a", (1,)), ("-", "b", (2,)), ("+", "c", (3,)))
        assert len(changes.inserts()) == 2
        assert len(changes.deletes()) == 1

    def test_bool_and_len(self):
        assert not ChangeSet()
        assert len(cs(("+", "a", (1,)))) == 1


class TestValidation:
    def test_duplicate_pair_rejected(self):
        changes = cs(("+", "a", (1,)), ("+", "a", (2,)))
        with pytest.raises(ChangeIntegrityError, match="duplicate"):
            changes.validate()

    def test_same_id_different_actions_ok(self):
        cs(("-", "a", (1,)), ("+", "a", (2,))).validate()

    def test_delete_of_missing_row(self):
        changes = cs(("-", "a", (1,)))
        with pytest.raises(ChangeIntegrityError, match="nonexistent"):
            changes.validate(existing_row_ids={})

    def test_insert_of_present_row(self):
        changes = cs(("+", "a", (1,)))
        with pytest.raises(ChangeIntegrityError, match="already-present"):
            changes.validate(existing_row_ids={"a": 1})

    def test_update_of_present_row_ok(self):
        cs(("-", "a", (1,)), ("+", "a", (2,))).validate(
            existing_row_ids={"a": 1})


class TestConsolidate:
    def test_insert_then_delete_cancels(self):
        result = consolidate(cs(("+", "a", (1,)), ("-", "a", (1,))))
        assert len(result) == 0

    def test_delete_then_identical_insert_cancels(self):
        # The read-amplification case: a copied row must vanish.
        result = consolidate(cs(("-", "a", (1,)), ("+", "a", (1,))))
        assert len(result) == 0

    def test_delete_then_changed_insert_is_update(self):
        result = consolidate(cs(("-", "a", (1,)), ("+", "a", (2,))))
        assert [c.action for c in result] == [Action.DELETE, Action.INSERT]
        assert result.deletes()[0].row == (1,)
        assert result.inserts()[0].row == (2,)

    def test_deletes_precede_inserts(self):
        result = consolidate(cs(("+", "b", (2,)), ("-", "a", (1,))))
        assert [c.action for c in result] == [Action.DELETE, Action.INSERT]

    def test_delete_insert_delete_nets_delete(self):
        result = consolidate(cs(("-", "a", (1,)), ("+", "a", (2,)),
                                ("-", "a", (2,))))
        assert [c.action for c in result] == [Action.DELETE]
        assert result.deletes()[0].row == (1,)

    def test_insert_delete_insert_nets_insert(self):
        result = consolidate(cs(("+", "a", (1,)), ("-", "a", (1,)),
                                ("+", "a", (3,))))
        assert [c.action for c in result] == [Action.INSERT]
        assert result.inserts()[0].row == (3,)

    def test_duplicate_insert_is_integrity_error(self):
        with pytest.raises(ChangeIntegrityError):
            consolidate(cs(("+", "a", (1,)), ("+", "a", (2,))))

    def test_duplicate_delete_is_integrity_error(self):
        with pytest.raises(ChangeIntegrityError):
            consolidate(cs(("-", "a", (1,)), ("-", "a", (1,))))

    def test_result_always_validates(self):
        result = consolidate(cs(
            ("-", "a", (1,)), ("+", "a", (2,)),
            ("+", "b", (5,)), ("-", "c", (9,))))
        result.validate()

    @given(st.lists(
        st.tuples(st.sampled_from(["ins", "del", "upd"]),
                  st.sampled_from(["r1", "r2", "r3"]),
                  st.integers(0, 5)),
        max_size=12))
    def test_consolidation_matches_state_replay(self, ops):
        """Property: applying the consolidated set to the initial state
        produces the same final state as replaying the raw sequence."""
        state: dict[str, tuple] = {"r1": (0,), "r2": (0,), "r3": (0,)}
        initial = dict(state)
        raw = ChangeSet()
        for kind, row_id, value in ops:
            if kind == "ins" and row_id not in state:
                state[row_id] = (value,)
                raw.insert(row_id, (value,))
            elif kind == "del" and row_id in state:
                raw.delete(row_id, state.pop(row_id))
            elif kind == "upd" and row_id in state:
                raw.delete(row_id, state[row_id])
                state[row_id] = (value,)
                raw.insert(row_id, (value,))

        net = consolidate(raw)
        net.validate(existing_row_ids=initial)
        replayed = dict(initial)
        for change in net.deletes():
            assert replayed.pop(change.row_id) == change.row
        for change in net.inserts():
            assert change.row_id not in replayed
            replayed[change.row_id] = change.row
        assert replayed == state


class TestInvert:
    def test_roundtrip(self):
        changes = cs(("+", "a", (1,)), ("-", "b", (2,)))
        double = invert(invert(changes))
        assert [(c.action, c.row_id, c.row) for c in double] == \
               [(c.action, c.row_id, c.row) for c in changes]

    def test_swaps_actions(self):
        inverted = invert(cs(("+", "a", (1,))))
        assert inverted.changes[0].action == Action.DELETE
