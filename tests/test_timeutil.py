"""Tests for duration/timestamp helpers."""

import pytest

from repro.errors import UserError
from repro.util import timeutil as tu


class TestParseDuration:
    def test_minutes(self):
        assert tu.parse_duration("1 minute") == tu.MINUTE

    def test_plural(self):
        assert tu.parse_duration("5 minutes") == 5 * tu.MINUTE

    def test_seconds_abbreviation(self):
        assert tu.parse_duration("30 s") == 30 * tu.SECOND

    def test_hours(self):
        assert tu.parse_duration("2 hours") == 2 * tu.HOUR

    def test_days(self):
        assert tu.parse_duration("3 days") == 3 * tu.DAY

    def test_no_space(self):
        assert tu.parse_duration("10min") == 10 * tu.MINUTE

    def test_case_insensitive(self):
        assert tu.parse_duration("1 Minute") == tu.MINUTE

    def test_rejects_garbage(self):
        with pytest.raises(UserError):
            tu.parse_duration("soon")

    def test_rejects_unknown_unit(self):
        with pytest.raises(UserError):
            tu.parse_duration("3 fortnights")

    def test_rejects_zero(self):
        with pytest.raises(UserError):
            tu.parse_duration("0 minutes")

    def test_rejects_negative_magnitude(self):
        with pytest.raises(UserError):
            tu.parse_duration("-1 minute")


class TestFormatDuration:
    def test_single_minute(self):
        assert tu.format_duration(tu.MINUTE) == "1 minute"

    def test_non_divisible_falls_to_seconds(self):
        assert tu.format_duration(90 * tu.SECOND) == "90 seconds"

    def test_hours(self):
        assert tu.format_duration(2 * tu.HOUR) == "2 hours"

    def test_zero(self):
        assert tu.format_duration(0) == "0 seconds"

    def test_roundtrip(self):
        for text in ("1 minute", "16 hours", "2 days", "45 seconds"):
            assert tu.format_duration(tu.parse_duration(text)) == text


class TestHelpers:
    def test_seconds(self):
        assert tu.seconds(1.5) == 1_500_000_000

    def test_minutes(self):
        assert tu.minutes(2) == 2 * tu.MINUTE

    def test_hours_days(self):
        assert tu.hours(24) == tu.days(1)

    def test_format_timestamp(self):
        assert tu.format_timestamp(tu.SECOND) == "t=1.000s"
