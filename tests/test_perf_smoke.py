"""Perf smoke check: a scaled-down ``bench_t2`` scenario.

The paper's core cost claim (section 3.3.2): incremental refresh work
scales with the size of the *changes*, not the table. This check runs the
same filter+project shape as ``benchmarks/bench_t2_incremental_cost_scaling``
through the real refresh engine — storage, change queries, the
differentiator — and asserts the claim on deterministic work counters
(source rows scanned), then snapshots them to ``benchmarks/BENCH_t2.json``
via the shared reporting module.

Runs as part of tier-1 (it is fast); deselect with ``-m "not perf"``.
"""

import os
import sys

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshAction

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "benchmarks"))
from reporting import emit_json  # noqa: E402

pytestmark = pytest.mark.perf

TABLE_ROWS = 2_000
DELTA_ROWS = 20


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE items (id int, grp text, val int)")
    database.execute("INSERT INTO items VALUES " + ", ".join(
        f"({i}, 'g{i % 50}', {i % 1000})" for i in range(TABLE_ROWS)))
    return database


QUERY = "SELECT id, grp, val * 2 doubled FROM items WHERE val >= 0"


def test_incremental_scans_fewer_rows_than_full(db):
    incremental = db.create_dynamic_table("inc", QUERY, "1 minute", "wh",
                                          refresh_mode="incremental")
    full = db.create_dynamic_table("ful", QUERY, "1 minute", "wh",
                                   refresh_mode="full")

    db.execute("INSERT INTO items VALUES " + ", ".join(
        f"({TABLE_ROWS + i}, 'g{i % 50}', {i})" for i in range(DELTA_ROWS)))
    db.refresh_dynamic_table("inc")
    db.refresh_dynamic_table("ful")

    inc_record = incremental.refresh_history[-1]
    full_record = full.refresh_history[-1]
    assert inc_record.action == RefreshAction.INCREMENTAL
    assert full_record.action == RefreshAction.FULL

    # The load-bearing claim: incremental work ∝ delta, full work ∝ table.
    assert inc_record.source_rows_scanned < full_record.source_rows_scanned
    assert inc_record.source_rows_scanned <= DELTA_ROWS
    assert full_record.source_rows_scanned == TABLE_ROWS + DELTA_ROWS

    # Both engines converge on identical contents (section 6.1).
    assert sorted(db.query("SELECT * FROM inc").rows) == \
        sorted(db.query("SELECT * FROM ful").rows)

    emit_json("BENCH_t2.json", {
        "scenario": "scaled-down bench_t2: filter+project over items",
        "query": QUERY,
        "table_rows": TABLE_ROWS,
        "delta_rows": DELTA_ROWS,
        "incremental_source_rows_scanned": inc_record.source_rows_scanned,
        "full_source_rows_scanned": full_record.source_rows_scanned,
        "scan_ratio_full_over_incremental": round(
            full_record.source_rows_scanned
            / max(inc_record.source_rows_scanned, 1), 1),
        "timings": "see benchmarks/results.txt (pytest benchmarks/)",
    })
