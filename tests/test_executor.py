"""Tests for the relational executor."""

import pytest

from repro.engine.executor import evaluate
from repro.engine.relation import DictResolver, Relation
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.sql.parser import parse_query

ORDERS = schema_of(("id", SqlType.INT), ("cust", SqlType.TEXT),
                   ("amt", SqlType.INT), table="orders")
CUSTS = schema_of(("name", SqlType.TEXT), ("region", SqlType.TEXT),
                  table="customers")
EVENTS = schema_of(("id", SqlType.INT), ("payload", SqlType.VARIANT),
                   table="events")

PROVIDER = DictSchemaProvider({
    "orders": ORDERS, "customers": CUSTS, "events": EVENTS})


@pytest.fixture
def resolver():
    orders = Relation(ORDERS,
                      [(1, "a", 10), (2, "b", 3), (3, "a", 7), (4, "z", 9),
                       (5, None, 5)],
                      [f"b1:{i}" for i in range(5)])
    customers = Relation(CUSTS,
                         [("a", "west"), ("b", "east"), ("c", "west")],
                         [f"b2:{i}" for i in range(3)])
    events = Relation(EVENTS,
                      [(1, {"tags": ["x", "y"]}), (2, {"tags": []}),
                       (3, {"tags": None}), (4, {})],
                      [f"b3:{i}" for i in range(4)])
    return DictResolver({"orders": orders, "customers": customers,
                         "events": events})


def run(sql, resolver):
    plan = build_plan(parse_query(sql), PROVIDER)
    return evaluate(plan, resolver)


class TestScanProjectFilter:
    def test_project(self, resolver):
        result = run("SELECT amt * 2 d FROM orders WHERE id = 1", resolver)
        assert result.rows == [(20,)]

    def test_filter_null_is_dropped(self, resolver):
        result = run("SELECT id FROM orders WHERE cust = 'a'", resolver)
        assert sorted(result.rows) == [(1,), (3,)]  # NULL cust not matched

    def test_row_ids_pass_through(self, resolver):
        result = run("SELECT id FROM orders WHERE amt > 5", resolver)
        assert set(result.row_ids) <= {f"b1:{i}" for i in range(5)}

    def test_select_without_from(self, resolver):
        result = run("SELECT 1 + 1", resolver)
        assert result.rows == [(2,)]


class TestJoins:
    def test_inner(self, resolver):
        result = run(
            "SELECT o.id, c.region FROM orders o JOIN customers c "
            "ON o.cust = c.name", resolver)
        assert sorted(result.rows) == [(1, "west"), (2, "east"), (3, "west")]

    def test_left_pads_unmatched(self, resolver):
        result = run(
            "SELECT o.id, c.region FROM orders o LEFT JOIN customers c "
            "ON o.cust = c.name", resolver)
        assert sorted(result.rows, key=repr) == sorted(
            [(1, "west"), (2, "east"), (3, "west"), (4, None), (5, None)],
            key=repr)

    def test_null_keys_never_match(self, resolver):
        result = run(
            "SELECT o.id FROM orders o JOIN customers c ON o.cust = c.name "
            "WHERE o.id = 5", resolver)
        assert result.rows == []

    def test_right_join(self, resolver):
        result = run(
            "SELECT c.name, o.id FROM orders o RIGHT JOIN customers c "
            "ON o.cust = c.name", resolver)
        names = [row[0] for row in result.rows]
        assert "c" in names  # unmatched right row padded

    def test_full_join(self, resolver):
        result = run(
            "SELECT o.id, c.name FROM orders o FULL JOIN customers c "
            "ON o.cust = c.name", resolver)
        assert (None, "c") in result.rows
        assert (4, None) in result.rows

    def test_cross_join(self, resolver):
        result = run("SELECT o.id, c.name FROM orders o, customers c",
                     resolver)
        assert len(result.rows) == 15

    def test_residual_predicate(self, resolver):
        result = run(
            "SELECT o.id FROM orders o JOIN customers c "
            "ON o.cust = c.name AND o.amt > 5", resolver)
        assert sorted(result.rows) == [(1,), (3,)]

    def test_non_equi_join(self, resolver):
        result = run(
            "SELECT o.id, c.name FROM orders o JOIN customers c "
            "ON o.amt < 5 AND c.region = 'east'", resolver)
        assert result.rows == [(2, "b")]

    def test_join_row_ids_unique(self, resolver):
        result = run(
            "SELECT o.id FROM orders o LEFT JOIN customers c "
            "ON o.cust = c.name", resolver)
        assert len(set(result.row_ids)) == len(result.row_ids)


class TestAggregation:
    def test_group_by(self, resolver):
        result = run(
            "SELECT cust, count(*) n, sum(amt) s FROM orders GROUP BY cust",
            resolver)
        as_map = {row[0]: row[1:] for row in result.rows}
        assert as_map["a"] == (2, 17)
        assert as_map[None] == (1, 5)  # NULLs form their own group

    def test_count_ignores_nulls(self, resolver):
        result = run("SELECT count(cust) FROM orders", resolver)
        assert result.rows == [(4,)]

    def test_scalar_aggregate_on_empty(self, resolver):
        result = run("SELECT count(*), sum(amt) FROM orders WHERE id > 99",
                     resolver)
        assert result.rows == [(0, None)]

    def test_count_distinct(self, resolver):
        result = run("SELECT count(DISTINCT cust) FROM orders", resolver)
        assert result.rows == [(3,)]

    def test_count_if(self, resolver):
        result = run("SELECT count_if(amt > 5) FROM orders", resolver)
        assert result.rows == [(3,)]

    def test_having(self, resolver):
        result = run(
            "SELECT cust, count(*) n FROM orders GROUP BY cust "
            "HAVING count(*) > 1", resolver)
        assert result.rows == [("a", 2)]

    def test_avg(self, resolver):
        result = run("SELECT avg(amt) FROM orders WHERE cust = 'a'", resolver)
        assert result.rows == [(8.5,)]

    def test_distinct(self, resolver):
        result = run("SELECT DISTINCT cust FROM orders", resolver)
        assert len(result.rows) == 4
        assert len(set(result.row_ids)) == 4


class TestWindowFunctions:
    def test_row_number(self, resolver):
        result = run(
            "SELECT id, row_number() over (partition by cust order by amt desc) rn "
            "FROM orders WHERE cust = 'a'", resolver)
        as_map = dict(result.rows)
        assert as_map == {1: 1, 3: 2}

    def test_running_sum(self, resolver):
        result = run(
            "SELECT id, sum(amt) over (partition by cust order by id) s "
            "FROM orders WHERE cust = 'a'", resolver)
        assert dict(result.rows) == {1: 10, 3: 17}

    def test_whole_partition_aggregate(self, resolver):
        result = run(
            "SELECT id, count(*) over (partition by cust) c FROM orders",
            resolver)
        as_map = dict(result.rows)
        assert as_map[1] == 2 and as_map[2] == 1

    def test_rank_with_ties(self, resolver):
        rel = Relation(ORDERS, [(1, "a", 5), (2, "a", 5), (3, "a", 7)],
                       ["r0", "r1", "r2"])
        result = evaluate(
            build_plan(parse_query(
                "SELECT id, rank() over (partition by cust order by amt) r,"
                " dense_rank() over (partition by cust order by amt) d"
                " FROM orders"), PROVIDER),
            DictResolver({"orders": rel}))
        ranks = {row[0]: (row[1], row[2]) for row in result.rows}
        assert ranks[3] == (3, 2)
        assert ranks[1][0] == 1 and ranks[2][0] == 1

    def test_lag_lead(self, resolver):
        result = run(
            "SELECT id, lag(amt) over (partition by cust order by id) l "
            "FROM orders WHERE cust = 'a'", resolver)
        assert dict(result.rows) == {1: None, 3: 10}

    def test_qualify(self, resolver):
        result = run(
            "SELECT id, row_number() over (partition by cust order by amt desc) rn "
            "FROM orders QUALIFY rn = 1", resolver)
        assert len(result.rows) == 4  # one winner per cust group


class TestFlattenUnionSortLimit:
    def test_flatten(self, resolver):
        result = run(
            "SELECT id, f.value v, f.index i FROM events, "
            "LATERAL FLATTEN(input => payload:tags) f", resolver)
        assert sorted(result.rows) == [(1, "x", 0), (1, "y", 1)]

    def test_flatten_drops_non_arrays(self, resolver):
        result = run(
            "SELECT id FROM events, LATERAL FLATTEN(input => payload:tags) f "
            "WHERE id > 1", resolver)
        assert result.rows == []

    def test_union_all_keeps_duplicates(self, resolver):
        result = run(
            "SELECT cust FROM orders UNION ALL SELECT cust FROM orders",
            resolver)
        assert len(result.rows) == 10
        assert len(set(result.row_ids)) == 10

    def test_order_by(self, resolver):
        result = run("SELECT id FROM orders ORDER BY amt DESC", resolver)
        assert [row[0] for row in result.rows][:2] == [1, 4]

    def test_order_by_nulls_last_asc(self, resolver):
        result = run("SELECT cust FROM orders ORDER BY cust", resolver)
        assert result.rows[-1] == (None,)

    def test_limit(self, resolver):
        result = run("SELECT id FROM orders ORDER BY id LIMIT 2", resolver)
        assert result.rows == [(1,), (2,)]


class TestDeterminism:
    def test_repeated_evaluation_identical(self, resolver):
        sql = ("SELECT cust, count(*) n FROM orders GROUP BY cust "
               "UNION ALL SELECT cust, amt FROM orders")
        first = run(sql, resolver)
        second = run(sql, resolver)
        assert first.rows == second.rows
        assert first.row_ids == second.row_ids


class _PartitionedResolver:
    """A resolver over pre-built micro-partitions, exposing the
    partition-granular reads (``scan_partitions``) that zone-map pruning
    and streaming use."""

    def __init__(self, tables):
        from repro.storage.partition import build_partitions

        self._partitions = {
            name: build_partitions(list(relation.pairs()), partition_rows)
            for name, (relation, partition_rows) in tables.items()}
        self._schemas = {name: relation.schema
                         for name, (relation, __) in tables.items()}

    def scan(self, table):
        relation = Relation(self._schemas[table])
        for partition in self._partitions[table]:
            for row_id, row in partition.rows:
                relation.append(row_id, row)
        return relation

    def scan_partitions(self, table):
        return iter(self._partitions[table])


class TestScanPruningStats:
    """EXPLAIN's pruning report: partitions scanned vs. skipped by zone
    maps on the columnar scan path."""

    def _resolver(self):
        orders = Relation(
            ORDERS,
            [(i, "c", i) for i in range(40)],  # amt 0..39, 10 per partition
            [f"b1:{i}" for i in range(40)])
        return _PartitionedResolver({"orders": (orders, 10)})

    def test_skipped_partitions_reported(self):
        from repro.engine.executor import scan_pruning_stats

        resolver = self._resolver()
        plan = build_plan(parse_query(
            "SELECT id FROM orders WHERE amt >= 30"), PROVIDER)
        stats = scan_pruning_stats(plan, resolver)
        assert stats == [("orders", 4, 1, 3)]

    def test_unprunable_predicate_scans_everything(self):
        from repro.engine.executor import scan_pruning_stats

        resolver = self._resolver()
        plan = build_plan(parse_query(
            "SELECT id FROM orders WHERE amt + 1 > 30"), PROVIDER)
        stats = scan_pruning_stats(plan, resolver)
        assert stats == [("orders", 4, 4, 0)]

    def test_resolver_without_partitions_reports_nothing(self, resolver):
        from repro.engine.executor import scan_pruning_stats

        plan = build_plan(parse_query(
            "SELECT id FROM orders WHERE amt > 5"), PROVIDER)
        assert scan_pruning_stats(plan, resolver) == []

    def test_pruned_scan_matches_full_scan(self):
        resolver = self._resolver()
        plan = build_plan(parse_query(
            "SELECT id FROM orders WHERE amt >= 30"), PROVIDER)
        result = evaluate(plan, resolver)
        assert [row[0] for row in result.rows] == list(range(30, 40))


class TestStreamingTopK:
    """ORDER BY ... LIMIT k streams through a bounded top-k heap and must
    reproduce the materialized sort-then-limit output exactly."""

    def _resolver(self, rows):
        orders = Relation(ORDERS, rows,
                          [f"b1:{i}" for i in range(len(rows))])
        return _PartitionedResolver({"orders": (orders, 3)})

    def _check(self, sql, rows):
        from repro.engine.executor import stream_evaluate

        resolver = self._resolver(rows)
        plan = build_plan(parse_query(sql), PROVIDER)
        materialized = evaluate(plan, resolver)
        batches = stream_evaluate(plan, resolver)
        assert batches is not None, "plan did not stream"
        streamed = [pair for batch in batches for pair in batch]
        assert streamed == list(materialized.pairs())

    def test_top_k_ascending(self):
        rows = [(i, "c", (i * 7) % 13) for i in range(20)]
        self._check("SELECT id, amt FROM orders ORDER BY amt LIMIT 5", rows)

    def test_top_k_descending_with_ties_and_nulls(self):
        rows = [(1, "a", 5), (2, "b", 5), (3, "c", None), (4, "d", 9),
                (5, "e", None), (6, "f", 5), (7, "g", 1)]
        self._check(
            "SELECT id FROM orders ORDER BY amt DESC LIMIT 4", rows)

    def test_top_k_larger_than_input(self):
        rows = [(1, "a", 3), (2, "b", 1)]
        self._check("SELECT id FROM orders ORDER BY amt LIMIT 10", rows)

    def test_top_k_zero(self):
        rows = [(1, "a", 3), (2, "b", 1)]
        self._check("SELECT id FROM orders ORDER BY amt LIMIT 0", rows)

    def test_top_k_with_filter_below(self):
        rows = [(i, "c", i % 7) for i in range(30)]
        self._check("SELECT id, amt FROM orders WHERE amt > 2 "
                    "ORDER BY amt, id LIMIT 6", rows)

    def test_unbounded_sort_still_materializes(self):
        from repro.engine.executor import stream_evaluate

        resolver = self._resolver([(1, "a", 3)])
        plan = build_plan(parse_query(
            "SELECT id FROM orders ORDER BY amt"), PROVIDER)
        assert stream_evaluate(plan, resolver) is None
