"""Edge-case tests for window evaluation: ties, peers, determinism.

The paper's window derivative requires that "ties in ORDER BY are broken
repeatably" — these tests pin that behaviour down.
"""

import random

from repro.engine.executor import evaluate
from repro.engine.relation import DictResolver, Relation
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.sql.parser import parse_query

ROWS = schema_of(("id", SqlType.INT), ("grp", SqlType.TEXT),
                 ("val", SqlType.INT), table="t")
PROVIDER = DictSchemaProvider({"t": ROWS})


def run(sql, rows, ids=None):
    relation = Relation(ROWS, rows,
                        ids or [f"r{i}" for i in range(len(rows))])
    plan = build_plan(parse_query(sql), PROVIDER)
    return evaluate(plan, DictResolver({"t": relation}))


class TestTieBreaking:
    def test_row_number_with_full_ties_is_deterministic(self):
        rows = [(1, "a", 5), (2, "a", 5), (3, "a", 5)]
        sql = ("SELECT id, row_number() over (partition by grp "
               "order by val) rn FROM t")
        first = dict(run(sql, rows).rows)
        # Shuffle the input order: the assignment must not change.
        shuffled = [rows[2], rows[0], rows[1]]
        ids = ["r2", "r0", "r1"]
        second = dict(run(sql, shuffled, ids).rows)
        assert first == second

    def test_peers_share_cumulative_frames(self):
        rows = [(1, "a", 5), (2, "a", 5), (3, "a", 7)]
        sql = ("SELECT id, sum(val) over (partition by grp order by val) s "
               "FROM t")
        result = dict(run(sql, rows).rows)
        # RANGE frame: the two val=5 peers both see sum 10.
        assert result[1] == 10 and result[2] == 10
        assert result[3] == 17

    def test_rank_gaps_and_dense_rank(self):
        rows = [(1, "a", 5), (2, "a", 5), (3, "a", 7), (4, "a", 9)]
        sql = ("SELECT id, rank() over (partition by grp order by val) r, "
               "dense_rank() over (partition by grp order by val) d FROM t")
        result = {row[0]: row[1:] for row in run(sql, rows).rows}
        assert result[3] == (3, 2)
        assert result[4] == (4, 3)


class TestNullsAndEmpty:
    def test_null_order_keys(self):
        rows = [(1, "a", None), (2, "a", 5)]
        sql = ("SELECT id, row_number() over (partition by grp "
               "order by val) rn FROM t")
        result = dict(run(sql, rows).rows)
        # NULLS LAST ascending: the non-null row ranks first.
        assert result[2] == 1
        assert result[1] == 2

    def test_null_partition_key_forms_own_partition(self):
        rows = [(1, None, 5), (2, None, 6), (3, "a", 7)]
        sql = "SELECT id, count(*) over (partition by grp) c FROM t"
        result = dict(run(sql, rows).rows)
        assert result[1] == 2 and result[3] == 1

    def test_empty_input(self):
        sql = ("SELECT id, row_number() over (partition by grp "
               "order by val) rn FROM t")
        assert run(sql, []).rows == []

    def test_lead_at_partition_end_is_null(self):
        rows = [(1, "a", 5), (2, "a", 6)]
        sql = ("SELECT id, lead(val) over (partition by grp order by id) x "
               "FROM t")
        result = dict(run(sql, rows).rows)
        assert result[1] == 6 and result[2] is None

    def test_first_and_last_value(self):
        rows = [(1, "a", 5), (2, "a", 9), (3, "a", 1)]
        sql = ("SELECT id, first_value(val) over (partition by grp "
               "order by val) f, last_value(val) over (partition by grp "
               "order by val) l FROM t")
        result = {row[0]: row[1:] for row in run(sql, rows).rows}
        assert all(values == (1, 9) for values in result.values())


class TestDeterminismUnderShuffle:
    def test_any_window_stable_under_input_permutation(self):
        rng = random.Random(5)
        rows = [(i, f"g{i % 3}", rng.randint(0, 4)) for i in range(12)]
        ids = [f"r{i}" for i in range(12)]
        sql = ("SELECT id, row_number() over (partition by grp order by "
               "val desc) rn, sum(val) over (partition by grp order by "
               "val, id) s FROM t")
        baseline = sorted(run(sql, rows, ids).rows)
        for __ in range(5):
            order = list(range(12))
            rng.shuffle(order)
            shuffled_rows = [rows[i] for i in order]
            shuffled_ids = [ids[i] for i in order]
            assert sorted(run(sql, shuffled_rows, shuffled_ids).rows) == \
                   baseline
