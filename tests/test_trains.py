"""Tests for the Listing 1 train-delay pipeline."""

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.util.timeutil import MINUTE
from repro.workload.trains import TrainWorkload


@pytest.fixture
def setup():
    db = Database()
    workload = TrainWorkload()
    workload.setup(db)
    return db, workload


class TestPipeline:
    def test_initialized_empty(self, setup):
        db, __ = setup
        assert db.query("SELECT * FROM train_arrivals").rows == []
        assert db.query("SELECT * FROM delayed_trains").rows == []

    def test_counts_late_arrivals_exactly(self, setup):
        db, workload = setup
        late = workload.emit_arrivals(db, 40, late_fraction=0.4)
        db.refresh_dynamic_table("delayed_trains")
        total = sum(row[2] for row in
                    db.query("SELECT * FROM delayed_trains").rows)
        assert total == late

    def test_non_arrival_events_filtered(self, setup):
        db, workload = setup
        workload.emit_arrivals(db, 20)
        db.refresh_dynamic_table("train_arrivals")
        arrivals = db.query("SELECT count(*) FROM train_arrivals").rows[0][0]
        all_events = db.query("SELECT count(*) FROM train_events").rows[0][0]
        typed = db.query(
            "SELECT count(*) FROM train_events WHERE type = 'ARRIVAL'"
        ).rows[0][0]
        assert arrivals == typed <= all_events

    def test_incremental_refreshes_after_initial(self, setup):
        db, workload = setup
        workload.emit_arrivals(db, 10)
        db.refresh_dynamic_table("delayed_trains")
        workload.emit_arrivals(db, 10)
        db.refresh_dynamic_table("delayed_trains")
        arrivals = db.dynamic_table("train_arrivals")
        delayed = db.dynamic_table("delayed_trains")
        assert arrivals.refresh_history[-1].action == RefreshAction.INCREMENTAL
        assert delayed.refresh_history[-1].action == RefreshAction.INCREMENTAL

    def test_downstream_lag_resolution(self, setup):
        db, __ = setup
        from repro.core.graph import DependencyGraph

        graph = DependencyGraph(db.catalog)
        assert graph.effective_lag("train_arrivals") == MINUTE

    def test_dvs_through_scheduled_operation(self, setup):
        db, workload = setup
        for step in range(6):
            db.at((step + 1) * MINUTE,
                  lambda: workload.emit_arrivals(db, 5))
        db.run_for(8 * MINUTE)
        assert db.check_dvs("train_arrivals")
        assert db.check_dvs("delayed_trains")

    def test_hour_bucketing(self, setup):
        db, workload = setup
        workload.emit_arrivals(db, 30)
        db.refresh_dynamic_table("delayed_trains")
        hour_ns = 3_600_000_000_000
        for row in db.query("SELECT * FROM delayed_trains").rows:
            assert row[1] % hour_ns == 0  # date_trunc(hour, ...) applied
