"""Transaction semantics: the session-level BEGIN/COMMIT/ROLLBACK surface.

Covers the contract promised by the API redesign:

* read-your-writes — reads inside a transaction see its snapshot plus
  its own staged inserts/updates/deletes;
* isolation — nothing is visible to other sessions until COMMIT, and
  ROLLBACK leaves no trace;
* poisoning — an execution error mid-transaction blocks every statement
  until ROLLBACK (or ROLLBACK TO a savepoint);
* savepoints — checkpoint/restore of the staged-write state;
* AS-OF reads inside an open transaction stay historical;
* first-committer-wins conflicts between sessions;
* DB-API autocommit semantics on sessions and cursors.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.errors import (BindParameterError, EvaluationError, LockConflict,
                          TransactionError, UserError)
from repro.util.timeutil import MINUTE, SECOND


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE t (a int, b text)")
    database.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    return database


# ---------------------------------------------------------------------------
# Read-your-writes
# ---------------------------------------------------------------------------

class TestReadYourWrites:
    def test_insert_visible_inside_transaction(self, db):
        session = db.session()
        session.begin()
        session.execute("INSERT INTO t VALUES (4, 'w')")
        assert sorted(session.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,), (4,)]
        session.commit()

    def test_update_and_delete_visible_inside_transaction(self, db):
        session = db.session()
        session.begin()
        session.execute("UPDATE t SET b = 'X' WHERE a = 1")
        session.execute("DELETE FROM t WHERE a = 2")
        assert sorted(session.query("SELECT a, b FROM t").rows) == \
            [(1, "X"), (3, "z")]
        session.commit()
        assert sorted(db.query("SELECT a, b FROM t").rows) == \
            [(1, "X"), (3, "z")]

    def test_dml_sees_earlier_statements(self, db):
        # UPDATE matches a row INSERTed earlier in the same transaction.
        session = db.session()
        session.begin()
        session.execute("INSERT INTO t VALUES (4, 'w')")
        assert session.execute("UPDATE t SET b = 'W' WHERE a = 4") is None
        session.execute("DELETE FROM t WHERE a = 1")
        session.commit()
        assert sorted(db.query("SELECT a, b FROM t").rows) == \
            [(2, "y"), (3, "z"), (4, "W")]

    def test_delete_of_own_insert_unstages_it(self, db):
        session = db.session()
        session.begin()
        session.execute("INSERT INTO t VALUES (4, 'w'), (5, 'v')")
        session.execute("DELETE FROM t WHERE a = 4")
        assert sorted(session.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,), (5,)]
        session.commit()
        assert sorted(db.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,), (5,)]

    def test_update_then_delete_same_row(self, db):
        session = db.session()
        session.begin()
        session.execute("UPDATE t SET b = 'X' WHERE a = 1")
        session.execute("DELETE FROM t WHERE a = 1")
        session.commit()
        assert sorted(db.query("SELECT a FROM t").rows) == [(2,), (3,)]

    def test_cursor_streams_overlay_inside_transaction(self, db):
        # The cursor's streamed rows match scan() exactly: base rows with
        # deletes/updates applied, then the staged inserts.
        session = db.session()
        session.begin()
        session.execute("INSERT INTO t VALUES (4, 'w')")
        session.execute("UPDATE t SET b = 'X' WHERE a = 1")
        session.execute("DELETE FROM t WHERE a = 2")
        cursor = session.cursor()
        cursor.execute("SELECT a, b FROM t")
        assert cursor.fetchall() == [(1, "X"), (3, "z"), (4, "w")]
        # ... and a concurrent statement staging more writes does not
        # leak into an already-open stream.
        cursor.execute("SELECT a FROM t")
        session.execute("DELETE FROM t WHERE a = 3")
        assert sorted(cursor.fetchall()) == [(1,), (3,), (4,)]
        session.rollback()

    def test_bulk_delete_of_own_inserts(self, db):
        # Deleting many provisional rows at once unstages them wholesale.
        session = db.session()
        session.begin()
        loader = session.prepare("INSERT INTO t VALUES (?, ?)")
        loader.executemany([(100 + i, "bulk") for i in range(500)])
        assert session.execute("DELETE FROM t WHERE b = ?",
                               ("bulk",)) is None
        assert session.query("SELECT count(*) c FROM t").rows == [(3,)]
        session.commit()
        assert db.query("SELECT count(*) c FROM t").rows == [(3,)]

    def test_insert_select_reads_staged_rows(self, db):
        session = db.session()
        session.begin()
        session.execute("INSERT INTO t VALUES (10, 'n')")
        session.execute(
            "INSERT INTO t SELECT a + 100, b FROM t WHERE a >= 10")
        assert sorted(session.query(
            "SELECT a FROM t WHERE a >= 10").rows) == [(10,), (110,)]
        session.commit()


# ---------------------------------------------------------------------------
# Isolation and rollback
# ---------------------------------------------------------------------------

class TestIsolation:
    def test_invisible_to_other_sessions_until_commit(self, db):
        writer, reader = db.session(), db.session()
        writer.begin()
        writer.execute("INSERT INTO t VALUES (4, 'w')")
        writer.execute("DELETE FROM t WHERE a = 1")
        assert sorted(reader.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,)]
        writer.commit()
        assert sorted(reader.query("SELECT a FROM t").rows) == \
            [(2,), (3,), (4,)]

    def test_rollback_leaves_no_trace(self, db):
        table = db.catalog.versioned_table("t")
        versions_before = table.version_count
        session = db.session()
        session.begin()
        session.execute("INSERT INTO t VALUES (4, 'w')")
        session.execute("UPDATE t SET b = 'gone'")
        session.execute("DELETE FROM t WHERE a = 1")
        session.rollback()
        assert sorted(db.query("SELECT a, b FROM t").rows) == \
            [(1, "x"), (2, "y"), (3, "z")]
        assert table.version_count == versions_before  # no new version
        assert not session.in_transaction

    def test_commit_is_one_version(self, db):
        table = db.catalog.versioned_table("t")
        versions_before = table.version_count
        session = db.session()
        with session.transaction():
            session.execute("INSERT INTO t VALUES (4, 'w')")
            session.execute("INSERT INTO t VALUES (5, 'v')")
            session.execute("DELETE FROM t WHERE a = 1")
        assert table.version_count == versions_before + 1

    def test_transaction_context_manager_rolls_back_on_error(self, db):
        session = db.session()
        with pytest.raises(EvaluationError):
            with session.transaction():
                session.execute("INSERT INTO t VALUES (4, 'w')")
                session.execute("SELECT 1/0 FROM t")
        assert not session.in_transaction
        assert sorted(db.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,)]

    def test_snapshot_ignores_later_commits(self, db):
        reader, writer = db.session(), db.session()
        reader.begin()
        assert sorted(reader.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,)]
        writer.execute("INSERT INTO t VALUES (4, 'w')")
        # Same simulated instant — the HLC snapshot still excludes it.
        assert sorted(reader.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,)]
        reader.commit()
        assert sorted(reader.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,), (4,)]

    def test_blind_appends_do_not_conflict(self, db):
        # Insert-only transactions cannot lose anyone's update, so two
        # sessions appending to one table both commit.
        first, second = db.session(), db.session()
        first.begin()
        first.execute("INSERT INTO t VALUES (4, 'w')")
        second.execute("INSERT INTO t VALUES (5, 'v')")  # autocommit
        first.commit()
        assert sorted(db.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,), (4,), (5,)]

    def test_first_committer_wins(self, db):
        first, second = db.session(), db.session()
        first.begin()
        first.execute("UPDATE t SET b = 'first' WHERE a = 1")
        second.begin()
        second.execute("UPDATE t SET b = 'second' WHERE a = 1")
        second.commit()
        with pytest.raises(LockConflict, match="write-write conflict"):
            first.commit()
        # The failed commit auto-rolled-back: session immediately usable.
        assert not first.in_transaction
        assert db.query("SELECT b FROM t WHERE a = 1").rows == [("second",)]
        first.execute("UPDATE t SET b = 'retried' WHERE a = 1")
        assert db.query("SELECT b FROM t WHERE a = 1").rows == [("retried",)]


# ---------------------------------------------------------------------------
# Poisoning
# ---------------------------------------------------------------------------

class TestPoisonedTransaction:
    def test_error_poisons_until_rollback(self, db):
        session = db.session()
        session.begin()
        session.execute("INSERT INTO t VALUES (4, 'w')")
        with pytest.raises(EvaluationError):
            session.execute("SELECT 1/0 FROM t")
        with pytest.raises(TransactionError, match="aborted"):
            session.query("SELECT a FROM t")
        with pytest.raises(TransactionError, match="cannot COMMIT"):
            session.commit()
        session.rollback()
        # Fully recovered, and the staged insert is gone.
        assert sorted(session.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,)]

    def test_sql_rollback_clears_poison(self, db):
        session = db.session()
        session.execute("BEGIN")
        with pytest.raises(EvaluationError):
            session.execute("SELECT 1/0 FROM t")
        session.execute("ROLLBACK")
        assert session.query("SELECT count(*) c FROM t").rows == [(3,)]

    def test_rollback_to_savepoint_unpoisons(self, db):
        session = db.session()
        session.begin()
        session.execute("INSERT INTO t VALUES (4, 'w')")
        session.savepoint("sp")
        with pytest.raises(EvaluationError):
            session.execute("SELECT 1/0 FROM t")
        session.rollback_to("sp")
        # Transaction is alive again, earlier work intact.
        assert sorted(session.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,), (4,)]
        session.commit()
        assert sorted(db.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,), (4,)]

    def test_fetch_time_error_poisons(self, db):
        # Cursors stream inside transactions too, so a lazy evaluation
        # error surfaces at fetch time — and still poisons.
        session = db.session()
        cursor = session.cursor()
        session.begin()
        cursor.execute("SELECT 1 / (a - 2) FROM t")
        with pytest.raises(EvaluationError):
            cursor.fetchall()
        with pytest.raises(TransactionError, match="aborted"):
            session.query("SELECT a FROM t")
        session.rollback()

    def test_bad_bind_does_not_poison(self, db):
        # Bind validation fails before the statement reaches the engine;
        # the transaction stays healthy (same contract on every entry
        # point: execute, prepared execution, cursor execute).
        session = db.session()
        session.begin()
        prepared = session.prepare("SELECT a FROM t WHERE a > ?")
        with pytest.raises(BindParameterError):
            prepared.execute((object(),))
        with pytest.raises(BindParameterError):
            session.cursor().execute("SELECT a FROM t WHERE a > ?",
                                     (object(),))
        assert session.query("SELECT count(*) c FROM t").rows == [(3,)]
        session.commit()


# ---------------------------------------------------------------------------
# Savepoints
# ---------------------------------------------------------------------------

class TestSavepoints:
    def test_savepoint_restores_staged_state(self, db):
        session = db.session()
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (4, 'w')")
        session.execute("SAVEPOINT before_mess")
        session.execute("DELETE FROM t")
        assert session.query("SELECT count(*) c FROM t").rows == [(0,)]
        session.execute("ROLLBACK TO before_mess")
        assert sorted(session.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,), (4,)]
        session.execute("COMMIT")
        assert sorted(db.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,), (4,)]

    def test_rollback_to_discards_later_savepoints(self, db):
        session = db.session()
        session.begin()
        session.savepoint("a")
        session.execute("INSERT INTO t VALUES (4, 'w')")
        session.savepoint("b")
        session.execute("INSERT INTO t VALUES (5, 'v')")
        session.rollback_to("a")
        with pytest.raises(TransactionError, match="no such savepoint"):
            session.rollback_to("b")
        # "a" itself survives and can be restored again.
        session.execute("INSERT INTO t VALUES (6, 'u')")
        session.rollback_to("a")
        session.commit()
        assert sorted(db.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,)]

    def test_savepoint_requires_transaction(self, db):
        session = db.session()
        with pytest.raises(TransactionError, match="SAVEPOINT requires"):
            session.savepoint("sp")
        with pytest.raises(TransactionError, match="ROLLBACK TO requires"):
            session.rollback_to("sp")

    def test_rollback_to_savepoint_sql_with_keyword(self, db):
        session = db.session()
        session.execute("BEGIN TRANSACTION")
        session.execute("SAVEPOINT sp")
        session.execute("DELETE FROM t")
        session.execute("ROLLBACK TO SAVEPOINT sp")
        assert session.query("SELECT count(*) c FROM t").rows == [(3,)]
        session.execute("ROLLBACK WORK")
        assert not session.in_transaction

    def test_transaction_and_work_stay_valid_identifiers(self, db):
        # The BEGIN/COMMIT noise words are matched contextually, not
        # reserved: schemas using them as names keep parsing.
        db.execute("CREATE TABLE work (transaction int)")
        db.execute("INSERT INTO work VALUES (1)")
        assert db.query("SELECT transaction FROM work").rows == [(1,)]


# ---------------------------------------------------------------------------
# AS-OF reads inside a transaction
# ---------------------------------------------------------------------------

class TestAsOfInsideTransaction:
    def test_as_of_reads_are_historical(self, db):
        before = db.now
        db.clock.advance(MINUTE)
        db.execute("INSERT INTO t VALUES (4, 'w')")
        session = db.session()
        session.begin()
        session.execute("INSERT INTO t VALUES (5, 'v')")
        # In-transaction read: snapshot + staged writes.
        assert sorted(session.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,), (4,), (5,)]
        # AS-OF session state bypasses the transaction entirely.
        with session.as_of(before):
            assert sorted(session.query("SELECT a FROM t").rows) == \
                [(1,), (2,), (3,)]
        # query_at does too.
        assert sorted(session.query_at("SELECT a FROM t", before).rows) == \
            [(1,), (2,), (3,)]
        session.commit()

    def test_dynamic_table_readable_inside_transaction(self, db):
        db.execute("""
            CREATE DYNAMIC TABLE totals TARGET_LAG = '1 minute'
            WAREHOUSE = wh AS SELECT count(*) c FROM t
        """)
        session = db.session()
        session.begin()
        assert session.query("SELECT c FROM totals").rows == [(3,)]
        session.commit()


# ---------------------------------------------------------------------------
# Autocommit / DB-API surface
# ---------------------------------------------------------------------------

class TestAutocommit:
    def test_begin_twice_rejected(self, db):
        session = db.session()
        session.begin()
        with pytest.raises(TransactionError, match="already in progress"):
            session.begin()
        with pytest.raises(TransactionError, match="already in progress"):
            session.execute("BEGIN")
        session.rollback()

    def test_commit_and_rollback_without_transaction_are_noops(self, db):
        session = db.session()
        session.commit()
        session.rollback()
        cursor = session.cursor()
        cursor.commit()
        cursor.rollback()

    def test_autocommit_off_opens_implicit_transaction(self, db):
        session, other = db.session(), db.session()
        session.autocommit = False
        session.execute("INSERT INTO t VALUES (4, 'w')")
        assert session.in_transaction
        assert sorted(other.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,)]
        session.commit()
        assert sorted(other.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,), (4,)]
        # The next statement opens a fresh implicit transaction.
        session.execute("DELETE FROM t WHERE a = 4")
        assert session.in_transaction
        session.rollback()
        assert sorted(other.query("SELECT a FROM t").rows) == \
            [(1,), (2,), (3,), (4,)]

    def test_cursor_autocommit_and_commit(self, db):
        cursor = db.session().cursor()
        assert cursor.autocommit is True
        cursor.autocommit = False
        cursor.execute("INSERT INTO t VALUES (4, 'w')")
        assert db.query("SELECT count(*) c FROM t").rows == [(3,)]
        cursor.commit()
        assert db.query("SELECT count(*) c FROM t").rows == [(4,)]

    def test_enabling_autocommit_with_open_transaction_rejected(self, db):
        session = db.session()
        session.autocommit = False
        session.execute("INSERT INTO t VALUES (4, 'w')")
        with pytest.raises(TransactionError, match="cannot enable"):
            session.autocommit = True
        session.rollback()
        session.autocommit = True

    def test_execute_script_with_transaction_brackets(self, db):
        session = db.session()
        session.execute_script("""
            BEGIN;
            INSERT INTO t VALUES (4, 'w');
            UPDATE t SET b = 'W' WHERE a = 4;
            COMMIT;
        """)
        assert db.query("SELECT b FROM t WHERE a = 4").rows == [("W",)]

    def test_cursor_drives_transactions_textually(self, db):
        cursor = db.session().cursor()
        cursor.execute("BEGIN")
        cursor.execute("INSERT INTO t VALUES (4, 'w')")
        cursor.execute("ROLLBACK")
        assert db.query("SELECT count(*) c FROM t").rows == [(3,)]


# ---------------------------------------------------------------------------
# executemany atomicity (regression: mid-batch error must not half-commit)
# ---------------------------------------------------------------------------

class TestExecutemanyAtomicity:
    def test_mid_batch_bind_error_rolls_back_insert(self, db):
        table = db.catalog.versioned_table("t")
        versions_before = table.version_count
        cursor = db.cursor()
        with pytest.raises(BindParameterError):
            cursor.executemany(
                "INSERT INTO t VALUES (?, ?)",
                [(10, "a"), (11,), (12, "c")])  # arity error mid-batch
        assert table.version_count == versions_before
        assert db.query("SELECT count(*) c FROM t").rows == [(3,)]

    def test_mid_batch_error_rolls_back_non_insert(self, db):
        # The generic executemany path (UPDATE per bind set) is also one
        # transaction: an error on the second bind set undoes the first.
        table = db.catalog.versioned_table("t")
        versions_before = table.version_count
        cursor = db.cursor()
        with pytest.raises(BindParameterError):
            cursor.executemany(
                "UPDATE t SET b = ? WHERE a = ?",
                [("X", 1), ("Y", "not-an-int")])
        assert table.version_count == versions_before
        assert db.query("SELECT b FROM t WHERE a = 1").rows == [("x",)]

    def test_executemany_inside_transaction_stages_only(self, db):
        session = db.session()
        session.begin()
        loader = session.prepare("INSERT INTO t VALUES (?, ?)")
        assert loader.executemany([(10, "a"), (11, "b")]) == 2
        assert db.query("SELECT count(*) c FROM t").rows == [(3,)]
        session.rollback()
        assert db.query("SELECT count(*) c FROM t").rows == [(3,)]


# ---------------------------------------------------------------------------
# Interaction with dynamic tables and streams
# ---------------------------------------------------------------------------

class TestTransactionsAndRefresh:
    def test_committed_transaction_feeds_refresh(self, db):
        db.execute("""
            CREATE DYNAMIC TABLE totals TARGET_LAG = '1 minute'
            WAREHOUSE = wh AS SELECT count(*) c FROM t
        """)
        session = db.session()
        with session.transaction():
            session.execute("INSERT INTO t VALUES (4, 'w')")
            session.execute("INSERT INTO t VALUES (5, 'v')")
        db.refresh_dynamic_table("totals")
        assert db.query("SELECT c FROM totals").rows == [(5,)]
        assert db.check_dvs("totals")

    def test_rolled_back_transaction_never_reaches_refresh(self, db):
        db.execute("""
            CREATE DYNAMIC TABLE totals TARGET_LAG = '1 minute'
            WAREHOUSE = wh AS SELECT count(*) c FROM t
        """)
        session = db.session()
        session.begin()
        session.execute("DELETE FROM t")
        session.rollback()
        db.clock.advance(SECOND)
        db.refresh_dynamic_table("totals")
        assert db.query("SELECT c FROM totals").rows == [(3,)]
