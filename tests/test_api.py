"""Tests for the Database facade: SQL surface end to end."""

import pytest

from repro import Database
from repro.errors import (CatalogError, EntityDropped, EntityNotFound,
                          NotInitializedError, UserError)
from repro.util.timeutil import MINUTE


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    return database


class TestDml:
    def test_create_insert_select(self, db):
        db.execute("CREATE TABLE t (a int, b text)")
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        result = db.query("SELECT b FROM t WHERE a = 2")
        assert result.rows == [("y",)]
        assert result.columns == ["b"]

    def test_insert_with_columns_fills_nulls(self, db):
        db.execute("CREATE TABLE t (a int, b text, c int)")
        db.execute("INSERT INTO t (c, a) VALUES (30, 1)")
        assert db.query("SELECT * FROM t").rows == [(1, None, 30)]

    def test_insert_coerces_types(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES ('42')")
        assert db.query("SELECT * FROM t").rows == [(42,)]

    def test_insert_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (a int, b int)")
        with pytest.raises(UserError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_insert_from_select(self, db):
        db.execute("CREATE TABLE s (a int)")
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO s VALUES (1), (2)")
        db.execute("INSERT INTO t SELECT a * 10 FROM s")
        assert sorted(db.query("SELECT * FROM t").rows) == [(10,), (20,)]

    def test_delete_with_predicate(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("DELETE FROM t WHERE a > 1")
        assert db.query("SELECT * FROM t").rows == [(1,)]

    def test_delete_all(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("DELETE FROM t")
        assert db.query("SELECT * FROM t").rows == []

    def test_update(self, db):
        db.execute("CREATE TABLE t (a int, b int)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        db.execute("UPDATE t SET b = b + 1 WHERE a = 2")
        assert sorted(db.query("SELECT * FROM t").rows) == [(1, 10), (2, 21)]

    def test_update_preserves_row_identity(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1)")
        before = db.query("SELECT * FROM t").row_ids
        db.execute("UPDATE t SET a = 9")
        after = db.query("SELECT * FROM t").row_ids
        assert before == after

    def test_execute_script(self, db):
        results = db.execute_script(
            "CREATE TABLE t (a int); INSERT INTO t VALUES (7); "
            "SELECT a FROM t")
        assert results[-1].rows == [(7,)]


class TestViewsAndTimeTravel:
    def test_view(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1), (5)")
        db.execute("CREATE VIEW big AS SELECT a FROM t WHERE a > 2")
        assert db.query("SELECT * FROM big").rows == [(5,)]

    def test_query_at_time_travel(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1)")
        past = db.now
        db.clock.advance(MINUTE)
        db.execute("INSERT INTO t VALUES (2)")
        assert db.query_at("SELECT * FROM t", past).rows == [(1,)]
        assert len(db.query("SELECT * FROM t").rows) == 2

    def test_drop_undrop_roundtrip(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("DROP TABLE t")
        with pytest.raises(EntityDropped):
            db.query("SELECT * FROM t")
        db.execute("UNDROP TABLE t")
        assert db.query("SELECT * FROM t").rows == [(1,)]


class TestDynamicTableSurface:
    def test_sql_create_dynamic_table(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
                   "WAREHOUSE = wh AS SELECT a FROM t")
        assert db.query("SELECT * FROM d").rows == [(1,)]

    def test_unknown_warehouse_rejected(self, db):
        db.execute("CREATE TABLE t (a int)")
        with pytest.raises(CatalogError):
            db.execute("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
                       "WAREHOUSE = ghost AS SELECT a FROM t")

    def test_suspend_resume_via_sql(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
                   "WAREHOUSE = wh AS SELECT a FROM t")
        db.execute("ALTER DYNAMIC TABLE d SUSPEND")
        assert db.dynamic_table("d").suspended
        db.execute("ALTER DYNAMIC TABLE d RESUME")
        assert not db.dynamic_table("d").suspended

    def test_manual_refresh_via_sql(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
                   "WAREHOUSE = wh AS SELECT a FROM t")
        db.execute("INSERT INTO t VALUES (3)")
        db.execute("ALTER DYNAMIC TABLE d REFRESH")
        assert db.query("SELECT * FROM d").rows == [(3,)]

    def test_dynamic_table_accessor(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
                   "WAREHOUSE = wh AS SELECT a FROM t")
        assert db.dynamic_table("d").name == "d"
        assert [dt.name for dt in db.dynamic_tables()] == ["d"]
        with pytest.raises(CatalogError):
            db.dynamic_table("t")

    def test_drop_dynamic_table(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
                   "WAREHOUSE = wh AS SELECT a FROM t")
        db.execute("DROP DYNAMIC TABLE d")
        with pytest.raises(EntityNotFound):
            db.query("SELECT * FROM d")

    def test_recluster_is_invisible_to_dts(self, db):
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
                   "WAREHOUSE = wh AS SELECT a FROM t")
        dt = db.dynamic_table("d")
        db.execute("ALTER TABLE t RECLUSTER")
        db.execute("ALTER DYNAMIC TABLE d REFRESH")
        # Reclustering changed no logical data: NO_DATA... actually the
        # version moved, so the refresh runs incrementally but produces
        # zero changes.
        record = dt.refresh_history[-1]
        assert record.rows_changed == 0
        assert db.check_dvs("d")

    def test_variant_pipeline(self, db):
        db.execute("CREATE TABLE raw (id int, doc variant)")
        db.execute("INSERT INTO raw VALUES "
                   "(1, cast('{\"k\": \"a\", \"n\": 3}' as variant))")
        db.execute("CREATE DYNAMIC TABLE flat TARGET_LAG = '1 minute' "
                   "WAREHOUSE = wh AS SELECT id, doc:k::text k, "
                   "doc:n::int n FROM raw")
        assert db.query("SELECT * FROM flat").rows == [(1, "a", 3)]


class TestQueryResult:
    def test_to_dicts(self, db):
        db.execute("CREATE TABLE t (a int, b text)")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        assert db.query("SELECT * FROM t").to_dicts() == [
            {"a": 1, "b": "x"}]

    def test_query_requires_rows(self, db):
        with pytest.raises(UserError):
            db.query("CREATE TABLE t (a int)")
