"""The chaos property test (the fault subsystem's capstone): a multi-DT
workload runs under a *seeded random fault schedule*, the faults are then
cleared, every DT is resumed and refreshed — and the result must converge
to exactly what a fault-free twin run of the same workload produces.

Convergence is asserted on query *values* (sorted result rows per DT)
plus the delta-vs-recompute invariant (``check_dvs``), not on internal
row ids: a DT that lost a tick to a fault catches up with one wider
incremental delta, which legitimately allocates different row ids for
the same logical rows.

Faults are match-restricted to DT activity (refresh execution, DT table
applies, DT refresh commits) so the base-table DML stream is identical
in both runs; the scheduler stays serial so the nth-hit counters see a
deterministic arrival order and the whole run replays exactly from its
seed.
"""

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.faults import FaultSchedule, registry
from repro.scheduler.periods import BASE_PERIOD
from repro.util.timeutil import SECOND

DT_NAMES = ("agg", "filt", "top")

#: Refresh-path injection points a serial scheduled run drives.
CHAOS_POINTS = ("refresh.execute", "storage.apply", "txn.commit")


@pytest.fixture(autouse=True)
def clean_registry():
    registry().clear()
    yield
    registry().clear()


def dt_activity(detail: dict) -> bool:
    """Restrict faults to DT refresh work, never base-table DML — the
    source data stream must be identical with and without faults."""
    if "dt" in detail:
        return detail["dt"] in DT_NAMES
    if "table" in detail:
        return detail["table"] in DT_NAMES
    if "tables" in detail:
        return bool(set(DT_NAMES) & set(detail["tables"]))
    return False


def build_workload() -> Database:
    db = Database()
    db.create_warehouse("wh")
    db.execute("CREATE TABLE src (id int, grp text, val int)")
    db.execute("INSERT INTO src VALUES (1, 'a', 10), (2, 'b', 20)")
    options = {"retries": 1, "backoff": "1 second", "error_threshold": 2}
    db.create_dynamic_table(
        "agg", "SELECT grp, sum(val) s FROM src GROUP BY grp",
        "1 minute", "wh", options=options)
    db.create_dynamic_table(
        "filt", "SELECT id, val FROM src WHERE val > 15",
        "1 minute", "wh", options=options)
    # A DT over a DT: upstream failures must propagate as skips, and
    # convergence must still hold through the chain.
    db.create_dynamic_table(
        "top", "SELECT grp, s FROM agg WHERE s > 20",
        "1 minute", "wh", options=options)
    step = BASE_PERIOD // 2
    dml = [
        "INSERT INTO src VALUES (3, 'a', 30)",
        "INSERT INTO src VALUES (4, 'c', 5)",
        "DELETE FROM src WHERE id = 2",
        "INSERT INTO src VALUES (5, 'b', 25), (6, 'a', 1)",
        "INSERT INTO src VALUES (7, 'c', 40)",
        "DELETE FROM src WHERE val > 35",
        "INSERT INTO src VALUES (8, 'b', 8)",
    ]
    for index, statement in enumerate(dml):
        db.at((index + 1) * step + SECOND,
              lambda s=statement: db.execute(s))
    return db


def run_workload(seed, faulty: bool):
    """One full run; returns (per-DT sorted values, faults fired)."""
    db = build_workload()
    rules = []
    if faulty:
        schedule = FaultSchedule.random(seed, CHAOS_POINTS, count=6,
                                        max_hit=8)
        rules = schedule.install(registry(), match=dt_activity)
    db.run_for(8 * BASE_PERIOD)
    fired = sum(rule.fired for rule in rules)
    # End of the chaos window: clear the faults, resume everything (a
    # resume of a non-suspended DT is a no-op, so both runs make the
    # identical call sequence), and refresh every DT to convergence.
    registry().clear()
    for name in DT_NAMES:
        db.dynamic_table(name).resume()
    for name in DT_NAMES:
        db.refresh_dynamic_table(name)
    state = {name: sorted(db.query(f"SELECT * FROM {name}").rows)
             for name in DT_NAMES}
    for name in DT_NAMES:
        assert db.check_dvs(name), (
            f"{name} diverged from a full recompute (seed={seed}, "
            f"faulty={faulty})")
    return state, fired, db


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_chaos_run_converges_to_fault_free_run(seed):
    clean_state, __, clean_db = run_workload(seed, faulty=False)
    chaos_state, fired, chaos_db = run_workload(seed, faulty=True)
    assert fired > 0, "the schedule injected nothing — widen it"
    assert chaos_state == clean_state
    # The chaos run really was chaotic: at least one refresh attempt
    # failed or was skipped over an upstream failure along the way.
    disturbed = []
    for name in DT_NAMES:
        for record in chaos_db.dynamic_table(name).refresh_history:
            if (record.error is not None
                    or record.action == RefreshAction.SKIPPED_UPSTREAM_FAILED
                    or record.retries):
                disturbed.append((name, record))
    assert disturbed


def test_chaos_replay_is_exact():
    """The same seed produces byte-for-byte the same chaos run: same
    rules fired, same refresh outcome sequence, same final state."""
    def trace(db):
        return {name: [(r.data_timestamp, r.action, r.error, r.retries,
                        r.skipped)
                       for r in db.dynamic_table(name).refresh_history]
                for name in DT_NAMES}

    state_a, fired_a, db_a = run_workload(17, faulty=True)
    state_b, fired_b, db_b = run_workload(17, faulty=True)
    assert fired_a == fired_b
    assert state_a == state_b
    assert trace(db_a) == trace(db_b)
