"""Tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import nodes as n
from repro.sql.parser import parse_query, parse_statement, parse_statements


class TestSelectCore:
    def test_simple(self):
        select = parse_query("SELECT a, b FROM t")
        assert len(select.items) == 2
        assert isinstance(select.from_, n.NamedTable)

    def test_aliases(self):
        select = parse_query("SELECT a AS x, b y FROM t")
        assert select.items[0].alias == "x"
        assert select.items[1].alias == "y"

    def test_star(self):
        select = parse_query("SELECT * FROM t")
        assert isinstance(select.items[0].expr, n.Star)

    def test_qualified_star(self):
        select = parse_query("SELECT t.* FROM t")
        assert select.items[0].expr == n.Star(table="t")

    def test_where(self):
        select = parse_query("SELECT a FROM t WHERE a > 1")
        assert isinstance(select.where, n.BinOp)

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT a FROM t").distinct

    def test_group_by_exprs(self):
        select = parse_query("SELECT a, count(*) FROM t GROUP BY a")
        assert select.group_by == (n.Name("a"),)

    def test_group_by_all(self):
        select = parse_query("SELECT a, count(*) FROM t GROUP BY ALL")
        assert isinstance(select.group_by, n.GroupByAll)

    def test_having(self):
        select = parse_query(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2")
        assert select.having is not None

    def test_qualify(self):
        select = parse_query(
            "SELECT a, row_number() over (partition by a) rn FROM t "
            "QUALIFY rn = 1")
        assert select.qualify is not None

    def test_order_by_limit(self):
        select = parse_query("SELECT a FROM t ORDER BY a DESC, 2 LIMIT 5")
        assert select.order_by[0][1] is True
        assert select.order_by[1] == (n.Lit(2), False)
        assert select.limit == 5

    def test_union_all(self):
        select = parse_query("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert len(select.union_all) == 1

    def test_select_without_from(self):
        select = parse_query("SELECT 1")
        assert select.from_ is None


class TestJoins:
    def test_inner_join(self):
        select = parse_query("SELECT 1 FROM a JOIN b ON a.x = b.y")
        assert isinstance(select.from_, n.JoinRef)
        assert select.from_.kind == "inner"

    def test_left_outer(self):
        select = parse_query("SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.y")
        assert select.from_.kind == "left"

    def test_full(self):
        select = parse_query("SELECT 1 FROM a FULL JOIN b ON a.x = b.y")
        assert select.from_.kind == "full"

    def test_cross_join_keyword(self):
        select = parse_query("SELECT 1 FROM a CROSS JOIN b")
        assert select.from_.kind == "cross"
        assert select.from_.condition is None

    def test_comma_is_cross_join(self):
        select = parse_query("SELECT 1 FROM a, b")
        assert select.from_.kind == "cross"

    def test_chained_joins(self):
        select = parse_query(
            "SELECT 1 FROM a JOIN b ON a.x = b.y JOIN c ON b.y = c.z")
        outer = select.from_
        assert isinstance(outer.left, n.JoinRef)

    def test_subquery(self):
        select = parse_query("SELECT s.a FROM (SELECT a FROM t) s")
        assert isinstance(select.from_, n.SubqueryRef)
        assert select.from_.alias == "s"

    def test_lateral_flatten(self):
        select = parse_query(
            "SELECT f.value FROM t, LATERAL FLATTEN(input => t.tags) f")
        assert isinstance(select.from_, n.FlattenRef)
        assert select.from_.alias == "f"


class TestExpressions:
    def expr(self, text):
        return parse_query(f"SELECT {text}").items[0].expr

    def test_precedence_arith(self):
        tree = self.expr("1 + 2 * 3")
        assert tree == n.BinOp("+", n.Lit(1), n.BinOp("*", n.Lit(2), n.Lit(3)))

    def test_precedence_bool(self):
        tree = self.expr("a = 1 OR b = 2 AND c = 3")
        assert tree.op == "or"
        assert tree.right.op == "and"

    def test_not(self):
        assert self.expr("NOT a") == n.UnOp("not", n.Name("a"))

    def test_unary_minus(self):
        assert self.expr("-a") == n.UnOp("-", n.Name("a"))

    def test_is_null(self):
        assert self.expr("a IS NULL") == n.IsNullExpr(n.Name("a"))
        assert self.expr("a IS NOT NULL") == n.IsNullExpr(n.Name("a"), True)

    def test_in_list(self):
        tree = self.expr("a IN (1, 2)")
        assert tree == n.InListExpr(n.Name("a"), (n.Lit(1), n.Lit(2)))

    def test_not_in(self):
        assert self.expr("a NOT IN (1)").negated

    def test_between(self):
        tree = self.expr("a BETWEEN 1 AND 5")
        assert tree == n.BetweenExpr(n.Name("a"), n.Lit(1), n.Lit(5))

    def test_like(self):
        tree = self.expr("a LIKE 'x%'")
        assert tree == n.LikeExpr(n.Name("a"), n.Lit("x%"))

    def test_case_searched(self):
        tree = self.expr("CASE WHEN a THEN 1 ELSE 2 END")
        assert isinstance(tree, n.CaseExpr)
        assert tree.operand is None

    def test_case_simple(self):
        tree = self.expr("CASE a WHEN 1 THEN 'x' END")
        assert tree.operand == n.Name("a")

    def test_cast_function(self):
        assert self.expr("CAST(a AS int)") == n.CastExpr(n.Name("a"), "int")

    def test_postfix_cast(self):
        assert self.expr("a::int") == n.CastExpr(n.Name("a"), "int")

    def test_variant_path(self):
        tree = self.expr("payload:time")
        assert tree == n.PathExpr(n.Name("payload"), ("time",))

    def test_variant_path_then_cast(self):
        tree = self.expr("e.payload:time::timestamp")
        assert isinstance(tree, n.CastExpr)
        assert isinstance(tree.operand, n.PathExpr)
        assert tree.operand.operand == n.Name("payload", table="e")

    def test_deep_variant_path(self):
        tree = self.expr("payload:a.b.c")
        assert tree.path == ("a", "b", "c")

    def test_string_escape(self):
        assert self.expr("'it''s'") == n.Lit("it's")

    def test_count_star(self):
        tree = self.expr("count(*)")
        assert tree == n.FnCall("count", (n.Star(),))

    def test_count_distinct(self):
        assert self.expr("count(DISTINCT a)").distinct

    def test_window_function(self):
        tree = self.expr("sum(a) OVER (PARTITION BY b ORDER BY c DESC)")
        assert tree.window.partition_by == (n.Name("b"),)
        assert tree.window.order_by == ((n.Name("c"), True),)

    def test_concat_operator(self):
        assert self.expr("a || b").op == "||"

    def test_literals(self):
        assert self.expr("NULL") == n.Lit(None)
        assert self.expr("TRUE") == n.Lit(True)
        assert self.expr("2.5") == n.Lit(2.5)


class TestStatements:
    def test_create_table(self):
        stmt = parse_statement("CREATE TABLE t (a int, b text)")
        assert isinstance(stmt, n.CreateTable)
        assert stmt.columns == (n.ColumnDef("a", "int"),
                                n.ColumnDef("b", "text"))

    def test_create_or_replace(self):
        stmt = parse_statement("CREATE OR REPLACE TABLE t (a int)")
        assert stmt.or_replace

    def test_create_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a int)")
        assert stmt.if_not_exists

    def test_create_view(self):
        stmt = parse_statement("CREATE VIEW v AS SELECT 1")
        assert isinstance(stmt, n.CreateView)

    def test_create_dynamic_table(self):
        stmt = parse_statement(
            "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
            "WAREHOUSE = wh AS SELECT a FROM t")
        assert isinstance(stmt, n.CreateDynamicTable)
        assert stmt.target_lag == "1 minute"
        assert stmt.warehouse == "wh"
        assert stmt.refresh_mode == "auto"

    def test_create_dynamic_table_downstream(self):
        stmt = parse_statement(
            "CREATE DYNAMIC TABLE d TARGET_LAG = DOWNSTREAM "
            "WAREHOUSE = wh AS SELECT a FROM t")
        assert stmt.target_lag == "downstream"

    def test_create_dynamic_table_options(self):
        stmt = parse_statement(
            "CREATE DYNAMIC TABLE d TARGET_LAG = '5 minutes' WAREHOUSE = wh "
            "REFRESH_MODE = incremental INITIALIZE = on_schedule "
            "AS SELECT a FROM t")
        assert stmt.refresh_mode == "incremental"
        assert stmt.initialize == "on_schedule"

    def test_dynamic_table_requires_lag(self):
        with pytest.raises(ParseError):
            parse_statement(
                "CREATE DYNAMIC TABLE d WAREHOUSE = wh AS SELECT 1")

    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, n.Insert)
        assert len(stmt.rows) == 2

    def test_insert_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM u")
        assert stmt.query is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, n.Delete)
        assert stmt.where is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert isinstance(stmt, n.Update)
        assert len(stmt.assignments) == 2

    def test_drop_kinds(self):
        assert parse_statement("DROP TABLE t").kind == "table"
        assert parse_statement("DROP VIEW v").kind == "view"
        assert parse_statement("DROP DYNAMIC TABLE d").kind == "dynamic table"

    def test_drop_if_exists(self):
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists

    def test_undrop(self):
        stmt = parse_statement("UNDROP TABLE t")
        assert isinstance(stmt, n.Undrop)

    def test_alter_dynamic_table(self):
        for action in ("SUSPEND", "RESUME", "REFRESH"):
            stmt = parse_statement(f"ALTER DYNAMIC TABLE d {action}")
            assert stmt.action == action.lower()

    def test_alter_rename(self):
        stmt = parse_statement("ALTER TABLE t RENAME TO u")
        assert isinstance(stmt, n.AlterTableRename)

    def test_recluster(self):
        stmt = parse_statement("ALTER TABLE t RECLUSTER")
        assert isinstance(stmt, n.Recluster)

    def test_script(self):
        statements = parse_statements("SELECT 1; SELECT 2;")
        assert len(statements) == 2

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 garbage extra ,")

    def test_error_mentions_position(self):
        with pytest.raises(ParseError) as info:
            parse_statement("SELECT FROM t")
        assert "line" in str(info.value)
