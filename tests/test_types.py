"""Tests for the SQL value model."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import types as t
from repro.engine.types import SqlType
from repro.errors import EvaluationError, TypeError_


class TestTypeNames:
    def test_aliases(self):
        assert t.type_from_name("integer") == SqlType.INT
        assert t.type_from_name("VARCHAR") == SqlType.TEXT
        assert t.type_from_name("double") == SqlType.FLOAT
        assert t.type_from_name("object") == SqlType.VARIANT

    def test_unknown(self):
        with pytest.raises(TypeError_):
            t.type_from_name("blob")


class TestTypeOfValue:
    def test_bool_before_int(self):
        assert t.type_of_value(True) == SqlType.BOOL

    def test_null(self):
        assert t.type_of_value(None) == SqlType.NULL

    def test_variant(self):
        assert t.type_of_value({"a": 1}) == SqlType.VARIANT
        assert t.type_of_value([1, 2]) == SqlType.VARIANT


class TestUnify:
    def test_null_unifies_with_anything(self):
        assert t.unify_types(SqlType.NULL, SqlType.TEXT) == SqlType.TEXT
        assert t.unify_types(SqlType.INT, SqlType.NULL) == SqlType.INT

    def test_numeric_widening(self):
        assert t.unify_types(SqlType.INT, SqlType.FLOAT) == SqlType.FLOAT

    def test_mismatch(self):
        with pytest.raises(TypeError_):
            t.unify_types(SqlType.INT, SqlType.TEXT)


class TestThreeValuedLogic:
    def test_and_null_false(self):
        assert t.sql_and(None, False) is False

    def test_and_null_true(self):
        assert t.sql_and(None, True) is None

    def test_or_null_true(self):
        assert t.sql_or(None, True) is True

    def test_or_null_false(self):
        assert t.sql_or(None, False) is None

    def test_not_null(self):
        assert t.sql_not(None) is None

    def test_is_true_excludes_null(self):
        assert not t.is_true(None)
        assert t.is_true(True)
        assert not t.is_true(False)


class TestCompare:
    def test_null_propagates(self):
        assert t.compare(None, 1) is None
        assert t.compare(1, None) is None

    def test_cross_numeric(self):
        assert t.compare(1, 1.0) == 0
        assert t.compare(1, 2.5) == -1

    def test_text(self):
        assert t.compare("a", "b") == -1

    def test_incomparable(self):
        with pytest.raises(EvaluationError):
            t.compare("a", 1)

    def test_bool_not_numeric(self):
        with pytest.raises(EvaluationError):
            t.compare(True, 1)


class TestGroupKey:
    def test_nulls_equal(self):
        assert t.group_key([None]) == t.group_key([None])

    def test_int_float_coincide(self):
        assert t.group_key([1]) == t.group_key([1.0])

    def test_null_distinct_from_values(self):
        assert t.group_key([None]) != t.group_key([0])
        assert t.group_key([None]) != t.group_key([""])

    def test_variant_normalized(self):
        assert t.group_key([{"b": 2, "a": 1}]) == t.group_key([{"a": 1, "b": 2}])

    def test_hashable(self):
        {t.group_key([1, "x", None, {"k": [1]}])}


class TestStableHash:
    def test_deterministic(self):
        assert t.stable_hash((1, "a", None)) == t.stable_hash((1, "a", None))

    def test_discriminates_types(self):
        assert t.stable_hash(("1",)) != t.stable_hash((1,))
        assert t.stable_hash((True,)) != t.stable_hash((1,))

    def test_discriminates_none_from_empty(self):
        assert t.stable_hash((None,)) != t.stable_hash(("",))

    @given(st.lists(st.one_of(st.integers(), st.text(), st.booleans(),
                              st.none()), max_size=6))
    def test_pure_function(self, values):
        assert t.stable_hash(tuple(values)) == t.stable_hash(tuple(values))


class TestCast:
    def test_null_passthrough(self):
        assert t.cast_value(None, SqlType.INT) is None

    def test_text_to_int(self):
        assert t.cast_value(" 42 ", SqlType.INT) == 42

    def test_float_to_int_truncates(self):
        assert t.cast_value(3.9, SqlType.INT) == 3

    def test_bool_text(self):
        assert t.cast_value("true", SqlType.BOOL) is True
        assert t.cast_value("NO", SqlType.BOOL) is False

    def test_bad_cast_raises(self):
        with pytest.raises(EvaluationError):
            t.cast_value("abc", SqlType.INT)

    def test_variant_parses_json(self):
        assert t.cast_value('{"a": 1}', SqlType.VARIANT) == {"a": 1}

    def test_variant_keeps_plain_text(self):
        assert t.cast_value("not json", SqlType.VARIANT) == "not json"

    def test_timestamp_from_int(self):
        assert t.cast_value(5, SqlType.TIMESTAMP) == 5

    def test_timestamp_from_clock_text(self):
        assert t.cast_value("01:00", SqlType.TIMESTAMP) == 3_600_000_000_000

    def test_timestamp_with_seconds(self):
        assert t.cast_value("00:01:30", SqlType.TIMESTAMP) == 90_000_000_000

    def test_to_text(self):
        assert t.cast_value(12, SqlType.TEXT) == "12"
        assert t.cast_value(True, SqlType.TEXT) == "true"
