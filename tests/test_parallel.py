"""Tests for the parallel refresh subsystem: worker pools, dependency
waves, DAG-parallel scheduling, partition fan-out, row-level commit
conflicts, and the thread-safety of the shared monitors."""

import threading
import time as wallclock

import pytest

from repro import Database
from repro.core.graph import DependencyGraph
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.errors import LockConflict
from repro.scheduler.clock import SimClock
from repro.scheduler.executor import dependency_waves
from repro.scheduler.liveness import LivenessMonitor
from repro.server.server import ServerStats
from repro.storage.catalog import Catalog
from repro.txn.manager import TransactionManager
from repro.util.parallel import (WorkerPool, chunk_spans, fanout_map,
                                 fanout_pool, partition_parallelism)
from repro.util.timeutil import MINUTE, SECOND


class TestWorkerPool:
    def test_results_in_input_order(self):
        pool = WorkerPool(4)
        try:
            def slow_then_fast(value):
                # The first item sleeps so later items finish first.
                if value == 0:
                    wallclock.sleep(0.02)
                return value * 10
            assert pool.map_ordered(slow_then_fast, list(range(8))) == \
                [value * 10 for value in range(8)]
        finally:
            pool.close()

    def test_single_worker_runs_inline(self):
        pool = WorkerPool(1)
        thread_names = []
        pool.map_ordered(
            lambda _: thread_names.append(threading.current_thread().name),
            [1, 2, 3])
        assert pool._executor is None
        assert thread_names == [threading.current_thread().name] * 3

    def test_worker_exception_propagates(self):
        pool = WorkerPool(2)
        try:
            with pytest.raises(ValueError):
                pool.map_ordered(lambda _: (_ for _ in ()).throw(
                    ValueError("boom")), [1, 2])
        finally:
            pool.close()

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.map_ordered(lambda value: value, [1, 2])

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestChunkSpans:
    def test_covers_range_exactly(self):
        spans = chunk_spans(1000, 4)
        assert spans[0][0] == 0 and spans[-1][1] == 1000
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start

    def test_respects_minimum(self):
        # 600 rows at minimum 256 → at most 2 chunks, never 4.
        assert len(chunk_spans(600, 4)) == 2
        assert chunk_spans(100, 4) == [(0, 100)]

    def test_empty(self):
        assert chunk_spans(0, 4) == []

    def test_deterministic(self):
        assert chunk_spans(5000, 3) == chunk_spans(5000, 3)


class TestFanoutContext:
    def test_inline_without_context(self):
        # No installed pool: fanout_map degrades to a plain ordered map.
        assert fanout_map("t", lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    def test_records_tasks_and_orders_results(self):
        pool = WorkerPool(4)
        try:
            with partition_parallelism(pool) as stats:
                out = fanout_map("diff", lambda x: x * 2, list(range(6)))
            assert out == [x * 2 for x in range(6)]
            assert stats.tasks == 6
            assert stats.sites == ["diff"]
            assert stats.workers == 4
        finally:
            pool.close()

    def test_workers_never_see_the_context(self):
        # The fan-out slot is thread-local: tasks running on pool workers
        # must not observe the installing refresh's pool, or partition
        # work could recursively fan out and deadlock the bounded pool.
        pool = WorkerPool(2)
        try:
            with partition_parallelism(pool):
                seen = fanout_map("probe", lambda _: fanout_pool(),
                                  [1, 2, 3, 4])
            assert seen == [None, None, None, None]
        finally:
            pool.close()

    def test_context_restored_after_refresh(self):
        pool = WorkerPool(2)
        try:
            with partition_parallelism(pool):
                pass
            assert fanout_pool() is None
        finally:
            pool.close()


def _graph_db():
    """src → a, b (independent) → c (joins a and b); d reads src only."""
    db = Database()
    db.create_warehouse("wh", size=4)
    db.execute("CREATE TABLE src (k INT, v INT)")
    db.execute("INSERT INTO src VALUES " +
               ", ".join(f"({i % 5}, {i})" for i in range(40)))
    db.execute("CREATE DYNAMIC TABLE a TARGET_LAG = '1 minute' "
               "WAREHOUSE = wh AS SELECT k, sum(v) s FROM src GROUP BY k")
    db.execute("CREATE DYNAMIC TABLE b TARGET_LAG = '1 minute' "
               "WAREHOUSE = wh AS SELECT k, count(*) n FROM src GROUP BY k")
    db.execute("CREATE DYNAMIC TABLE c TARGET_LAG = '1 minute' "
               "WAREHOUSE = wh AS SELECT a.k, a.s + b.n t FROM a "
               "JOIN b ON a.k = b.k")
    db.execute("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
               "WAREHOUSE = wh AS SELECT k FROM src WHERE v > 10")
    return db


class TestDependencyWaves:
    def _waves(self, db, due_names):
        graph = DependencyGraph(db.catalog)
        order = [dt for dt in graph.topological_order()
                 if dt.name in due_names]
        return [[dt.name for dt in wave]
                for wave in dependency_waves(order, graph)]

    def test_diamond(self):
        db = _graph_db()
        waves = self._waves(db, {"a", "b", "c", "d"})
        assert sorted(waves[0]) == ["a", "b", "d"]
        assert waves[1] == ["c"]

    def test_non_due_upstream_imposes_no_ordering(self):
        # a and b are not due this tick: their versions hold still, so c
        # belongs to wave 0 alongside the unrelated d.
        db = _graph_db()
        waves = self._waves(db, {"c", "d"})
        assert len(waves) == 1
        assert sorted(waves[0]) == ["c", "d"]

    def test_chain_of_dependents(self):
        db = Database()
        db.create_warehouse("wh")
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("CREATE DYNAMIC TABLE x TARGET_LAG = '1 minute' "
                   "WAREHOUSE = wh AS SELECT a FROM t")
        db.execute("CREATE DYNAMIC TABLE y TARGET_LAG = '1 minute' "
                   "WAREHOUSE = wh AS SELECT a FROM x")
        db.execute("CREATE DYNAMIC TABLE z TARGET_LAG = '1 minute' "
                   "WAREHOUSE = wh AS SELECT a FROM y")
        waves = self._waves(db, {"x", "y", "z"})
        assert waves == [["x"], ["y"], ["z"]]


def _run_workload(parallelism=None, partition_fanout=None):
    """A multi-DT graph under a mutation stream; returns the final
    (row_id, row) states of every DT plus the scheduler report."""
    db = Database(parallelism=parallelism, partition_fanout=partition_fanout)
    db.create_warehouse("wh", size=4)
    db.execute("CREATE TABLE src (k INT, v INT)")
    db.execute("INSERT INTO src VALUES " +
               ", ".join(f"({i % 7}, {i})" for i in range(1200)))
    db.execute("CREATE DYNAMIC TABLE agg TARGET_LAG = '1 minute' "
               "WAREHOUSE = wh AS SELECT k, sum(v) s, count(*) n "
               "FROM src GROUP BY k")
    db.execute("CREATE DYNAMIC TABLE filt TARGET_LAG = '1 minute' "
               "WAREHOUSE = wh AS SELECT k, v FROM src WHERE v % 3 = 0")
    db.execute("CREATE DYNAMIC TABLE joined TARGET_LAG = '1 minute' "
               "WAREHOUSE = wh AS SELECT f.k, f.v, a.s FROM filt f "
               "JOIN agg a ON f.k = a.k")
    db.execute("CREATE DYNAMIC TABLE dis TARGET_LAG = '1 minute' "
               "WAREHOUSE = wh AS SELECT DISTINCT k FROM src")

    def mutate(step):
        def run():
            db.execute("INSERT INTO src VALUES " + ", ".join(
                f"({i % 5}, {1000 * step + i})" for i in range(700)))
            if step == 2:
                db.execute("DELETE FROM src WHERE v % 4 = 1")
        return run

    for step in range(1, 4):
        db.scheduler.at(step * 70 * SECOND, mutate(step))
    report = db.scheduler.run_until(6 * MINUTE)
    states = {
        name: sorted(db.catalog.versioned_table(name).rows_by_id().items())
        for name in ("agg", "filt", "joined", "dis")}
    return db, states, report


class TestDagParallelEquivalence:
    def test_states_byte_identical_to_serial(self):
        __, serial, serial_report = _run_workload()
        __, parallel, parallel_report = _run_workload(parallelism=4)
        assert parallel == serial
        assert (parallel_report.refreshes_succeeded
                == serial_report.refreshes_succeeded)
        assert (parallel_report.refreshes_skipped
                == serial_report.refreshes_skipped)

    def test_wave_metadata_recorded(self):
        db, __, __ = _run_workload(parallelism=4)
        joined = [record for record
                  in db.catalog.get("joined").payload.refresh_history
                  if record.succeeded and record.parallel]
        assert joined, "DAG-parallel refreshes must carry wave metadata"
        info = joined[-1].parallel
        assert info["workers"] == 4
        # joined depends on two due DTs, so it can never sit in wave 1.
        assert 1 < info["wave"] <= info["waves"]

    def test_serial_default_records_no_metadata(self):
        db, __, __ = _run_workload()
        records = [record for record
                   in db.catalog.get("joined").payload.refresh_history]
        assert all(record.parallel is None for record in records)

    def test_set_parallelism_toggles(self):
        db, __, __ = _run_workload()
        assert db.scheduler._coordinator is None
        db.set_parallelism(2)
        assert db.scheduler._coordinator is not None
        assert db.scheduler._dispatch_slots != []
        db.set_parallelism(None)
        assert db.scheduler._coordinator is None
        assert db.scheduler._dispatch_slots == []

    def test_explain_reports_parallelism(self):
        db, __, __ = _run_workload(parallelism=4)
        text = db.explain("SELECT * FROM joined")
        assert "-- parallel joined: wave " in text
        assert "workers=4" in text


class TestDispatchSlotModel:
    """The simulated clock models ``parallelism=N`` as N dispatch slots:
    independent refreshes overlap up to N at a time."""

    def _two_independent(self, parallelism):
        db = Database(parallelism=parallelism)
        db.create_warehouse("wh", size=4)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES " +
                   ", ".join(f"({i})" for i in range(50)))
        db.execute("CREATE DYNAMIC TABLE p TARGET_LAG = '1 minute' "
                   "WAREHOUSE = wh AS SELECT a FROM t WHERE a % 2 = 0")
        db.execute("CREATE DYNAMIC TABLE q TARGET_LAG = '1 minute' "
                   "WAREHOUSE = wh AS SELECT a FROM t WHERE a % 2 = 1")
        db.execute("INSERT INTO t VALUES (100), (101)")
        db.scheduler.run_until(90 * SECOND)
        records = {}
        for name in ("p", "q"):
            history = db.catalog.get(name).payload.refresh_history
            records[name] = [r for r in history if r.succeeded][-1]
        return records

    def test_single_slot_serializes(self):
        records = self._two_independent(parallelism=1)
        starts = sorted(r.start_wall for r in records.values())
        ends = sorted(r.end_wall for r in records.values())
        # One dispatch slot: the second refresh starts when the first ends.
        assert starts[1] == ends[0]

    def test_two_slots_overlap(self):
        records = self._two_independent(parallelism=2)
        # Two dispatch slots: both independent refreshes start at their
        # shared data timestamp instead of queueing on one slot.
        assert records["p"].start_wall == records["q"].start_wall
        assert (records["p"].start_wall
                == records["p"].data_timestamp)


class TestPartitionFanoutEquivalence:
    def test_states_byte_identical_to_serial(self):
        __, serial, __ = _run_workload()
        __, fanned, __ = _run_workload(partition_fanout=4)
        assert fanned == serial

    def test_combined_modes_byte_identical(self):
        __, serial, __ = _run_workload()
        __, both, __ = _run_workload(parallelism=2, partition_fanout=4)
        assert both == serial

    def test_fanout_metadata_recorded(self):
        db, __, __ = _run_workload(partition_fanout=4)
        fanned = [record.parallel for record
                  in db.catalog.get("agg").payload.refresh_history
                  if record.parallel]
        assert fanned, "large deltas must fan partition work out"
        assert all(info["partition_workers"] == 4 for info in fanned)
        assert all(info["partition_tasks"] > 0 for info in fanned)


@pytest.fixture
def txn_setup():
    clock = SimClock()
    catalog = Catalog(clock.now)
    manager = TransactionManager(catalog, clock.now)
    catalog.create_table("t", schema_of(("a", SqlType.INT)))
    return clock, catalog, manager


class TestRowLevelConflicts:
    """First-committer-wins at row granularity: only overlapping row
    footprints (or table overwrites) conflict."""

    def _seed(self, clock, manager, rows):
        txn = manager.begin()
        txn.insert_rows("t", rows)
        txn.commit()
        clock.advance(SECOND)
        table = manager.catalog.versioned_table("t")
        return list(table.rows_by_id())

    def test_disjoint_updates_both_commit(self, txn_setup):
        clock, __, manager = txn_setup
        ids = self._seed(clock, manager, [(1,), (2,), (3,)])
        one = manager.begin()
        two = manager.begin()
        one.update_rows("t", {ids[0]: (10,)})
        two.update_rows("t", {ids[1]: (20,)})
        one.commit()
        clock.advance(SECOND)
        two.commit()
        reader = manager.begin()
        assert sorted(reader.scan("t").rows) == [(3,), (10,), (20,)]

    def test_overlapping_update_conflicts(self, txn_setup):
        clock, __, manager = txn_setup
        ids = self._seed(clock, manager, [(1,), (2,)])
        # The victim's snapshot predates the winner's commit wall.
        victim = manager.begin(snapshot_wall=0)
        winner = manager.begin()
        victim.delete_rows("t", [ids[0]])
        winner.update_rows("t", {ids[0]: (10,)})
        winner.commit()
        with pytest.raises(LockConflict):
            victim.commit()

    def test_overwrite_conflicts_with_disjoint_writer(self, txn_setup):
        clock, __, manager = txn_setup
        ids = self._seed(clock, manager, [(1,), (2,)])
        victim = manager.begin(snapshot_wall=0)
        winner = manager.begin()
        # The victim writes a row the overwrite never touched explicitly —
        # but an overwrite rewrites the whole table, so it conflicts with
        # every non-blind write regardless of footprint.
        victim.update_rows("t", {ids[1]: (20,)})
        winner.overwrite("t", [(9,)])
        winner.commit()
        with pytest.raises(LockConflict):
            victim.commit()

    def test_overwrite_loses_to_committed_row_write(self, txn_setup):
        clock, __, manager = txn_setup
        ids = self._seed(clock, manager, [(1,), (2,)])
        victim = manager.begin(snapshot_wall=0)
        winner = manager.begin()
        victim.overwrite("t", [(9,)])
        winner.update_rows("t", {ids[0]: (10,)})
        winner.commit()
        with pytest.raises(LockConflict):
            victim.commit()

    def test_insert_only_still_exempt(self, txn_setup):
        clock, __, manager = txn_setup
        self._seed(clock, manager, [(1,)])
        one = manager.begin()
        two = manager.begin()
        one.insert_rows("t", [(2,)])
        two.insert_rows("t", [(3,)])
        one.commit()
        clock.advance(SECOND)
        two.commit()
        reader = manager.begin()
        assert sorted(reader.scan("t").rows) == [(1,), (2,), (3,)]


class TestLivenessMonitorThreadSafety:
    def test_concurrent_begin_end_and_check(self):
        """Regression: the background check iterates the EXECUTING set
        while coordinator workers begin/end refreshes. Unguarded, this
        raised ``RuntimeError: dictionary changed size during
        iteration``."""
        monitor = LivenessMonitor()
        errors = []
        stop = threading.Event()

        def churn(worker):
            try:
                for round_number in range(300):
                    name = f"dt-{worker}-{round_number % 7}"
                    monitor.begin(name, round_number, round_number)
                    monitor.heartbeat(name, round_number + 1)
                    monitor.end(name, round_number + 2, True)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def check():
            try:
                while not stop.is_set():
                    monitor.check(10**9)
                    monitor.executing()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        checker = threading.Thread(target=check)
        workers = [threading.Thread(target=churn, args=(i,))
                   for i in range(4)]
        checker.start()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        checker.join()
        assert errors == []
        assert monitor.executing() == []
        assert len(monitor.history) == 4 * 300


class TestServerStatsThreadSafety:
    def test_concurrent_counters_exact(self):
        stats = ServerStats()

        def hammer():
            for __ in range(500):
                stats.count_statement()
                stats.count_commit(attempts_used=2)
                stats.count_conflict()

        threads = [threading.Thread(target=hammer) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = stats.snapshot()
        assert snap["statements"] == 8 * 500
        assert snap["commits"] == 8 * 500
        assert snap["retries"] == 8 * 500
        assert snap["conflicts"] == 8 * 500
