"""Tests for the scheduler loop: ticks, alignment, skips, cascades."""

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.core.graph import DependencyGraph
from repro.scheduler.cost import CostModel
from repro.scheduler.periods import BASE_PERIOD
from repro.util.timeutil import (HOUR, MINUTE, SECOND, hours, minutes,
                                 seconds)


def make_db(cost_model=None):
    db = Database(cost_model=cost_model)
    db.create_warehouse("wh")
    db.execute("CREATE TABLE src (id int, val int)")
    db.execute("INSERT INTO src VALUES (1, 10)")
    return db


class TestPeriodsAssignment:
    def test_downstream_period_at_least_upstream(self):
        db = make_db()
        db.create_dynamic_table("a", "SELECT id FROM src", "64 minutes", "wh")
        db.create_dynamic_table("b", "SELECT id FROM a", "1 minute", "wh")
        graph = DependencyGraph(db.catalog)
        periods = db.scheduler.assign_periods(graph)
        # b wants a small period but is clamped to a's larger period? No:
        # the constraint is the other way — b's period must be ≥ a's. a has
        # a huge lag so a's period is large; b is clamped UP to it.
        assert periods["b"] >= periods["a"]

    def test_downstream_only_dt_gets_none(self):
        db = make_db()
        db.create_dynamic_table("a", "SELECT id FROM src", "downstream", "wh")
        graph = DependencyGraph(db.catalog)
        assert db.scheduler.assign_periods(graph)["a"] is None


class TestTicksAndRefreshes:
    def test_scheduled_refresh_happens(self):
        db = make_db()
        dt = db.create_dynamic_table("d", "SELECT id FROM src",
                                     "1 minute", "wh")
        db.execute("INSERT INTO src VALUES (2, 20)")
        db.run_for(2 * MINUTE)
        assert any(r.action == RefreshAction.INCREMENTAL
                   for r in dt.refresh_history)
        assert sorted(db.query("SELECT * FROM d").rows) == [(1,), (2,)]

    def test_no_data_dominates_idle_workload(self):
        """Paper section 6.3: 'More than 90% of refreshes have no data.'"""
        db = make_db()
        db.create_dynamic_table("d", "SELECT id FROM src", "1 minute", "wh")
        report = db.run_for(HOUR)
        assert report.no_data_refreshes / report.refreshes_succeeded > 0.9

    def test_injected_dml_interleaves(self):
        db = make_db()
        dt = db.create_dynamic_table("d", "SELECT id FROM src",
                                     "1 minute", "wh")
        db.at(5 * MINUTE, lambda: db.execute(
            "INSERT INTO src VALUES (99, 0)"))
        db.run_for(10 * MINUTE)
        assert (99,) in db.query("SELECT * FROM d").rows
        incrementals = [r for r in dt.refresh_history
                        if r.action == RefreshAction.INCREMENTAL]
        assert len(incrementals) == 1

    def test_data_timestamps_align_across_component(self):
        """Section 5.2: data timestamps of connected DTs align even with
        different target lags."""
        db = make_db()
        a = db.create_dynamic_table("a", "SELECT id FROM src",
                                    "1 minute", "wh")
        b = db.create_dynamic_table("b", "SELECT id FROM a",
                                    "4 minutes", "wh")
        db.at(3 * MINUTE, lambda: db.execute(
            "INSERT INTO src VALUES (5, 5)"))
        db.run_for(20 * MINUTE)
        a_timestamps = set(a.table.refresh_timestamps())
        for record in b.refresh_history:
            if record.succeeded:
                assert record.data_timestamp in a_timestamps

    def test_lag_stays_within_target(self):
        from repro.scheduler.metrics import peak_lags

        db = make_db()
        dt = db.create_dynamic_table("d", "SELECT id FROM src",
                                     "2 minutes", "wh")
        for step in range(20):
            db.at((step + 1) * MINUTE,
                  lambda s=step: db.execute(
                      f"INSERT INTO src VALUES ({100 + s}, 0)"))
        db.run_for(25 * MINUTE)
        peaks = peak_lags(dt)
        assert peaks
        assert max(peaks) <= minutes(2)


class TestSkips:
    def slow_model(self):
        # Make refreshes take ~2 base periods so the next tick overlaps.
        return CostModel(fixed_cost=100 * SECOND)

    def test_overlapping_refresh_skipped(self):
        db = make_db(cost_model=self.slow_model())
        dt = db.create_dynamic_table("d", "SELECT id FROM src",
                                     "1 minute", "wh")
        for step in range(10):
            db.at((step + 1) * 30 * SECOND,
                  lambda s=step: db.execute(
                      f"INSERT INTO src VALUES ({100 + s}, 0)"))
        report = db.run_for(10 * MINUTE)
        assert report.refreshes_skipped > 0

    def test_skip_preserves_dvs(self):
        """A refresh following a skip widens its interval and still lands
        on a consistent state (section 3.3.3)."""
        db = make_db(cost_model=self.slow_model())
        db.create_dynamic_table("d", "SELECT id, val FROM src",
                                "1 minute", "wh")
        for step in range(10):
            db.at((step + 1) * 30 * SECOND,
                  lambda s=step: db.execute(
                      f"INSERT INTO src VALUES ({100 + s}, {s})"))
        db.run_for(10 * MINUTE)
        assert db.check_dvs("d")

    def test_downstream_skips_when_upstream_skipped(self):
        db = make_db(cost_model=self.slow_model())
        a = db.create_dynamic_table("a", "SELECT id FROM src",
                                    "1 minute", "wh")
        b = db.create_dynamic_table("b", "SELECT id FROM a",
                                    "1 minute", "wh")
        for step in range(12):
            db.at((step + 1) * 20 * SECOND,
                  lambda s=step: db.execute(
                      f"INSERT INTO src VALUES ({200 + s}, 0)"))
        db.run_for(10 * MINUTE)
        skipped_b = [r for r in b.refresh_history if r.skipped]
        assert skipped_b  # cascade skips happened
        assert db.check_dvs("b")


class TestSuspensionInScheduler:
    def test_suspended_dt_not_scheduled(self):
        db = make_db()
        dt = db.create_dynamic_table("d", "SELECT id FROM src",
                                     "1 minute", "wh")
        refreshes = len(dt.refresh_history)
        db.execute("ALTER DYNAMIC TABLE d SUSPEND")
        db.run_for(5 * MINUTE)
        assert len(dt.refresh_history) == refreshes

    def test_failing_dt_auto_suspends_under_scheduler(self):
        db = make_db()
        dt = db.create_dynamic_table(
            "boom", "SELECT id, 1 / (val - 10) x FROM src",
            "1 minute", "wh", initialize="on_schedule")
        db.run_for(10 * MINUTE)
        assert dt.suspended
        failures = [r for r in dt.refresh_history if r.error]
        assert len(failures) == 5  # stopped after the threshold


class TestWarehouseIntegration:
    def test_no_data_refreshes_use_no_warehouse_time(self):
        db = make_db()
        db.create_dynamic_table("d", "SELECT id FROM src", "1 minute", "wh")
        warehouse = db.warehouses.get("wh")
        credits_after_init = warehouse.credits_used()
        db.run_for(30 * MINUTE)  # all NO_DATA
        assert warehouse.credits_used() == credits_after_init

    def test_active_workload_consumes_credits(self):
        db = make_db()
        db.create_dynamic_table("d", "SELECT id FROM src", "1 minute", "wh")
        for step in range(10):
            db.at((step + 1) * MINUTE,
                  lambda s=step: db.execute(
                      f"INSERT INTO src VALUES ({300 + s}, 0)"))
        before = db.warehouses.get("wh").credits_used()
        db.run_for(15 * MINUTE)
        assert db.warehouses.get("wh").credits_used() > before
