"""Directed tests for the per-operator derivative rules.

Each test constructs explicit old/new snapshots plus deltas, runs
:func:`repro.ivm.differentiator.differentiate`, applies the result to the
old query output, and checks it equals the new output — plus rule-specific
structural assertions (what the delta *contains*, not just that it works).
"""

import pytest

from repro.engine.executor import evaluate
from repro.engine.relation import DictResolver, Relation
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.errors import NotIncrementalizableError
from repro.ivm.changes import Action, ChangeSet
from repro.ivm.differentiator import (DictDeltaSource, Differentiator,
                                      differentiate)
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.sql.parser import parse_query

ITEMS = schema_of(("id", SqlType.INT), ("grp", SqlType.TEXT),
                  ("val", SqlType.INT), table="items")
LOOKUP = schema_of(("key", SqlType.TEXT), ("label", SqlType.TEXT),
                   table="lookup")
PROVIDER = DictSchemaProvider({"items": ITEMS, "lookup": LOOKUP})


def rel(schema, pairs):
    return Relation.from_pairs(schema, pairs)


def apply_changes(old: Relation, changes: ChangeSet) -> dict:
    state = dict(old.pairs())
    for change in changes.deletes():
        assert change.row_id in state, f"deleting missing {change.row_id}"
        assert state[change.row_id] == change.row
        del state[change.row_id]
    for change in changes.inserts():
        assert change.row_id not in state, f"double insert {change.row_id}"
        state[change.row_id] = change.row
    return state


def check(sql, old_rels, new_rels, deltas, strategy="direct"):
    plan = build_plan(parse_query(sql), PROVIDER)
    source = DictDeltaSource(old_rels, new_rels, deltas)
    old_out = evaluate(plan, DictResolver(old_rels))
    new_out = evaluate(plan, DictResolver(new_rels))
    changes, stats = differentiate(plan, source,
                                   outer_join_strategy=strategy)
    assert apply_changes(old_out, changes) == dict(new_out.pairs())
    return changes, stats


BASE_ITEMS = [("i0", (1, "a", 10)), ("i1", (2, "a", 20)),
              ("i2", (3, "b", 30))]


def delta_of(old_pairs, new_pairs):
    old = dict(old_pairs)
    new = dict(new_pairs)
    changes = ChangeSet()
    for row_id, row in old.items():
        if row_id not in new:
            changes.delete(row_id, row)
        elif new[row_id] != row:
            changes.delete(row_id, row)
            changes.insert(row_id, new[row_id])
    for row_id, row in new.items():
        if row_id not in old:
            changes.insert(row_id, row)
    return changes


def sources_for(old_items, new_items, old_lookup=(), new_lookup=()):
    old_rels = {"items": rel(ITEMS, old_items),
                "lookup": rel(LOOKUP, old_lookup)}
    new_rels = {"items": rel(ITEMS, new_items),
                "lookup": rel(LOOKUP, new_lookup)}
    deltas = {"items": delta_of(old_items, new_items),
              "lookup": delta_of(old_lookup, new_lookup)}
    return old_rels, new_rels, deltas


class TestLinearRules:
    def test_filter_keeps_only_matching_delta(self):
        new_items = BASE_ITEMS + [("i3", (4, "b", 5)), ("i4", (5, "b", 50))]
        changes, __ = check("SELECT id FROM items WHERE val > 25",
                            *sources_for(BASE_ITEMS, new_items))
        assert sorted(c.row for c in changes) == [(5,)]

    def test_project_maps_delta(self):
        new_items = BASE_ITEMS + [("i3", (4, "c", 7))]
        changes, __ = check("SELECT id, val * 2 d FROM items",
                            *sources_for(BASE_ITEMS, new_items))
        assert [c.row for c in changes.inserts()] == [(4, 14)]
        assert changes.inserts()[0].row_id == "i3"  # id passes through

    def test_delete_flows_through_filter(self):
        new_items = BASE_ITEMS[:2]
        changes, __ = check("SELECT id FROM items WHERE val > 25",
                            *sources_for(BASE_ITEMS, new_items))
        assert [c.action for c in changes] == [Action.DELETE]

    def test_union_all_tags_branches(self):
        new_items = BASE_ITEMS + [("i3", (4, "c", 7))]
        changes, __ = check(
            "SELECT id FROM items UNION ALL SELECT val FROM items",
            *sources_for(BASE_ITEMS, new_items))
        prefixes = {c.row_id.split(":")[0] for c in changes}
        assert prefixes == {"u0", "u1"}

    def test_values_has_empty_delta(self):
        changes, __ = check("SELECT 1 v",
                            *sources_for(BASE_ITEMS, BASE_ITEMS))
        assert len(changes) == 0

    def test_sort_not_differentiable(self):
        plan = build_plan(parse_query("SELECT id FROM items ORDER BY id"),
                          PROVIDER)
        source = DictDeltaSource(*[
            {"items": rel(ITEMS, BASE_ITEMS)}] * 2,
            {"items": ChangeSet()})
        with pytest.raises(NotIncrementalizableError):
            differentiate(plan, source)


class TestInnerJoinRule:
    LOOKUP_ROWS = [("l0", ("a", "alpha")), ("l1", ("b", "beta"))]

    def test_insert_joins_against_old_right(self):
        new_items = BASE_ITEMS + [("i3", (4, "b", 40))]
        changes, __ = check(
            "SELECT i.id, l.label FROM items i JOIN lookup l ON i.grp = l.key",
            *sources_for(BASE_ITEMS, new_items,
                         self.LOOKUP_ROWS, self.LOOKUP_ROWS))
        assert [c.row for c in changes.inserts()] == [(4, "beta")]

    def test_right_delete_retracts_pairs(self):
        changes, __ = check(
            "SELECT i.id, l.label FROM items i JOIN lookup l ON i.grp = l.key",
            *sources_for(BASE_ITEMS, BASE_ITEMS,
                         self.LOOKUP_ROWS, self.LOOKUP_ROWS[1:]))
        assert sorted(c.row for c in changes.deletes()) == [
            (1, "alpha"), (2, "alpha")]

    def test_both_sides_insert_counted_once(self):
        new_items = BASE_ITEMS + [("i3", (4, "c", 40))]
        new_lookup = self.LOOKUP_ROWS + [("l2", ("c", "gamma"))]
        changes, __ = check(
            "SELECT i.id, l.label FROM items i JOIN lookup l ON i.grp = l.key",
            *sources_for(BASE_ITEMS, new_items,
                         self.LOOKUP_ROWS, new_lookup))
        assert [c.row for c in changes.inserts()] == [(4, "gamma")]

    def test_empty_delta_reads_nothing(self):
        plan = build_plan(parse_query(
            "SELECT i.id FROM items i JOIN lookup l ON i.grp = l.key"),
            PROVIDER)
        old_rels, new_rels, deltas = sources_for(
            BASE_ITEMS, BASE_ITEMS, self.LOOKUP_ROWS, self.LOOKUP_ROWS)
        differ = Differentiator(DictDeltaSource(old_rels, new_rels, deltas))
        assert len(differ.delta(plan)) == 0
        assert differ.stats.endpoint_evals == 0  # no endpoint scans at all


class TestOuterJoinRules:
    LOOKUP_ROWS = [("l0", ("a", "alpha"))]

    @pytest.mark.parametrize("strategy", ["direct", "rewrite"])
    def test_pad_appears_when_match_removed(self, strategy):
        changes, __ = check(
            "SELECT i.id, l.label FROM items i LEFT JOIN lookup l "
            "ON i.grp = l.key",
            *sources_for(BASE_ITEMS, BASE_ITEMS, self.LOOKUP_ROWS, ()),
            strategy=strategy)
        inserted = sorted(c.row for c in changes.inserts())
        assert inserted == [(1, None), (2, None)]

    @pytest.mark.parametrize("strategy", ["direct", "rewrite"])
    def test_pad_retracted_when_match_appears(self, strategy):
        new_lookup = self.LOOKUP_ROWS + [("l1", ("b", "beta"))]
        changes, __ = check(
            "SELECT i.id, l.label FROM items i LEFT JOIN lookup l "
            "ON i.grp = l.key",
            *sources_for(BASE_ITEMS, BASE_ITEMS,
                         self.LOOKUP_ROWS, new_lookup),
            strategy=strategy)
        assert (3, None) in [c.row for c in changes.deletes()]
        assert (3, "beta") in [c.row for c in changes.inserts()]

    @pytest.mark.parametrize("strategy", ["direct", "rewrite"])
    def test_full_join_both_sides(self, strategy):
        new_items = BASE_ITEMS[:2]  # drop the 'b' item
        changes, __ = check(
            "SELECT i.id, l.label FROM items i FULL JOIN lookup l "
            "ON i.grp = l.key",
            *sources_for(BASE_ITEMS, new_items, self.LOOKUP_ROWS,
                         self.LOOKUP_ROWS),
            strategy=strategy)
        assert changes  # row 3's pad must be retracted

    def test_strategies_agree(self):
        new_items = [("i0", (1, "a", 10)), ("i2", (3, "c", 30)),
                     ("i9", (9, "a", 90))]
        new_lookup = [("l0", ("a", "ALPHA")), ("l2", ("c", "gamma"))]
        args_sets = sources_for(BASE_ITEMS, new_items,
                                self.LOOKUP_ROWS, new_lookup)
        direct, __ = check(
            "SELECT i.id, l.label FROM items i FULL JOIN lookup l "
            "ON i.grp = l.key", *args_sets, strategy="direct")
        rewrite, __ = check(
            "SELECT i.id, l.label FROM items i FULL JOIN lookup l "
            "ON i.grp = l.key", *args_sets, strategy="rewrite")
        canon = lambda cs: sorted((c.action.value, c.row_id, c.row)
                                  for c in cs)
        assert canon(direct) == canon(rewrite)


class TestAggregateRule:
    def test_only_affected_group_touched(self):
        new_items = BASE_ITEMS + [("i3", (4, "a", 5))]
        changes, __ = check(
            "SELECT grp, count(*) n, sum(val) s FROM items GROUP BY grp",
            *sources_for(BASE_ITEMS, new_items))
        rows = {c.row for c in changes}
        assert rows == {("a", 2, 30), ("a", 3, 35)}  # update of group 'a'

    def test_group_disappears(self):
        new_items = BASE_ITEMS[:2]
        changes, __ = check(
            "SELECT grp, count(*) n FROM items GROUP BY grp",
            *sources_for(BASE_ITEMS, new_items))
        assert [c.row for c in changes.deletes()] == [("b", 1)]
        assert not changes.inserts()

    def test_new_group_appears(self):
        new_items = BASE_ITEMS + [("i3", (4, "z", 1))]
        changes, __ = check(
            "SELECT grp, count(*) n FROM items GROUP BY grp",
            *sources_for(BASE_ITEMS, new_items))
        assert [c.row for c in changes.inserts()] == [("z", 1)]
        assert not changes.deletes()

    def test_scalar_aggregate_differentiates(self):
        """Scalar aggregates are one implicit group (the section 3.3.2
        restriction is lifted): an insert updates the single output row."""
        new_items = BASE_ITEMS + [("i3", (4, "z", 40))]
        changes, __ = check(
            "SELECT count(*) n, sum(val) s FROM items",
            *sources_for(BASE_ITEMS, new_items))
        assert [c.row for c in changes.deletes()] == [(3, 60)]
        assert [c.row for c in changes.inserts()] == [(4, 100)]
        # Update in place: one row id, a delete+insert pair.
        assert changes.deletes()[0].row_id == changes.inserts()[0].row_id

    def test_scalar_aggregate_empty_input_keeps_row(self):
        """A scalar aggregate over empty input still yields one row
        (count 0 / NULL sum), and deltas preserve it."""
        changes, __ = check(
            "SELECT count(*) n, sum(val) s FROM items",
            *sources_for(BASE_ITEMS, []))
        assert [c.row for c in changes.deletes()] == [(3, 60)]
        assert [c.row for c in changes.inserts()] == [(0, None)]

    def test_distinct_add_duplicate_no_change(self):
        new_items = BASE_ITEMS + [("i3", (9, "a", 99))]
        changes, __ = check("SELECT DISTINCT grp FROM items",
                            *sources_for(BASE_ITEMS, new_items))
        assert len(changes) == 0

    def test_distinct_last_copy_removed(self):
        new_items = BASE_ITEMS[:2]
        changes, __ = check("SELECT DISTINCT grp FROM items",
                            *sources_for(BASE_ITEMS, new_items))
        assert [c.row for c in changes.deletes()] == [("b",)]


class TestWindowRule:
    SQL = ("SELECT id, grp, "
           "sum(val) over (partition by grp order by id) running FROM items")

    def test_only_changed_partition_rewritten(self):
        new_items = BASE_ITEMS + [("i3", (0, "a", 1))]
        changes, stats = check(self.SQL,
                               *sources_for(BASE_ITEMS, new_items))
        touched_groups = {c.row[1] for c in changes}
        assert touched_groups == {"a"}  # partition 'b' untouched

    def test_unchanged_rows_cancel(self):
        new_items = BASE_ITEMS + [("i3", (9, "a", 1))]
        changes, __ = check(self.SQL, *sources_for(BASE_ITEMS, new_items))
        # Appending id=9 at the end leaves earlier running sums intact;
        # only the new row appears.
        assert [c.row for c in changes.inserts()] == [(9, "a", 31)]
        assert not changes.deletes()

    def test_prepended_row_updates_followers(self):
        new_items = BASE_ITEMS + [("i3", (0, "a", 1))]
        changes, __ = check(self.SQL, *sources_for(BASE_ITEMS, new_items))
        inserted = sorted(c.row for c in changes.inserts())
        assert (0, "a", 1) in inserted
        assert (1, "a", 11) in inserted  # follower shifted


class TestConsolidationSkip:
    def test_append_only_plan_skips_consolidation(self):
        new_items = BASE_ITEMS + [("i3", (4, "c", 7))]
        old_rels, new_rels, __ = sources_for(BASE_ITEMS, new_items)
        deltas = {"items": delta_of(BASE_ITEMS, new_items),
                  "lookup": ChangeSet()}
        plan = build_plan(parse_query("SELECT id FROM items WHERE val > 0"),
                          PROVIDER)
        changes, stats = differentiate(
            plan, DictDeltaSource(old_rels, new_rels, deltas))
        assert stats.consolidation_skipped

    def test_aggregate_plan_never_skips(self):
        new_items = BASE_ITEMS + [("i3", (4, "c", 7))]
        old_rels, new_rels, __ = sources_for(BASE_ITEMS, new_items)
        deltas = {"items": delta_of(BASE_ITEMS, new_items),
                  "lookup": ChangeSet()}
        plan = build_plan(parse_query(
            "SELECT grp, count(*) FROM items GROUP BY grp"), PROVIDER)
        changes, stats = differentiate(
            plan, DictDeltaSource(old_rels, new_rels, deltas))
        assert not stats.consolidation_skipped

    def test_deleting_delta_disables_skip(self):
        new_items = BASE_ITEMS[:2]
        old_rels, new_rels, __ = sources_for(BASE_ITEMS, new_items)
        deltas = {"items": delta_of(BASE_ITEMS, new_items),
                  "lookup": ChangeSet()}
        plan = build_plan(parse_query("SELECT id FROM items"), PROVIDER)
        changes, stats = differentiate(
            plan, DictDeltaSource(old_rels, new_rels, deltas))
        assert not stats.consolidation_skipped


class TestStackedJoinUpdates:
    """Regression: an update crossing two stacked joins must not reorder
    into duplicate inserts (rules require consolidated input deltas)."""

    DIM2 = schema_of(("key2", SqlType.TEXT), ("tag", SqlType.TEXT),
                     table="dim2")

    def test_update_through_two_outer_joins(self):
        provider = DictSchemaProvider({
            "items": ITEMS, "lookup": LOOKUP, "dim2": self.DIM2})
        sql = ("SELECT i.id, l.label, d.tag FROM items i "
               "LEFT JOIN lookup l ON i.grp = l.key "
               "LEFT JOIN dim2 d ON i.grp = d.key2")
        plan = build_plan(parse_query(sql), provider)

        lookup_old = [("l0", ("a", "alpha"))]
        lookup_new = [("l0", ("a", "ALPHA"))]  # update, same row id
        dim2_rows = [("d0", ("a", "t1"))]
        new_items = BASE_ITEMS + [("i3", (4, "a", 40))]

        old_rels = {"items": rel(ITEMS, BASE_ITEMS),
                    "lookup": rel(LOOKUP, lookup_old),
                    "dim2": rel(self.DIM2, dim2_rows)}
        new_rels = {"items": rel(ITEMS, new_items),
                    "lookup": rel(LOOKUP, lookup_new),
                    "dim2": rel(self.DIM2, dim2_rows)}
        deltas = {"items": delta_of(BASE_ITEMS, new_items),
                  "lookup": delta_of(lookup_old, lookup_new),
                  "dim2": ChangeSet()}
        source = DictDeltaSource(old_rels, new_rels, deltas)

        for strategy in ("direct", "rewrite"):
            from repro.engine.relation import DictResolver

            old_out = evaluate(plan, DictResolver(old_rels))
            new_out = evaluate(plan, DictResolver(new_rels))
            changes, __ = differentiate(plan, source,
                                        outer_join_strategy=strategy)
            assert apply_changes(old_out, changes) == dict(new_out.pairs())
