"""Tests for the derivation-extended isolation formalism (section 4)."""

import pytest

from repro.isolation import (Abort, Commit, DependencyKind, Derive,
                             DirectSerializationGraph, History,
                             IsolationLevel, Read, Version, Write, classify,
                             detect_phenomena, is_encapsulated)
from repro.isolation.examples import (X1, X2, Y3, Y4, figure1_history,
                                      figure2_history,
                                      snapshot_isolated_reader_history)
from repro.isolation.theorems import (check_encapsulation,
                                      check_transaction_invariance,
                                      exclude_derivation, move_derivation)


class TestHistoryStructure:
    def test_version_order_inferred_from_installs(self):
        history = History([Write(1, X1), Write(2, X2)])
        assert history.version_order["x"] == [X1, X2]
        assert history.next_version(X1) == X2
        assert history.next_version(X2) is None

    def test_implicit_commit(self):
        history = History([Write(1, X1)])
        assert 1 in history.committed

    def test_explicit_abort(self):
        history = History([Write(1, X1), Abort(1)])
        assert 1 in history.aborted
        assert 1 not in history.committed

    def test_derivation_closure_transitive(self):
        z = Version("z", 5)
        history = History([
            Write(1, X1), Derive(3, Y3, (X1,)), Derive(5, z, (Y3,))])
        assert history.derives_from(z, X1)
        assert history.base_versions_of(z) == {X1}

    def test_closure_of_written_version_is_itself(self):
        history = History([Write(1, X1)])
        assert history.base_versions_of(X1) == {X1}

    def test_cyclic_derivations_terminate(self):
        # Degenerate but must not hang.
        a = Version("a", 1)
        b = Version("b", 2)
        history = History([Derive(1, a, (b,)), Derive(2, b, (a,))])
        assert history.base_versions_of(a) == set()


class TestDsgEdges:
    def test_direct_read_dependency(self):
        history = History([Write(1, X1), Read(2, X1)])
        dsg = DirectSerializationGraph(history)
        assert any(edge.source == 1 and edge.target == 2
                   and edge.kind == DependencyKind.READ
                   for edge in dsg.edges)

    def test_read_through_derivation_targets_writer(self):
        history = History([
            Write(1, X1), Derive(3, Y3, (X1,)), Read(5, Y3)])
        dsg = DirectSerializationGraph(history)
        kinds = {(edge.source, edge.target, edge.kind) for edge in dsg.edges}
        assert (1, 5, DependencyKind.READ) in kinds
        # The deriving transaction itself gains no edges.
        assert not any(3 in (edge.source, edge.target)
                       for edge in dsg.edges)

    def test_anti_dependency_through_derivation(self):
        history = History([
            Write(1, X1), Derive(3, Y3, (X1,)), Write(2, X2), Read(5, Y3)])
        dsg = DirectSerializationGraph(history)
        assert any(edge.source == 5 and edge.target == 2
                   and edge.kind == DependencyKind.ANTI
                   for edge in dsg.edges)

    def test_write_dependency_direct(self):
        history = History([Write(1, X1), Write(2, X2)])
        dsg = DirectSerializationGraph(history)
        assert any(edge.source == 1 and edge.target == 2
                   and edge.kind == DependencyKind.WRITE
                   for edge in dsg.edges)

    def test_write_dependency_through_consecutive_derived_versions(self):
        history = History([
            Write(1, X1), Derive(3, Y3, (X1,)),
            Write(2, X2), Derive(4, Y4, (X2,))])
        dsg = DirectSerializationGraph(history)
        assert any(edge.source == 1 and edge.target == 2
                   and edge.kind == DependencyKind.WRITE
                   and "y3" in edge.reason
                   for edge in dsg.edges)

    def test_aborted_transactions_excluded_from_nodes(self):
        history = History([Write(1, X1), Abort(1), Write(2, X2)])
        dsg = DirectSerializationGraph(history)
        assert 1 not in dsg.nodes


class TestPhenomena:
    def test_g0_write_cycle(self):
        a1, a2 = Version("a", 1), Version("a", 2)
        b2, b1 = Version("b", 2), Version("b", 1)
        history = History(
            [Write(1, a1), Write(2, a2), Write(2, b2), Write(1, b1)],
            version_order={"a": [a1, a2], "b": [b2, b1]})
        report = detect_phenomena(history)
        assert report.g0

    def test_g1a_aborted_read_through_derivation(self):
        history = History([
            Write(1, X1), Abort(1), Derive(3, Y3, (X1,)), Read(5, Y3),
            Commit(5)])
        report = detect_phenomena(history)
        assert report.g1a
        assert "aborted" in report.g1a[0]

    def test_g1b_intermediate_read_through_derivation(self):
        x1a = Version("x", 1)
        # T1 writes x twice; the first install is intermediate.
        x1_final = Version("x", 10)
        history = History(
            [Write(1, x1a), Write(1, x1_final),
             Derive(3, Y3, (x1a,)), Read(5, Y3), Commit(5)],
            version_order={"x": [x1a, x1_final], "y": [Y3]})
        report = detect_phenomena(history)
        assert report.g1b
        assert "intermediate" in report.g1b[0]

    def test_g1c_circular_information_flow(self):
        a1, b2 = Version("a", 1), Version("b", 2)
        history = History([
            Write(1, a1), Read(2, a1), Write(2, b2), Read(1, b2)])
        report = detect_phenomena(history)
        assert report.g1c

    def test_clean_history(self):
        history = History([Write(1, X1), Read(2, X1), Commit(1), Commit(2)])
        report = detect_phenomena(history)
        assert report.exhibited() == []


class TestPaperFigures:
    def test_figure1_is_serializable(self):
        """'The DSG is serializable despite the clear presence of read
        skew because the refresh transactions mask the conflict.'"""
        report = detect_phenomena(figure1_history())
        assert report.exhibited() == []
        assert classify(figure1_history()) == IsolationLevel.PL_3

    def test_figure2_reveals_g_single(self):
        """'This causes a cycle to appear, exhibiting phenomenon G2 (and
        G-single), revealing the read skew.'"""
        report = detect_phenomena(figure2_history())
        assert report.g2
        assert report.g_single
        assert not report.g0 and not report.any_g1

    def test_figure2_cycle_is_t2_t5(self):
        dsg = DirectSerializationGraph(figure2_history())
        cycles = dsg.cycles()
        assert [2, 5] in [sorted(cycle) for cycle in cycles]

    def test_figure2_classifies_pl2(self):
        """PL-2 (read committed) holds; PL-2+ is violated — matching the
        paper's 'Otherwise, it is guaranteed Read Committed (PL-2)'."""
        assert classify(figure2_history()) == IsolationLevel.PL_2

    def test_snapshot_reader_is_clean(self):
        history = snapshot_isolated_reader_history()
        assert detect_phenomena(history).exhibited() == []
        assert classify(history) == IsolationLevel.PL_3


class TestTheorems:
    def test_theorem1_on_figure2(self):
        history = figure2_history()
        derivation = next(e for e in history.events
                          if isinstance(e, Derive) and e.version == Y3)
        for target in (1, 2, 5):
            assert check_transaction_invariance(history, derivation, target)

    def test_theorem1_preserves_phenomena(self):
        history = figure2_history()
        derivation = next(e for e in history.events
                          if isinstance(e, Derive) and e.version == Y3)
        moved = move_derivation(history, derivation, 1)
        assert detect_phenomena(moved).exhibited() == \
               detect_phenomena(history).exhibited()

    def test_corollary2_encapsulated_derivation_removable(self):
        w = Version("w", 1)
        d = Version("d", 1)
        history = History([
            Write(1, w), Derive(1, d, (w,)), Read(1, d), Commit(1),
            Read(2, w), Commit(2)])
        derivation = next(e for e in history.events if isinstance(e, Derive))
        assert is_encapsulated(history, derivation)
        assert check_encapsulation(history, derivation)

    def test_non_encapsulated_rejected(self):
        history = figure2_history()
        derivation = next(e for e in history.events
                          if isinstance(e, Derive) and e.version == Y3)
        assert not is_encapsulated(history, derivation)  # T5 reads y3
        with pytest.raises(ValueError):
            check_encapsulation(history, derivation)

    def test_exclusion_removes_version(self):
        w = Version("w", 1)
        d = Version("d", 1)
        history = History([
            Write(1, w), Derive(1, d, (w,)), Read(1, d), Commit(1)])
        derivation = next(e for e in history.events if isinstance(e, Derive))
        excluded = exclude_derivation(history, derivation)
        assert d not in excluded.installers
