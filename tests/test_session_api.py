"""Tests for the layered Session / PreparedStatement / Cursor API."""

import pytest

from repro import Cursor, Database, PreparedStatement, Session
from repro.api import prepared as prepared_module
from repro.api import session as session_module
from repro.errors import (BindParameterError, CatalogError, EvaluationError,
                          StatementError, UserError)
from repro.txn.manager import SnapshotReader
from repro.util.timeutil import MINUTE


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE t (a int, b text)")
    database.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    return database


# ---------------------------------------------------------------------------
# Session state
# ---------------------------------------------------------------------------

class TestSessionState:
    def test_sessions_are_distinct_objects(self, db):
        first, second = db.session(), db.session()
        assert isinstance(first, Session)
        assert first is not second
        assert first.id != second.id

    def test_as_of_isolated_between_sessions(self, db):
        pinned, live = db.session(), db.session()
        past = db.now
        db.clock.advance(MINUTE)
        db.execute("INSERT INTO t VALUES (4, 'w')")
        pinned.set_as_of(past)
        assert len(pinned.query("SELECT * FROM t").rows) == 3
        assert len(live.query("SELECT * FROM t").rows) == 4
        # The facade's default session is unaffected too.
        assert len(db.query("SELECT * FROM t").rows) == 4

    def test_as_of_context_manager_restores(self, db):
        session = db.session()
        past = db.now
        db.clock.advance(MINUTE)
        db.execute("INSERT INTO t VALUES (4, 'w')")
        with session.as_of(past):
            assert len(session.query("SELECT * FROM t").rows) == 3
        assert len(session.query("SELECT * FROM t").rows) == 4

    def test_as_of_pins_reads_not_writes(self, db):
        session = db.session()
        session.set_as_of(db.now)
        db.clock.advance(MINUTE)
        session.execute("INSERT INTO t VALUES (9, 'new')")
        # The write landed (visible to a live session)...
        assert (9, "new") in db.query("SELECT * FROM t").rows
        # ...but the pinned session still reads the old snapshot.
        assert len(session.query("SELECT * FROM t").rows) == 3

    def test_default_warehouse_fills_create_dynamic_table(self, db):
        session = db.session()
        session.use_warehouse("wh")
        session.execute(
            "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
            "AS SELECT a FROM t")
        assert db.dynamic_table("d").warehouse == "wh"

    def test_missing_warehouse_without_default_fails(self, db):
        with pytest.raises(UserError, match="WAREHOUSE"):
            db.execute("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
                       "AS SELECT a FROM t")

    def test_explicit_warehouse_beats_session_default(self, db):
        db.create_warehouse("other")
        session = db.session()
        session.use_warehouse("other")
        session.execute(
            "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' "
            "WAREHOUSE = wh AS SELECT a FROM t")
        assert db.dynamic_table("d").warehouse == "wh"

    def test_unknown_warehouse_rejected_as_default(self, db):
        with pytest.raises(CatalogError):
            db.session().use_warehouse("ghost")

    def test_role_setting_reaches_current_role(self, db):
        session = db.session()
        session.set_role("analyst")
        assert session.query("SELECT current_role() r").rows == [("analyst",)]
        assert db.query("SELECT current_role() r").rows == [("sysadmin",)]

    def test_settings_snapshot_and_generic_setter(self, db):
        session = db.session()
        session.set_setting("warehouse", "wh")
        session.set_setting("role", "ops")
        assert session.settings["warehouse"] == "wh"
        assert session.settings["role"] == "ops"
        with pytest.raises(UserError):
            session.set_setting("nope", 1)
        with pytest.raises(UserError):
            session.set_setting("as_of", "not a timestamp")


# ---------------------------------------------------------------------------
# Bind parameters
# ---------------------------------------------------------------------------

class TestBindParameters:
    def test_positional_binds(self, db):
        statement = db.prepare("SELECT b FROM t WHERE a = ?")
        assert statement.query((1,)).rows == [("x",)]
        assert statement.query((3,)).rows == [("z",)]

    def test_named_binds(self, db):
        statement = db.prepare(
            "SELECT a FROM t WHERE b = :want OR a > :floor")
        assert sorted(statement.query({"want": "x", "floor": 2}).rows) == \
            [(1,), (3,)]

    def test_named_bind_reused_occupies_one_slot(self, db):
        statement = db.prepare(
            "SELECT a FROM t WHERE a = :v OR a = :v + 1")
        assert statement.parameter_count == 1
        assert sorted(statement.query({"v": 1}).rows) == [(1,), (2,)]

    def test_mixing_styles_rejected(self, db):
        with pytest.raises(BindParameterError, match="mix"):
            db.prepare("SELECT a FROM t WHERE a = ? OR b = :name")

    def test_missing_and_extra_binds(self, db):
        positional = db.prepare("SELECT a FROM t WHERE a = ?")
        with pytest.raises(BindParameterError):
            positional.execute()
        with pytest.raises(BindParameterError, match="takes 1"):
            positional.execute((1, 2))
        named = db.prepare("SELECT a FROM t WHERE a = :v")
        with pytest.raises(BindParameterError, match="missing"):
            named.execute({})
        with pytest.raises(BindParameterError, match="unknown"):
            named.execute({"v": 1, "typo": 2})

    def test_binds_on_parameterless_statement_rejected(self, db):
        statement = db.prepare("SELECT a FROM t")
        assert len(statement.query().rows) == 3
        with pytest.raises(BindParameterError, match="no bind"):
            statement.execute((1,))

    def test_unbindable_value_rejected(self, db):
        statement = db.prepare("SELECT a FROM t WHERE a = ?")
        with pytest.raises(BindParameterError, match="no SQL type"):
            statement.execute((object(),))

    def test_type_mismatch_rejected_at_bind_time(self, db):
        # The binder infers the parameter's type from its comparison
        # context (a INT), so a wrongly-typed value fails the bind itself
        # instead of surfacing mid-execution on some row.
        statement = db.prepare("SELECT a FROM t WHERE a > ?")
        with pytest.raises(BindParameterError, match="should be INT"):
            statement.execute(("not a number",))
        # The statement stays usable with well-typed binds.
        assert sorted(statement.query((1,)).rows) == [(2,), (3,)]

    def test_conflicting_parameter_contexts_fail_at_prepare(self, db):
        with pytest.raises(UserError, match="conflicting type contexts"):
            db.prepare("SELECT a FROM t WHERE a > :p AND b LIKE :p")

    def test_null_bind(self, db):
        statement = db.prepare("SELECT a FROM t WHERE b = ?")
        assert statement.query((None,)).rows == []

    def test_parameter_in_projection_and_cast(self, db):
        statement = db.prepare("SELECT a + ?, cast(? as text) FROM t "
                               "WHERE a = 1")
        assert statement.query((10, 5)).rows == [(11, "5")]

    def test_one_shot_execute_accepts_binds(self, db):
        assert db.query("SELECT b FROM t WHERE a = ?", (2,)).rows == [("y",)]
        session = db.session()
        assert session.query("SELECT b FROM t WHERE a = :k",
                             {"k": 3}).rows == [("z",)]

    def test_parameters_rejected_outside_prepared_context(self, db):
        # A DT defining query can never carry bind parameters.
        with pytest.raises(UserError, match="parameter"):
            db.create_dynamic_table("d", "SELECT a FROM t WHERE a = ?",
                                    "1 minute", "wh")


# ---------------------------------------------------------------------------
# Prepared statements: caching and DML
# ---------------------------------------------------------------------------

class TestPreparedStatements:
    def test_prepare_returns_prepared(self, db):
        statement = db.prepare("SELECT a FROM t")
        assert isinstance(statement, PreparedStatement)
        assert statement.is_query

    def test_reexecution_does_zero_parse_or_optimize_work(self, db,
                                                          monkeypatch):
        statement = db.prepare("SELECT b FROM t WHERE a = ?")
        statement.execute((1,))  # warm

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("parse/optimize ran on re-execution")

        monkeypatch.setattr(session_module, "parse_prepared", forbidden)
        monkeypatch.setattr(prepared_module, "build_plan", forbidden)
        monkeypatch.setattr(prepared_module, "optimize", forbidden)
        assert statement.query((2,)).rows == [("y",)]
        assert statement.query((3,)).rows == [("z",)]

    def test_replan_after_ddl_is_transparent(self, db):
        statement = db.prepare("SELECT b FROM t WHERE a = ?")
        assert statement.query((1,)).rows == [("x",)]
        db.execute("CREATE TABLE unrelated (x int)")  # bumps catalog epoch
        assert statement.query((2,)).rows == [("y",)]

    def test_same_text_shares_cached_plan(self, db):
        db.prepare("SELECT a FROM t WHERE a = ?")
        hits_before = db.plan_cache.hits
        db.session().prepare("SELECT a FROM t WHERE a = ?")
        assert db.plan_cache.hits == hits_before + 1

    def test_prepared_dml_with_binds(self, db):
        insert = db.prepare("INSERT INTO t VALUES (?, ?)")
        assert insert.execute((4, "w")) is None
        update = db.prepare("UPDATE t SET b = :suffix WHERE a = :key")
        update.execute({"key": 4, "suffix": "W"})
        delete = db.prepare("DELETE FROM t WHERE a = ?")
        delete.execute((1,))
        assert sorted(db.query("SELECT * FROM t").rows) == \
            [(2, "y"), (3, "z"), (4, "W")]

    def test_executemany_inserts_in_one_transaction(self, db):
        table = db.catalog.versioned_table("t")
        versions_before = table.version_count
        insert = db.prepare("INSERT INTO t VALUES (?, ?)")
        count = insert.executemany([(10, "a"), (11, "b"), (12, "c")])
        assert count == 3
        assert table.version_count == versions_before + 1  # one commit
        assert len(db.query("SELECT * FROM t").rows) == 6

    def test_executemany_non_insert_runs_per_bind_set(self, db):
        update = db.prepare("UPDATE t SET b = ? WHERE a = ?")
        count = update.executemany([("X", 1), ("Y", 2)])
        assert count == 2
        assert sorted(db.query("SELECT b FROM t").rows) == \
            [("X",), ("Y",), ("z",)]

    def test_query_on_non_select_raises(self, db):
        statement = db.prepare("INSERT INTO t VALUES (7, 'q')")
        with pytest.raises(UserError, match="did not return rows"):
            statement.query()


# ---------------------------------------------------------------------------
# Cursors
# ---------------------------------------------------------------------------

class TestCursor:
    def test_fetch_interface(self, db):
        cursor = db.cursor()
        assert isinstance(cursor, Cursor)
        cursor.execute("SELECT a, b FROM t WHERE a >= ? ORDER BY a", (1,))
        assert cursor.description[0][0] == "a"
        assert cursor.fetchone() == (1, "x")
        assert cursor.fetchmany(1) == [(2, "y")]
        assert cursor.fetchall() == [(3, "z")]
        assert cursor.fetchone() is None
        assert cursor.fetchall() == []

    def test_iteration(self, db):
        cursor = db.cursor()
        cursor.execute("SELECT a FROM t ORDER BY a")
        assert [row for row in cursor] == [(1,), (2,), (3,)]

    def test_dml_sets_rowcount_and_no_results(self, db):
        cursor = db.cursor()
        cursor.execute("DELETE FROM t WHERE a > ?", (1,))
        assert cursor.rowcount == 2
        assert cursor.description is None
        with pytest.raises(UserError, match="no result set"):
            cursor.fetchone()

    def test_executemany(self, db):
        cursor = db.cursor()
        cursor.executemany("INSERT INTO t VALUES (?, ?)",
                           [(5, "p"), (6, "q")])
        assert cursor.rowcount == 2
        with pytest.raises(UserError):
            cursor.executemany("SELECT a FROM t", [()])

    def test_execute_accepts_prepared_statement(self, db):
        statement = db.prepare("SELECT a FROM t WHERE a = ?")
        cursor = db.cursor()
        assert cursor.execute(statement, (2,)).fetchall() == [(2,)]
        foreign = db.session().prepare("SELECT a FROM t")
        with pytest.raises(UserError, match="different session"):
            cursor.execute(foreign)

    def test_closed_cursor_rejects_use(self, db):
        cursor = db.cursor()
        cursor.close()
        with pytest.raises(UserError, match="closed"):
            cursor.execute("SELECT a FROM t")

    def test_context_manager_closes(self, db):
        with db.cursor() as cursor:
            cursor.execute("SELECT a FROM t")
            cursor.fetchone()
        with pytest.raises(UserError, match="closed"):
            cursor.fetchone()

    def test_aggregate_falls_back_to_materialized(self, db):
        cursor = db.cursor()
        cursor.execute("SELECT count(*) c, sum(a) s FROM t")
        assert cursor.fetchall() == [(3, 6)]

    def test_cursor_sees_session_as_of(self, db):
        session = db.session()
        past = db.now
        db.clock.advance(MINUTE)
        db.execute("INSERT INTO t VALUES (4, 'w')")
        session.set_as_of(past)
        cursor = session.cursor()
        cursor.execute("SELECT a FROM t")
        assert len(cursor.fetchall()) == 3


class TestCursorStreaming:
    """Pagination pulls micro-partitions lazily: fetchmany(k) never holds
    more than one partition beyond the page it serves."""

    PARTITION_ROWS = 50
    TOTAL_ROWS = 500

    @pytest.fixture
    def paged_db(self):
        database = Database()
        database.create_warehouse("wh")
        database.execute("CREATE TABLE big (id int, val int)")
        database.catalog.versioned_table("big").partition_rows = \
            self.PARTITION_ROWS
        database.execute("INSERT INTO big VALUES " + ", ".join(
            f"({i}, {i % 10})" for i in range(self.TOTAL_ROWS)))
        return database

    @pytest.fixture
    def partition_counter(self, monkeypatch):
        pulled = {"count": 0}
        original = SnapshotReader.scan_partitions

        def counting(self, table):
            for partition in original(self, table):
                pulled["count"] += 1
                yield partition

        monkeypatch.setattr(SnapshotReader, "scan_partitions", counting)
        return pulled

    def test_fetchmany_pulls_only_needed_partitions(self, paged_db,
                                                    partition_counter):
        cursor = paged_db.cursor()
        cursor.execute("SELECT id FROM big")
        assert partition_counter["count"] == 0  # nothing pulled yet

        first = cursor.fetchmany(10)
        assert len(first) == 10
        assert partition_counter["count"] == 1  # one partition covers it
        # Buffered beyond the served page: at most one partition's rows.
        assert len(cursor._buffer) <= self.PARTITION_ROWS

        cursor.fetchmany(self.PARTITION_ROWS)
        assert partition_counter["count"] <= 3
        assert len(cursor._buffer) <= self.PARTITION_ROWS

        rest = cursor.fetchall()
        assert 10 + self.PARTITION_ROWS + len(rest) == self.TOTAL_ROWS
        assert partition_counter["count"] == \
            self.TOTAL_ROWS // self.PARTITION_ROWS

    def test_limit_stops_pulling_partitions(self, paged_db,
                                            partition_counter):
        cursor = paged_db.cursor()
        cursor.execute("SELECT id FROM big LIMIT 60")
        assert len(cursor.fetchall()) == 60
        assert partition_counter["count"] <= 2

    def test_zone_map_pruning_skips_partitions_in_stream(self, paged_db):
        # ids are clustered by insertion order, so an id range maps to a
        # partition range. With the execution context supplied, bind
        # parameters prune exactly like literals: only the 2 of 10
        # partitions whose zone maps admit id < 75 produce batches.
        from repro.engine.executor import stream_evaluate
        from repro.engine.expressions import EvalContext

        prepared = paged_db.prepare("SELECT id FROM big WHERE id < ?")
        reader = paged_db.txns.reader(paged_db.now)
        ctx = EvalContext(timestamp=paged_db.now, params=(75,))
        batches = list(stream_evaluate(prepared.plan(), reader, ctx))
        assert len(batches) == 75 // self.PARTITION_ROWS + 1  # pruned to 2
        rows = [row for batch in batches for __, row in batch]
        assert sorted(rows) == [(i,) for i in range(75)]
        # The cursor path serves the same rows.
        cursor = paged_db.cursor()
        cursor.execute("SELECT id FROM big WHERE id < ?", (75,))
        assert sorted(cursor.fetchall()) == [(i,) for i in range(75)]

    def test_parameterized_bounds_prune_materialized_scans(self, paged_db):
        # The materialized path prunes on bind values too: a prepared
        # point-range query reads the same partitions as its literal twin.
        pruned_reads = []
        table = paged_db.catalog.versioned_table("big")
        original = table.relation_pruned

        def spying(version, bounds):
            pruned_reads.append(tuple(bounds))
            return original(version, bounds)

        table.relation_pruned = spying
        try:
            prepared = paged_db.prepare("SELECT id FROM big WHERE id < ?")
            assert len(prepared.query((75,)).rows) == 75
        finally:
            del table.relation_pruned
        assert pruned_reads == [(("cmp", 0, "<", 75),)]

    def test_stream_pins_snapshot_at_execute_time(self, paged_db):
        # Commits landing after execute() — even at the same wall clock —
        # must not leak into an already-open stream.
        cursor = paged_db.cursor()
        cursor.execute("SELECT id FROM big")
        paged_db.execute("INSERT INTO big VALUES (9999, 0)")
        assert len(cursor.fetchall()) == self.TOTAL_ROWS

    def test_union_all_streams_per_partition(self, paged_db,
                                             partition_counter):
        # UNION ALL concatenates branch streams: the cursor keeps
        # O(partition) memory and pulls only what the page needs.
        cursor = paged_db.cursor()
        cursor.execute("SELECT id FROM big WHERE val < 5 "
                       "UNION ALL SELECT id FROM big WHERE val >= 5")
        assert partition_counter["count"] == 0
        first = cursor.fetchmany(10)
        assert len(first) == 10
        assert partition_counter["count"] == 1
        assert len(cursor._buffer) <= self.PARTITION_ROWS
        rows = first + cursor.fetchall()
        assert len(rows) == self.TOTAL_ROWS
        # Identical rows, ids, and order to the materialized evaluation.
        expected = paged_db.query(
            "SELECT id FROM big WHERE val < 5 "
            "UNION ALL SELECT id FROM big WHERE val >= 5").rows
        assert rows == expected

    def test_union_all_stream_matches_materialized_row_ids(self, paged_db):
        from repro.engine.executor import evaluate, stream_evaluate
        from repro.engine.expressions import EvalContext

        prepared = paged_db.prepare(
            "SELECT id FROM big WHERE id < 60 "
            "UNION ALL SELECT id FROM big WHERE id >= 440")
        reader = paged_db.txns.reader(paged_db.now)
        ctx = EvalContext(timestamp=paged_db.now)
        streamed = [pair for batch in
                    stream_evaluate(prepared.plan(), reader, ctx)
                    for pair in batch]
        materialized = list(evaluate(prepared.plan(), reader, ctx).pairs())
        assert streamed == materialized

    def test_fetch_time_errors_cross_the_boundary(self, paged_db):
        def poisoned_stream():
            yield [("row:0", (1,))]
            raise KeyError("stream blew up mid-fetch")

        cursor = paged_db.cursor()
        cursor.execute("SELECT id FROM big")
        cursor.fetchmany(10)
        # Simulate an internal error surfacing from the lazy stream: it
        # must arrive wrapped, with the statement's SQL attached.
        cursor._batches = poisoned_stream()
        with pytest.raises(StatementError) as excinfo:
            cursor.fetchall()
        assert excinfo.value.sql == "SELECT id FROM big"
        assert isinstance(excinfo.value.__cause__, KeyError)

    def test_stream_matches_materialized_results(self, paged_db):
        sql = "SELECT id, val * 2 d FROM big WHERE val >= 5"
        cursor = paged_db.cursor()
        cursor.execute(sql)
        assert sorted(cursor.fetchall()) == sorted(paged_db.query(sql).rows)


# ---------------------------------------------------------------------------
# Facade back-compat and error mapping
# ---------------------------------------------------------------------------

class TestFacade:
    def test_execute_delegates_to_default_session(self, db):
        past = db.now
        db.clock.advance(MINUTE)
        db.execute("INSERT INTO t VALUES (4, 'w')")
        db.default_session.set_as_of(past)
        try:
            assert len(db.query("SELECT * FROM t").rows) == 3
        finally:
            db.default_session.set_as_of(None)
        assert len(db.query("SELECT * FROM t").rows) == 4

    def test_query_requires_rows(self, db):
        with pytest.raises(UserError):
            db.query("CREATE TABLE q (a int)")

    def test_execute_script_still_works(self, db):
        results = db.execute_script(
            "CREATE TABLE s (a int); INSERT INTO s VALUES (7); "
            "SELECT a FROM s")
        assert results[-1].rows == [(7,)]

    def test_execute_script_rejects_bind_parameters(self, db):
        with pytest.raises(UserError, match="not.*allowed.*script"):
            db.execute_script("SELECT a FROM t WHERE a = :v")
        with pytest.raises(UserError, match="\\?1"):
            db.execute_script("SELECT a FROM t; SELECT a FROM t WHERE a = ?")


class TestErrorBoundary:
    def test_repro_errors_carry_offending_sql(self, db):
        with pytest.raises(UserError) as excinfo:
            db.execute("SELECT * FROM missing")
        assert excinfo.value.sql == "SELECT * FROM missing"

    def test_parse_errors_carry_offending_sql(self, db):
        with pytest.raises(UserError) as excinfo:
            db.execute("SELEC a")
        assert excinfo.value.sql == "SELEC a"

    def test_internal_exceptions_wrapped_as_statement_error(self, db,
                                                            monkeypatch):
        def boom(*args, **kwargs):
            raise KeyError("internal lookup blew up")

        monkeypatch.setattr(db.catalog, "versioned_table", boom)
        with pytest.raises(StatementError) as excinfo:
            db.execute("INSERT INTO t VALUES (9, 'k')")
        error = excinfo.value
        assert isinstance(error, UserError)
        assert error.sql == "INSERT INTO t VALUES (9, 'k')"
        assert "KeyError" in str(error)
        assert isinstance(error.__cause__, KeyError)

    def test_bind_errors_carry_offending_sql(self, db):
        statement = db.prepare("SELECT a FROM t WHERE a = ?")
        with pytest.raises(BindParameterError) as excinfo:
            statement.execute((1, 2))
        assert excinfo.value.sql == "SELECT a FROM t WHERE a = ?"
