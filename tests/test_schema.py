"""Tests for schemas and name resolution."""

import pytest

from repro.engine.schema import Column, Schema, schema_of
from repro.engine.types import SqlType
from repro.errors import BindError


@pytest.fixture
def joined():
    left = schema_of(("id", SqlType.INT), ("name", SqlType.TEXT), table="a")
    right = schema_of(("id", SqlType.INT), ("region", SqlType.TEXT), table="b")
    return left.concat(right)


class TestResolve:
    def test_unqualified_unique(self, joined):
        assert joined.resolve("name") == 1
        assert joined.resolve("region") == 3

    def test_unqualified_ambiguous(self, joined):
        with pytest.raises(BindError, match="ambiguous"):
            joined.resolve("id")

    def test_qualified(self, joined):
        assert joined.resolve("id", "a") == 0
        assert joined.resolve("id", "b") == 2

    def test_unknown(self, joined):
        with pytest.raises(BindError, match="unknown"):
            joined.resolve("nope")

    def test_unknown_qualifier(self, joined):
        with pytest.raises(BindError):
            joined.resolve("id", "c")

    def test_maybe_resolve_none_for_missing(self, joined):
        assert joined.maybe_resolve("nope") is None

    def test_maybe_resolve_still_raises_on_ambiguity(self, joined):
        with pytest.raises(BindError):
            joined.maybe_resolve("id")


class TestTransforms:
    def test_requalify(self):
        schema = schema_of(("x", SqlType.INT), table="t").requalified("alias")
        assert schema.resolve("x", "alias") == 0

    def test_project(self, joined):
        projected = joined.project([3, 0])
        assert projected.names == ["region", "id"]

    def test_index_map_skips_duplicates(self, joined):
        mapping = joined.index_map()
        assert "id" not in mapping
        assert mapping["name"] == 1

    def test_equality_and_hash(self):
        a = schema_of(("x", SqlType.INT))
        b = schema_of(("x", SqlType.INT))
        assert a == b
        assert hash(a) == hash(b)

    def test_column_renamed(self):
        column = Column("a", SqlType.INT, "t").renamed("b")
        assert column.name == "b"
        assert column.table == "t"

    def test_iteration_and_len(self, joined):
        assert len(joined) == 4
        assert [c.name for c in joined] == ["id", "name", "id", "region"]
