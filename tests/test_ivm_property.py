"""Property-based testing of query differentiation.

The central invariant (the basis of the paper's production validations and
its randomized workload test, section 6.1): for ANY query plan and ANY
source mutation, applying Δ_I Q to Q(I₀) yields exactly Q(I₁) — same rows,
same row ids — and the change set satisfies the ($ROW_ID, $ACTION)
invariants.

Hypothesis drives random tables and random mutation scripts through a
fixed battery of plans covering every derivative rule, for both outer-join
strategies.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.executor import evaluate, force_columnar
from repro.engine.expressions import force_interpreted
from repro.engine.relation import DictResolver, Relation
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.ivm.aggstate import AggStateStore, force_stateless
from repro.ivm.changes import ChangeSet
from repro.ivm.differentiator import DictDeltaSource, differentiate
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.sql.parser import parse_query

ITEMS = schema_of(("id", SqlType.INT), ("grp", SqlType.TEXT),
                  ("val", SqlType.INT), table="items")
LOOKUP = schema_of(("key", SqlType.TEXT), ("label", SqlType.TEXT),
                   table="lookup")
PROVIDER = DictSchemaProvider({"items": ITEMS, "lookup": LOOKUP})

QUERIES = [
    "SELECT id, val FROM items WHERE val > 5",
    "SELECT id, grp, val + 1 v FROM items",
    "SELECT i.id, l.label FROM items i JOIN lookup l ON i.grp = l.key",
    "SELECT i.id, i.val, l.label FROM items i LEFT JOIN lookup l "
    "ON i.grp = l.key",
    "SELECT i.id, l.label FROM items i FULL JOIN lookup l ON i.grp = l.key",
    "SELECT grp, count(*) n, sum(val) s, min(val) lo, max(val) hi "
    "FROM items GROUP BY grp",
    "SELECT grp, count_if(val > 5) big FROM items GROUP BY grp",
    "SELECT DISTINCT grp FROM items",
    "SELECT id FROM items WHERE val > 3 UNION ALL SELECT val FROM items",
    "SELECT id, grp, row_number() over (partition by grp order by val, id)"
    " rn FROM items",
    "SELECT id, grp, sum(val) over (partition by grp order by id) run"
    " FROM items",
    "SELECT l.label, count(*) n FROM items i JOIN lookup l "
    "ON i.grp = l.key GROUP BY l.label",
]

PLANS = [build_plan(parse_query(sql), PROVIDER) for sql in QUERIES]

GROUPS = ("a", "b", "c")
KEYS = GROUPS + ("d",)

items_rows = st.lists(
    st.tuples(st.integers(0, 30), st.sampled_from(GROUPS),
              st.integers(0, 12)),
    max_size=10)
lookup_rows = st.lists(
    st.tuples(st.sampled_from(KEYS), st.sampled_from(("x", "y"))),
    max_size=4, unique_by=lambda row: row[0])
# A mutation script: per existing row index, an op; plus rows to append.
mutations = st.tuples(
    st.lists(st.sampled_from(["keep", "delete", "update"]), max_size=10),
    items_rows)


def build_tables(rows, prefix):
    return Relation(ITEMS if prefix == "i" else LOOKUP,
                    list(rows), [f"{prefix}{n}" for n in range(len(rows))])


def mutate(relation, ops, additions, prefix):
    """Apply a mutation script, returning (new relation, delta)."""
    delta = ChangeSet()
    pairs = []
    for index, (row_id, row) in enumerate(relation.pairs()):
        op = ops[index] if index < len(ops) else "keep"
        if op == "delete":
            delta.delete(row_id, row)
        elif op == "update":
            new_row = row[:-1] + (row[-1] + 100,)
            delta.delete(row_id, row)
            delta.insert(row_id, new_row)
            pairs.append((row_id, new_row))
        else:
            pairs.append((row_id, row))
    for offset, row in enumerate(additions):
        row_id = f"{prefix}new{offset}"
        delta.insert(row_id, row)
        pairs.append((row_id, row))
    return Relation.from_pairs(relation.schema, pairs), delta


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(items=items_rows, lookups=lookup_rows, item_mutation=mutations,
       lookup_ops=st.lists(st.sampled_from(["keep", "delete"]), max_size=4),
       strategy=st.sampled_from(["direct", "rewrite"]))
def test_delta_reproduces_full_recompute(items, lookups, item_mutation,
                                         lookup_ops, strategy):
    items_old = build_tables(items, "i")
    lookup_old = build_tables(lookups, "l")
    item_ops, additions = item_mutation
    items_new, items_delta = mutate(items_old, item_ops, additions, "i")
    lookup_new, lookup_delta = mutate(lookup_old, lookup_ops, [], "l")

    old_rels = {"items": items_old, "lookup": lookup_old}
    new_rels = {"items": items_new, "lookup": lookup_new}
    source = DictDeltaSource(old_rels, new_rels,
                             {"items": items_delta, "lookup": lookup_delta})

    for plan in PLANS:
        old_out = evaluate(plan, DictResolver(old_rels))
        new_out = evaluate(plan, DictResolver(new_rels))
        changes, __ = differentiate(plan, source,
                                    outer_join_strategy=strategy)
        changes.validate(dict(old_out.pairs()))

        state = dict(old_out.pairs())
        for change in changes.deletes():
            assert state.pop(change.row_id) == change.row
        for change in changes.inserts():
            assert change.row_id not in state
            state[change.row_id] = change.row
        assert state == dict(new_out.pairs())


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(items=items_rows, lookups=lookup_rows, item_mutation=mutations,
       lookup_ops=st.lists(st.sampled_from(["keep", "delete"]), max_size=4),
       strategy=st.sampled_from(["direct", "rewrite"]))
def test_three_way_evaluation_equivalence(items, lookups, item_mutation,
                                          lookup_ops, strategy):
    """The three execution paths must be byte-identical: the row-major
    reference interpreter, the row-major closure-compiled path, and the
    columnar-vectorized path — same rows, same row ids, same change sets —
    for full evaluation AND for differentiation, over every plan in the
    battery and randomized tables/mutations."""
    items_old = build_tables(items, "i")
    lookup_old = build_tables(lookups, "l")
    item_ops, additions = item_mutation
    items_new, items_delta = mutate(items_old, item_ops, additions, "i")
    lookup_new, lookup_delta = mutate(lookup_old, lookup_ops, [], "l")

    old_rels = {"items": items_old, "lookup": lookup_old}
    new_rels = {"items": items_new, "lookup": lookup_new}
    source = DictDeltaSource(old_rels, new_rels,
                             {"items": items_delta, "lookup": lookup_delta})

    for plan in PLANS:
        compiled_old = evaluate(plan, DictResolver(old_rels))
        compiled_new = evaluate(plan, DictResolver(new_rels))
        compiled_changes, __ = differentiate(plan, source,
                                             outer_join_strategy=strategy)
        with force_interpreted():
            interpreted_old = evaluate(plan, DictResolver(old_rels))
            interpreted_new = evaluate(plan, DictResolver(new_rels))
            interpreted_changes, __ = differentiate(
                plan, source, outer_join_strategy=strategy)
        with force_columnar():
            columnar_old = evaluate(plan, DictResolver(old_rels))
            columnar_new = evaluate(plan, DictResolver(new_rels))
            columnar_changes, __ = differentiate(
                plan, source, outer_join_strategy=strategy)

        assert compiled_old.row_ids == interpreted_old.row_ids
        assert compiled_old.rows == interpreted_old.rows
        assert compiled_new.row_ids == interpreted_new.row_ids
        assert compiled_new.rows == interpreted_new.rows
        assert compiled_changes.changes == interpreted_changes.changes

        assert columnar_old.row_ids == interpreted_old.row_ids
        assert columnar_old.rows == interpreted_old.rows
        assert columnar_new.row_ids == interpreted_new.row_ids
        assert columnar_new.rows == interpreted_new.rows
        assert columnar_changes.changes == interpreted_changes.changes


# Aggregate battery for the stateful three-way property: every
# retractable shape (COUNT/COUNT_IF/SUM/AVG/MIN/MAX, DISTINCT-qualified
# aggregates, scalar aggregates, DISTINCT, aggregation above a join) plus
# one non-retractable shape (median) pinning the recompute fallback.
AGG_QUERIES = [
    "SELECT grp, count(*) n, sum(val) s, min(val) lo, max(val) hi, "
    "avg(val) m FROM items GROUP BY grp",
    "SELECT grp, count_if(val > 5) big, count(distinct val) dv, "
    "sum(distinct val) ds FROM items GROUP BY grp",
    "SELECT count(*) n, sum(val) s, max(val) hi FROM items",
    "SELECT DISTINCT grp FROM items",
    "SELECT l.label, count(*) n, min(i.val) lo FROM items i "
    "JOIN lookup l ON i.grp = l.key GROUP BY l.label",
    "SELECT grp, median(val) md FROM items GROUP BY grp",
]
AGG_PLANS = [build_plan(parse_query(sql), PROVIDER) for sql in AGG_QUERIES]


def canon(changes: ChangeSet) -> list:
    """Order-independent canonical form of a change set."""
    return sorted((change.action.value, change.row_id, change.row)
                  for change in changes)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(items=items_rows,
       lookups=lookup_rows,
       scripts=st.lists(mutations, min_size=1, max_size=3))
def test_stateful_aggregate_three_way_equivalence(items, lookups, scripts):
    """The three aggregate maintenance strategies must be byte-identical
    on ``(row_id, row)`` output: the stateful accumulator fold (state
    carried across a *sequence* of refresh intervals), the endpoint-
    recompute path (``force_stateless``, the paper's semantics), and full
    recomputation — across randomized insert/update/delete workloads,
    which exercise MIN/MAX extremum deletions and vanishing groups."""
    for plan in AGG_PLANS:
        store = AggStateStore()
        items_current = build_tables(items, "i")
        lookup_current = build_tables(lookups, "l")
        for step, (item_ops, additions) in enumerate(scripts):
            items_next, items_delta = mutate(items_current, item_ops,
                                             additions, f"i{step}")
            old_rels = {"items": items_current, "lookup": lookup_current}
            new_rels = {"items": items_next, "lookup": lookup_current}
            source = DictDeltaSource(
                old_rels, new_rels,
                {"items": items_delta, "lookup": ChangeSet()})

            store.begin_refresh(("fp",), step)
            stateful, __ = differentiate(plan, source, agg_state=store)
            store.commit_refresh(step + 1)
            with force_stateless():
                stateless, __ = differentiate(plan, source)
            assert canon(stateful) == canon(stateless)

            # Both must turn Q(old) into exactly Q(new), ids included.
            old_out = evaluate(plan, DictResolver(old_rels))
            new_out = evaluate(plan, DictResolver(new_rels))
            state = dict(old_out.pairs())
            stateful.validate(state)
            for change in stateful.deletes():
                assert state.pop(change.row_id) == change.row
            for change in stateful.inserts():
                assert change.row_id not in state
                state[change.row_id] = change.row
            assert state == dict(new_out.pairs())

            items_current = items_next
        assert store.invalidations == []  # continuity held throughout


@settings(max_examples=40, deadline=None)
@given(items=items_rows, additions=items_rows)
def test_insert_only_fast_path_matches(items, additions):
    """The consolidation-skipping insert-only path must produce the same
    net effect as the consolidating path."""
    plan = build_plan(parse_query(
        "SELECT id, val FROM items WHERE val > 2"), PROVIDER)
    items_old = build_tables(items, "i")
    items_new, delta = mutate(items_old, [], additions, "i")
    source = DictDeltaSource(
        {"items": items_old, "lookup": build_tables([], "l")},
        {"items": items_new, "lookup": build_tables([], "l")},
        {"items": delta})
    changes, stats = differentiate(plan, source)
    assert stats.consolidation_skipped
    old_out = evaluate(plan, DictResolver({"items": items_old}))
    new_out = evaluate(plan, DictResolver({"items": items_new}))
    state = dict(old_out.pairs())
    for change in changes.inserts():
        state[change.row_id] = change.row
    assert state == dict(new_out.pairs())


# ---------------------------------------------------------------------------
# Parallel refresh equivalence: serial vs DAG-parallel vs partition-parallel.
# ---------------------------------------------------------------------------

import random

from repro import Database
from repro.util.timeutil import MINUTE, SECOND

_DT_NAMES = ("dt0", "dt1", "dt2", "dt3")


def _parallel_workload(seed):
    """Render a seed into a deterministic workload: a randomized multi-DT
    graph over one wide source table plus a timed mutation script. All
    randomness is materialized here, so the same workload replays
    identically on every parallelism configuration."""
    rng = random.Random(seed)

    def batch(count, tag):
        return ", ".join(
            f"({rng.randrange(0, 9)}, {tag * 100000 + n})"
            for n in range(count))

    ddl = []
    # Every DT projects (k, v), so any DT can feed any later template.
    # Join operands come only from aggregated parents (unique k), so the
    # graph cannot blow up multiplicatively.
    agg_parents = []
    parents = ["src"]
    for name in _DT_NAMES[:rng.randint(2, 4)]:
        kind = rng.choice(("agg", "filter", "distinct", "join"))
        if kind == "join" and len(agg_parents) < 2:
            kind = "agg"
        if kind == "agg":
            parent = rng.choice(parents)
            query = (f"SELECT k, sum(v) v FROM {parent} GROUP BY k")
            agg_parents.append(name)
        elif kind == "filter":
            parent = rng.choice(parents)
            modulus = rng.randint(2, 5)
            query = (f"SELECT k, v FROM {parent} "
                     f"WHERE v % {modulus} = {rng.randrange(modulus)}")
        elif kind == "distinct":
            parent = rng.choice(parents)
            query = f"SELECT DISTINCT k, v % 11 v FROM {parent}"
        else:
            left, right = rng.sample(agg_parents, 2)
            query = (f"SELECT a.k k, a.v + b.v v FROM {left} a "
                     f"JOIN {right} b ON a.k = b.k")
        ddl.append(f"CREATE DYNAMIC TABLE {name} TARGET_LAG = '1 minute' "
                   f"WAREHOUSE = wh AS {query}")
        parents.append(name)
    names = [statement.split()[3] for statement in ddl]

    mutations = []
    for step in range(1, rng.randint(2, 4)):
        statements = [f"INSERT INTO src VALUES "
                      f"{batch(rng.randint(200, 600), step)}"]
        if rng.random() < 0.5:
            modulus = rng.randint(3, 7)
            statements.append(f"DELETE FROM src WHERE v % {modulus} = "
                              f"{rng.randrange(modulus)}")
        mutations.append((step * 70 * SECOND, statements))
    return batch(rng.randint(400, 700), 0), ddl, names, mutations


def _run_parallel_workload(workload, parallelism=None, partition_fanout=None):
    initial, ddl, names, mutations = workload
    db = Database(parallelism=parallelism, partition_fanout=partition_fanout)
    db.create_warehouse("wh", size=4)
    db.execute("CREATE TABLE src (k INT, v INT)")
    db.execute(f"INSERT INTO src VALUES {initial}")
    for statement in ddl:
        db.execute(statement)

    def run_all(statements):
        def run():
            for statement in statements:
                db.execute(statement)
        return run

    for when, statements in mutations:
        db.scheduler.at(when, run_all(statements))
    db.scheduler.run_until(5 * MINUTE)
    return {name: sorted(
        db.catalog.versioned_table(name).rows_by_id().items())
        for name in names}


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10**9), workers=st.integers(2, 4),
       fanout=st.integers(2, 4))
def test_parallel_refresh_equivalence(seed, workers, fanout):
    """The tentpole invariant of the parallel refresh subsystem: for ANY
    DT graph, ANY mutation stream, and ANY worker count, DAG-parallel and
    partition-parallel refresh produce ``(row_id, row)`` states
    byte-identical to the serial loop's — same rows, same row ids, in
    every dynamic table."""
    workload = _parallel_workload(seed)
    serial = _run_parallel_workload(workload)
    dag = _run_parallel_workload(workload, parallelism=workers)
    fanned = _run_parallel_workload(workload, partition_fanout=fanout)
    combined = _run_parallel_workload(workload, parallelism=workers,
                                      partition_fanout=fanout)
    assert dag == serial
    assert fanned == serial
    assert combined == serial
