"""Fault-driven durability tests: the WAL/checkpoint failure paths
exercised through the fault-injection subsystem instead of ad-hoc file
surgery (these replace the mid-record kill-point plumbing that
``test_durability_property.py`` used to carry).

Covered here: a simulated crash mid-append leaves a torn WAL tail that
reopening truncates; a checkpoint-write failure aborts the checkpoint
with the previous checkpoint and the full WAL intact; a WAL fsync
failure escalates to degraded read-only mode (and ``exit_degraded``
ends it); and the ``"continue"`` policy counts the loss and carries on.
"""

import pytest

from repro import Database
from repro.errors import DurabilityError, InjectedFault
from repro.faults import nth_hit, registry
from repro.durability.wal import scan_wal


@pytest.fixture(autouse=True)
def clean_registry():
    registry().clear()
    yield
    registry().clear()


def open_db(path) -> Database:
    return Database(path=str(path))


def seed(db) -> None:
    db.create_warehouse("wh")
    db.execute("CREATE TABLE t (id int, val int)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")


def rows(db):
    return sorted(db.query("SELECT * FROM t").rows)


def torn_crash() -> InjectedFault:
    return InjectedFault("simulated crash mid-append", point="wal.torn",
                         leave_torn=True)


class TestTornTail:
    def test_torn_append_is_truncated_on_reopen(self, tmp_path):
        db = open_db(tmp_path)
        seed(db)
        registry().arm("wal.torn", nth_hit(1), error=torn_crash)
        # The commit fails before any in-memory mutation (redo-log
        # ordering: WAL append precedes apply), and the database drops
        # into degraded read-only mode.
        with pytest.raises(DurabilityError):
            db.execute("INSERT INTO t VALUES (3, 30)")
        assert rows(db) == [(1, 10), (2, 20)]
        assert db.durability.degraded is not None
        db.close()  # the "crash": the torn frame is still on disk

        wal_path = str(tmp_path / "wal.log")
        scan = scan_wal(wal_path)
        assert scan.file_size > scan.good_end, "no torn tail was left"

        db = open_db(tmp_path)
        assert db.durability.recovery.torn_bytes > 0
        assert rows(db) == [(1, 10), (2, 20)]
        # The reopened WAL is clean again: new commits append and
        # survive another restart.
        db.execute("INSERT INTO t VALUES (4, 40)")
        db.close()
        db = open_db(tmp_path)
        assert rows(db) == [(1, 10), (2, 20), (4, 40)]
        assert db.durability.recovery.torn_bytes == 0
        db.close()

    def test_two_recoveries_of_a_torn_tail_agree(self, tmp_path):
        db = open_db(tmp_path)
        seed(db)
        registry().arm("wal.torn", nth_hit(1), error=torn_crash)
        with pytest.raises(DurabilityError):
            db.execute("INSERT INTO t VALUES (3, 30)")
        db.close()
        first = open_db(tmp_path)
        state = rows(first)
        seq = first.durability.wal.next_seq
        first.close()
        second = open_db(tmp_path)
        assert rows(second) == state
        assert second.durability.wal.next_seq == seq
        second.close()


class TestCheckpointWriteFailure:
    def test_failed_checkpoint_leaves_wal_replayable(self, tmp_path):
        db = open_db(tmp_path)
        seed(db)
        registry().arm("checkpoint.write", nth_hit(1))
        before = db.durability.wal.position()
        with pytest.raises(InjectedFault):
            db.checkpoint()
        # The abort happened before the WAL reset: nothing was lost and
        # nothing was installed.
        assert db.durability.wal.position() == before
        assert db.durability.last_checkpoint_seq == 0
        # The database stays fully writable — this was not a commit-path
        # failure, so no degraded mode.
        assert db.durability.degraded is None
        db.execute("INSERT INTO t VALUES (3, 30)")
        db.close()

        db = open_db(tmp_path)
        assert rows(db) == [(1, 10), (2, 20), (3, 30)]
        # A later checkpoint (fault spent) works end to end.
        db.checkpoint()
        assert db.durability.last_checkpoint_seq == 1
        db.close()
        db = open_db(tmp_path)
        assert rows(db) == [(1, 10), (2, 20), (3, 30)]
        assert db.durability.recovery.checkpoint_seq == 1
        db.close()


class TestDegradedReadOnly:
    def test_fsync_failure_escalates_and_exit_degraded_recovers(
            self, tmp_path):
        db = open_db(tmp_path)
        seed(db)
        registry().arm("wal.fsync", nth_hit(1))
        with pytest.raises(DurabilityError):
            db.execute("INSERT INTO t VALUES (3, 30)")
        assert db.durability.wal_failures == 1
        assert "InjectedFault" in db.durability.degraded
        # Reads keep serving the last consistent state...
        assert rows(db) == [(1, 10), (2, 20)]
        # ...while writes are refused up front (check_writable, before
        # the WAL is touched — the failure count does not grow).
        with pytest.raises(DurabilityError, match="degraded read-only"):
            db.execute("INSERT INTO t VALUES (4, 40)")
        assert db.durability.wal_failures == 1

        db.durability.exit_degraded()
        db.execute("INSERT INTO t VALUES (5, 50)")
        db.close()
        # The failed commit rolled the WAL back to the last good record:
        # recovery sees a clean log with only the real commits.
        db = open_db(tmp_path)
        assert db.durability.recovery.torn_bytes == 0
        assert rows(db) == [(1, 10), (2, 20), (5, 50)]
        db.close()

    def test_continue_policy_counts_loss_and_proceeds(self, tmp_path):
        db = Database(path=str(tmp_path), wal_failure_policy="continue")
        seed(db)
        registry().arm("wal.append", nth_hit(1))
        # The commit succeeds despite the lost record — an explicit opt
        # into running without durability for it.
        db.execute("INSERT INTO t VALUES (3, 30)")
        assert db.durability.wal_failures == 1
        assert db.durability.degraded is None
        assert rows(db) == [(1, 10), (2, 20), (3, 30)]
        db.execute("INSERT INTO t VALUES (4, 40)")
        db.close()
        # Only the logged commit survives the restart; the lost one is
        # gone — visible, counted, never silent.
        db = open_db(tmp_path)
        assert rows(db) == [(1, 10), (2, 20), (4, 40)]
        db.close()
