"""Tests for deterministic row-id derivation (section 5.5 / 5.5.2)."""

from hypothesis import given, strategies as st

from repro.ivm import rowid


class TestPrefixes:
    def test_plaintext_prefixes(self):
        """Section 5.5.2: row ids 'contain plaintext prefixes to improve
        the performance of joins using row IDs as a key'."""
        assert rowid.base_id(1, 2).startswith("b")
        assert rowid.join_id("a", "b").startswith("j:")
        assert rowid.outer_left_id("a").startswith("lo:")
        assert rowid.outer_right_id("a").startswith("ro:")
        assert rowid.union_id(0, "a").startswith("u0:")
        assert rowid.group_id(("k",)).startswith("g:")
        assert rowid.distinct_id((1,)).startswith("d:")
        assert rowid.flatten_id("a", 0).startswith("f:")

    def test_prefixes_disjoint_across_operators(self):
        derived = {
            rowid.join_id("x", "y"), rowid.outer_left_id("x"),
            rowid.outer_right_id("x"), rowid.union_id(1, "x"),
            rowid.group_id(("x",)), rowid.distinct_id(("x",)),
            rowid.flatten_id("x", 0)}
        assert len(derived) == 7


class TestDeterminism:
    def test_join_id_depends_on_both_sides(self):
        assert rowid.join_id("a", "b") != rowid.join_id("a", "c")
        assert rowid.join_id("a", "b") != rowid.join_id("b", "a")

    def test_join_id_injective_on_boundaries(self):
        # ("ab","c") must differ from ("a","bc") — separator matters.
        assert rowid.join_id("ab", "c") != rowid.join_id("a", "bc")

    def test_group_id_value_based(self):
        assert rowid.group_id((1, "x")) == rowid.group_id((1, "x"))
        assert rowid.group_id((1,)) != rowid.group_id((2,))

    def test_flatten_id_per_element(self):
        assert rowid.flatten_id("r", 0) != rowid.flatten_id("r", 1)

    @given(st.text(min_size=1, max_size=10), st.text(min_size=1, max_size=10))
    def test_stable_across_calls(self, left, right):
        assert rowid.join_id(left, right) == rowid.join_id(left, right)

    @given(st.integers(0, 5), st.text(max_size=8))
    def test_union_branches_distinct(self, branch, input_id):
        assert rowid.union_id(branch, input_id) != \
               rowid.union_id(branch + 1, input_id)
