"""Tests for automatic query fragmentation (the section 5.5.3 extension)."""

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.core.fragments import (fragment_name, is_fragment_name,
                                  split_union)
from repro.sql.parser import parse_query
from repro.util.timeutil import MINUTE


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE src (id int, grp text, val int)")
    database.execute(
        "INSERT INTO src VALUES (1, 'a', 10), (2, 'b', 20), (3, 'a', 30)")
    return database

UNION_SQL = ("SELECT id, val FROM src WHERE val < 15 "
             "UNION ALL SELECT id, val * 2 FROM src WHERE val >= 15")


class TestSplitting:
    def test_split_union(self):
        branches = split_union(parse_query(UNION_SQL))
        assert len(branches) == 2
        assert all(not branch.union_all for branch in branches)

    def test_non_union_not_split(self):
        assert split_union(parse_query("SELECT 1")) is None

    def test_order_by_blocks_split(self):
        query = parse_query(UNION_SQL + " ORDER BY 1")
        assert split_union(query) is None

    def test_fragment_naming(self):
        assert fragment_name("d", 0) == "_d$frag0"
        assert is_fragment_name("_d$frag0")
        assert not is_fragment_name("d")


class TestFragmentedDts:
    def test_fragments_created_hidden(self, db):
        db.create_dynamic_table("u", UNION_SQL, "1 minute", "wh",
                                auto_fragment=True)
        visible = [dt.name for dt in db.dynamic_tables()]
        everything = [dt.name for dt in
                      db.dynamic_tables(include_hidden=True)]
        assert visible == ["u"]
        assert set(everything) == {"u", "_u$frag0", "_u$frag1"}

    def test_results_match_unfragmented(self, db):
        db.create_dynamic_table("plain", UNION_SQL, "1 minute", "wh")
        db.create_dynamic_table("frag", UNION_SQL, "1 minute", "wh",
                                auto_fragment=True)
        db.execute("INSERT INTO src VALUES (4, 'c', 5), (5, 'c', 50)")
        db.refresh_dynamic_table("plain")
        db.refresh_dynamic_table("frag")
        assert sorted(db.query("SELECT * FROM plain").rows) == \
               sorted(db.query("SELECT * FROM frag").rows)
        assert db.check_dvs("frag")

    def test_fragments_refresh_with_downstream_lag(self, db):
        db.create_dynamic_table("u", UNION_SQL, "1 minute", "wh",
                                auto_fragment=True)
        db.execute("INSERT INTO src VALUES (9, 'z', 1)")
        db.run_for(2 * MINUTE)
        assert (9, 1) in db.query("SELECT * FROM u").rows
        for index in range(2):
            assert db.check_dvs(fragment_name("u", index))

    def test_mixed_refresh_modes(self, db):
        """The payoff: one non-incrementalizable branch no longer forces
        the whole query to FULL — only its own fragment. (Scalar
        aggregates are incremental now, so the full-only branch uses an
        unpartitioned window, which still blocks incremental refresh.)"""
        mixed = ("SELECT id, val FROM src WHERE val < 15 "
                 "UNION ALL SELECT id, row_number() over (order by id) "
                 "FROM src WHERE val >= 15")

        plain = db.create_dynamic_table("plain", mixed, "1 minute", "wh")
        assert plain.effective_refresh_mode.value == "full"

        db.create_dynamic_table("frag", mixed, "1 minute", "wh",
                                auto_fragment=True)
        frag0 = db.dynamic_table(fragment_name("frag", 0))
        frag1 = db.dynamic_table(fragment_name("frag", 1))
        main = db.dynamic_table("frag")
        assert frag0.effective_refresh_mode.value == "incremental"
        assert frag1.effective_refresh_mode.value == "full"
        assert main.effective_refresh_mode.value == "incremental"

        db.execute("INSERT INTO src VALUES (6, 'q', 3)")
        db.refresh_dynamic_table("frag")
        assert frag0.refresh_history[-1].action == RefreshAction.INCREMENTAL
        assert frag1.refresh_history[-1].action == RefreshAction.FULL
        assert db.check_dvs("frag")

    def test_non_union_query_unaffected_by_flag(self, db):
        dt = db.create_dynamic_table(
            "simple", "SELECT id FROM src", "1 minute", "wh",
            auto_fragment=True)
        assert [d.name for d in db.dynamic_tables(include_hidden=True)] == \
               ["simple"]

    def test_scheduled_operation(self, db):
        db.create_dynamic_table("u", UNION_SQL, "1 minute", "wh",
                                auto_fragment=True)
        for step in range(4):
            db.at((step + 1) * MINUTE,
                  lambda s=step: db.execute(
                      f"INSERT INTO src VALUES ({10 + s}, 'x', {s * 9})"))
        db.run_for(6 * MINUTE)
        assert db.check_dvs("u")
        plain_rows = db.query_at(
            f"SELECT id, val FROM src WHERE val < 15 "
            f"UNION ALL SELECT id, val * 2 FROM src WHERE val >= 15",
            db.dynamic_table("u").data_timestamp).sorted_rows()
        assert db.query("SELECT * FROM u").sorted_rows() == plain_rows


class TestExplain:
    def test_explain_renders_plan(self, db):
        text = db.explain("SELECT grp, count(*) FROM src GROUP BY grp")
        assert "Aggregate" in text and "Scan(src)" in text

    def test_explain_unoptimized(self, db):
        optimized = db.explain(
            "SELECT id FROM src WHERE 1 = 1")
        raw = db.explain("SELECT id FROM src WHERE 1 = 1", optimized=False)
        assert "Filter" not in optimized
        assert "Filter" in raw
