"""Fuzz tests: the SQL frontend must fail cleanly, never crash."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.analysis import AnalysisReport
from repro.errors import SqlError, UserError
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_statement

SQL_CHARS = st.text(
    alphabet="abcdefgSELECT FROMWHERE*(),;'\"=<>!.:0123456789_\n\t-/%+",
    max_size=80)


@settings(max_examples=300, deadline=None)
@given(SQL_CHARS)
def test_lexer_never_crashes(text):
    try:
        tokens = tokenize(text)
        assert tokens  # at least EOF
    except SqlError:
        pass  # clean rejection


@settings(max_examples=300, deadline=None)
@given(SQL_CHARS)
def test_parser_never_crashes(text):
    try:
        parse_statement(text)
    except SqlError:
        pass  # clean rejection


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from([
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "JOIN", "ON",
    "t", "a", "b", "1", "'x'", "*", ",", "(", ")", "=", "AND", "count",
    "UNION", "ALL", "HAVING", "LIMIT", "AS", "::int", "CASE", "WHEN",
    "THEN", "END", "NOT", "NULL", "IS",
]), max_size=25))
def test_token_soup_never_crashes(words):
    try:
        parse_statement(" ".join(words))
    except SqlError:
        pass


# ---------------------------------------------------------------------------
# Session.analyze: any input yields a report or a UserError, never an
# internal exception.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def analyze_session():
    db = Database()
    db.execute("CREATE TABLE t (a NUMBER, b VARCHAR)")
    return db.default_session


@settings(max_examples=300, deadline=None)
@given(SQL_CHARS)
def test_analyze_never_raises_internal(analyze_session, text):
    try:
        report = analyze_session.analyze(text)
    except UserError:
        pass  # the one sanctioned escape hatch
    else:
        assert isinstance(report, AnalysisReport)
        for diagnostic in report:
            assert diagnostic.code.startswith("RPR")


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from([
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "JOIN", "ON",
    "t", "a", "b", "1", "'x'", "*", ",", "(", ")", "=", "AND", "count",
    "UNION", "ALL", "HAVING", "LIMIT", "AS", "NULL", "IS", "NOT",
    "BETWEEN", "INSERT", "INTO", "VALUES", "DELETE", "UPDATE", "SET",
]), max_size=25))
def test_analyze_token_soup(analyze_session, words):
    try:
        analyze_session.analyze(" ".join(words))
    except UserError:
        pass
