"""Fuzz tests: the SQL frontend must fail cleanly, never crash."""

from hypothesis import given, settings, strategies as st

from repro.errors import SqlError
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_statement

SQL_CHARS = st.text(
    alphabet="abcdefgSELECT FROMWHERE*(),;'\"=<>!.:0123456789_\n\t-/%+",
    max_size=80)


@settings(max_examples=300, deadline=None)
@given(SQL_CHARS)
def test_lexer_never_crashes(text):
    try:
        tokens = tokenize(text)
        assert tokens  # at least EOF
    except SqlError:
        pass  # clean rejection


@settings(max_examples=300, deadline=None)
@given(SQL_CHARS)
def test_parser_never_crashes(text):
    try:
        parse_statement(text)
    except SqlError:
        pass  # clean rejection


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from([
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "JOIN", "ON",
    "t", "a", "b", "1", "'x'", "*", ",", "(", ")", "=", "AND", "count",
    "UNION", "ALL", "HAVING", "LIMIT", "AS", "::int", "CASE", "WHEN",
    "THEN", "END", "NOT", "NULL", "IS",
]), max_size=25))
def test_token_soup_never_crashes(words):
    try:
        parse_statement(" ".join(words))
    except SqlError:
        pass
