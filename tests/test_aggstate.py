"""Tests for stateful incremental aggregation: the accumulator protocol
(:mod:`repro.engine.aggregates`), the per-DT state store lifecycle
(:mod:`repro.ivm.aggstate`), and the refresh engine's state management —
lazy initialization, interval-continuity self-healing, invalidation on
FULL/REINITIALIZE, transaction/savepoint interaction, and the
``force_stateless`` reference path."""

import pytest

from repro import Database
from repro.errors import UserError
from repro.core.dynamic_table import RefreshAction
from repro.engine.aggregates import (AvgAccumulator, CountIfAccumulator,
                                     CountStarAccumulator,
                                     DistinctAccumulator, ExtremeAccumulator,
                                     RetractionError, SumAccumulator,
                                     make_accumulator, retractable_call)
from repro.engine.relation import Relation
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.ivm.aggstate import (AggStateStore, force_stateless,
                                stateful_aggregate_supported)
from repro.ivm.changes import ChangeSet
from repro.ivm.differentiator import DictDeltaSource, differentiate
from repro.plan import logical as lp
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.sql.parser import parse_query
from repro.util.timeutil import MINUTE

# ---------------------------------------------------------------------------
# Accumulators
# ---------------------------------------------------------------------------


class TestAccumulators:
    def test_count_star_counts_nulls(self):
        acc = CountStarAccumulator()
        acc.insert_arrays([1, None, 3])
        assert acc.finalize() == 3
        acc.retract(None)
        assert acc.finalize() == 2

    def test_sum_null_at_zero_rows(self):
        acc = SumAccumulator()
        acc.insert(5)
        acc.insert(None)  # NULLs do not count
        acc.insert(7)
        assert acc.finalize() == 12
        acc.retract_arrays([5, 7])
        assert acc.finalize() is None  # all-NULL group sums to NULL

    def test_sum_retract_below_zero_rows_raises(self):
        acc = SumAccumulator()
        acc.insert(5)
        with pytest.raises(RetractionError):
            acc.retract_arrays([5, 5])

    def test_avg_exact_from_sum_and_count(self):
        acc = AvgAccumulator()
        acc.insert_arrays([10, 20, None, 40])
        assert acc.finalize() == 70 / 3

    def test_count_if_counts_only_true(self):
        acc = CountIfAccumulator()
        acc.insert_arrays([True, False, None, True])
        assert acc.finalize() == 2
        acc.retract(True)
        assert acc.finalize() == 1

    def test_extreme_eviction_rescans_remaining_values(self):
        acc = ExtremeAccumulator(want_max=True)
        acc.insert_arrays([3, 9, 9, 5])
        assert acc.finalize() == 9
        acc.retract(9)           # one copy left
        assert acc.finalize() == 9
        acc.retract(9)           # extremum evicted: rescan finds 5
        assert acc.finalize() == 5
        acc.retract_arrays([3, 5])
        assert acc.finalize() is None

    def test_extreme_retract_absent_value_raises(self):
        acc = ExtremeAccumulator(want_max=False)
        acc.insert(4)
        with pytest.raises(RetractionError):
            acc.retract(99)

    def test_merge_partial_states(self):
        left, right = SumAccumulator(), SumAccumulator()
        left.insert_arrays([1, 2])
        right.insert_arrays([3, None])
        left.merge(right)
        assert left.finalize() == 6

        low, high = ExtremeAccumulator(True), ExtremeAccumulator(True)
        low.insert_arrays([1, 2])
        high.insert_arrays([9])
        low.merge(high)
        assert low.finalize() == 9

    def test_distinct_accumulator_counts_values_not_rows(self):
        acc = DistinctAccumulator("count")
        acc.insert_arrays([7, 7, 8, None])
        assert acc.finalize() == 2
        acc.retract(7)           # one copy of 7 remains
        assert acc.finalize() == 2
        acc.retract(7)
        assert acc.finalize() == 1

    def test_distinct_sum_on_transitions_only(self):
        acc = DistinctAccumulator("sum")
        acc.insert_arrays([5, 5, 10])
        assert acc.finalize() == 15
        acc.retract(5)
        assert acc.finalize() == 15  # a copy of 5 is still present
        acc.retract(5)
        assert acc.finalize() == 10

    def test_distinct_count_over_non_summable_values(self):
        """Regression: count(distinct x) must not maintain a numeric
        total, so TEXT (and other non-summable) values work."""
        acc = DistinctAccumulator("count")
        acc.insert_arrays(["red", "red", "blue", None])
        assert acc.finalize() == 2
        acc.retract("red")
        acc.retract("red")
        assert acc.finalize() == 1


INT_FLOAT = DictSchemaProvider({
    "t": schema_of(("g", SqlType.TEXT), ("i", SqlType.INT),
                   ("f", SqlType.FLOAT), table="t")})


def calls_of(sql) -> list[lp.AggregateCall]:
    plan = build_plan(parse_query(sql), INT_FLOAT)
    agg = next(node for node in plan.walk()
               if isinstance(node, lp.Aggregate))
    return list(agg.aggregates)


class TestRetractability:
    def test_exact_shapes_are_retractable(self):
        calls = calls_of("SELECT g, count(*) a, count(i) b, sum(i) c, "
                         "avg(i) d, min(i) e, max(i) f2, "
                         "count_if(i > 3) g2, count(distinct i) h, "
                         "sum(distinct i) k FROM t GROUP BY g")
        assert all(retractable_call(call) for call in calls)
        for call in calls:
            make_accumulator(call)  # every shape has a factory product

    def test_order_dependent_functions_are_not(self):
        calls = calls_of("SELECT g, median(i) a, listagg(g) b, stddev(i) c,"
                         " any_value(i) d FROM t GROUP BY g")
        assert not any(retractable_call(call) for call in calls)

    def test_float_arithmetic_is_not_retractable(self):
        sum_f, min_f, count_f = calls_of(
            "SELECT g, sum(f) a, min(f) b, count(f) c FROM t GROUP BY g")
        assert not retractable_call(sum_f)   # running float sums drift
        assert not retractable_call(min_f)   # NaN comparisons are ordered
        assert retractable_call(count_f)     # NULL-ness is exact

    def test_unsupported_call_routes_node_to_recompute(self):
        plan = build_plan(parse_query(
            "SELECT g, median(i) m FROM t GROUP BY g"), INT_FLOAT)
        agg = next(node for node in plan.walk()
                   if isinstance(node, lp.Aggregate))
        supported, reason = stateful_aggregate_supported(agg)
        assert not supported and "median" in reason


# ---------------------------------------------------------------------------
# Store lifecycle (unit level)
# ---------------------------------------------------------------------------

ITEMS = schema_of(("id", SqlType.INT), ("grp", SqlType.TEXT),
                  ("val", SqlType.INT), table="items")
PROVIDER = DictSchemaProvider({"items": ITEMS})
AGG_PLAN = build_plan(parse_query(
    "SELECT grp, count(*) n, sum(val) s, min(val) lo, max(val) hi "
    "FROM items GROUP BY grp"), PROVIDER)

BASE = [("i0", (1, "a", 10)), ("i1", (2, "a", 20)), ("i2", (3, "b", 30))]


def rel(pairs):
    return Relation.from_pairs(ITEMS, pairs)


def delta_of(old, new):
    delta = ChangeSet()
    old_map, new_map = dict(old), dict(new)
    for row_id, row in old:
        if row_id not in new_map:
            delta.delete(row_id, row)
        elif new_map[row_id] != row:
            delta.delete(row_id, row)
            delta.insert(row_id, new_map[row_id])
    for row_id, row in new:
        if row_id not in old_map:
            delta.insert(row_id, row)
    return delta


def source_for(old, new):
    return DictDeltaSource({"items": rel(old)}, {"items": rel(new)},
                           {"items": delta_of(old, new)})


def canon(changes):
    """Order-independent canonical form of a change set."""
    return sorted((change.action.value, change.row_id, change.row)
                  for change in changes)


class TestStoreLifecycle:
    def test_commit_advances_token_and_keeps_state(self):
        store = AggStateStore()
        store.begin_refresh(("fp",), 0)
        differentiate(AGG_PLAN, source_for(BASE, BASE[:2]), agg_state=store)
        store.commit_refresh(1)
        assert store.advanced_to == 1
        assert store.node_count == 1
        assert store.invalidations == []

    def test_uncommitted_refresh_resets_on_next_begin(self):
        store = AggStateStore()
        store.begin_refresh(("fp",), 0)
        differentiate(AGG_PLAN, source_for(BASE, BASE[:2]), agg_state=store)
        # No commit_refresh: the merge failed. The partial fold must not
        # survive into the next interval.
        store.begin_refresh(("fp",), 0)
        assert store.node_count == 0
        assert any("did not commit" in reason
                   for reason in store.invalidations)

    def test_fingerprint_change_resets(self):
        store = AggStateStore()
        store.begin_refresh(("fp", 1), 0)
        differentiate(AGG_PLAN, source_for(BASE, BASE[:2]), agg_state=store)
        store.commit_refresh(1)
        store.begin_refresh(("fp", 2), 1)  # DDL epoch moved
        assert store.node_count == 0
        assert any("plan changed" in reason
                   for reason in store.invalidations)

    def test_out_of_order_interval_resets(self):
        """Regression: an interval whose old endpoint is not the version
        the state was advanced to (overlapping or replayed refresh) must
        reinitialize, not fold into mismatched accumulators."""
        store = AggStateStore()
        step1 = BASE + [("i3", (4, "b", 40))]
        store.begin_refresh(("fp",), 0)
        differentiate(AGG_PLAN, source_for(BASE, step1), agg_state=store)
        store.commit_refresh(1)

        # Replay the same interval (old token 0, but state is at 1).
        store.begin_refresh(("fp",), 0)
        changes, stats = differentiate(AGG_PLAN, source_for(BASE, step1),
                                       agg_state=store)
        store.commit_refresh(1)
        assert any("out-of-order" in reason
                   for reason in store.invalidations)
        # The reinitialized fold is still correct for the replayed interval.
        assert stats.agg_stateful_folds == 1
        with force_stateless():
            reference, __ = differentiate(AGG_PLAN, source_for(BASE, step1))
        assert canon(changes) == canon(reference)

    def test_no_data_advances_clean_token_only(self):
        store = AggStateStore()
        store.begin_refresh(("fp",), 0)
        differentiate(AGG_PLAN, source_for(BASE, BASE[:2]), agg_state=store)
        store.commit_refresh(1)
        store.note_no_data(2)
        assert store.advanced_to == 2
        store.begin_refresh(("fp",), 2)  # continuity holds after NO_DATA
        assert store.node_count == 1

    def test_quiet_node_does_not_shift_handles(self):
        """Regression: a node whose child delta is empty one refresh must
        still claim its state handle, or every later aggregate-class node
        would reclaim the wrong node's accumulators (encounter-order
        keying). Two GROUP BY branches over different tables; the second
        refresh touches only the second table."""
        two_tables = DictSchemaProvider({"items": ITEMS,
                                         "items2": ITEMS.requalified("items2")})
        plan = build_plan(parse_query(
            "SELECT grp, count(*) n FROM items GROUP BY grp "
            "UNION ALL SELECT grp, sum(val) s FROM items2 GROUP BY grp"),
            two_tables)
        other = [("j0", (7, "k", 21))]

        def two_source(old1, new1, old2, new2):
            return DictDeltaSource(
                {"items": rel(old1), "items2": rel(old2)},
                {"items": rel(new1), "items2": rel(new2)},
                {"items": delta_of(old1, new1),
                 "items2": delta_of(old2, new2)})

        store = AggStateStore()
        # Refresh 1: both tables change (both nodes fold + initialize).
        step1 = BASE + [("i3", (4, "k", 1))]
        other1 = other + [("j1", (8, "k", 12))]
        store.begin_refresh(("fp",), 0)
        differentiate(plan, two_source(BASE, step1, other, other1),
                      agg_state=store)
        store.commit_refresh(1)

        # Refresh 2: only items2 changes; the count node's delta is empty.
        other2 = other1 + [("j2", (9, "k", 100))]
        store.begin_refresh(("fp",), 1)
        changes, stats = differentiate(
            plan, two_source(step1, step1, other1, other2), agg_state=store)
        store.commit_refresh(2)
        assert stats.agg_stateful_folds == 1  # only the sum node folded
        assert store.invalidations == []
        with force_stateless():
            reference, __ = differentiate(
                plan, two_source(step1, step1, other1, other2))
        assert canon(changes) == canon(reference)

    def test_fold_anomaly_invalidates_and_falls_back(self):
        """A retraction the state never saw (RowIdIntegrityError-class
        corruption) drops the store and recomputes — same answer, no
        silent accumulator corruption."""
        store = AggStateStore()
        step0 = BASE + [("i3", (4, "b", 40))]
        store.begin_refresh(("fp",), 0)
        differentiate(AGG_PLAN, source_for(BASE, step0), agg_state=store)
        store.commit_refresh(1)

        # Sabotage: forget every group behind the store's back.
        agg_node = next(node for node in AGG_PLAN.walk()
                        if isinstance(node, lp.Aggregate))
        node = store.node_state("Aggregate", 0, agg_node)
        node.groups.clear()

        step = BASE[1:]  # deletes i0 → retracts into a missing group
        store.begin_refresh(("fp",), 1)
        changes, stats = differentiate(AGG_PLAN, source_for(BASE, step),
                                       agg_state=store)
        assert stats.agg_recomputes == 1
        assert stats.agg_stateful_folds == 0
        assert any("AggStateInconsistency" in reason
                   for reason in store.invalidations)
        with force_stateless():
            reference, __ = differentiate(AGG_PLAN, source_for(BASE, step))
        assert canon(changes) == canon(reference)


# ---------------------------------------------------------------------------
# Refresh-engine integration
# ---------------------------------------------------------------------------


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE src (id int, grp text, val int)")
    database.execute(
        "INSERT INTO src VALUES (1, 'a', 10), (2, 'b', 20), (3, 'a', 30)")
    return database


def make_dt(db, name="d", sql="SELECT grp, count(*) n, sum(val) s, "
                              "min(val) lo, max(val) hi FROM src GROUP BY grp",
            **kwargs):
    return db.create_dynamic_table(name, sql, "1 minute", "wh", **kwargs)


class TestRefreshIntegration:
    def test_lazy_init_then_pure_fold(self, db):
        """The first stateful refresh pays one endpoint scan to build the
        accumulators; later refreshes fold the delta with no endpoint
        evaluation at all."""
        dt = make_dt(db)
        db.execute("INSERT INTO src VALUES (4, 'a', 5)")
        db.refresh_dynamic_table("d")
        first = dt.refresh_history[-1]
        assert first.action == RefreshAction.INCREMENTAL
        assert first.ivm_stats.agg_stateful_folds == 1
        assert first.ivm_stats.endpoint_evals == 1  # the lazy init scan

        db.execute("INSERT INTO src VALUES (5, 'b', 50)")
        db.refresh_dynamic_table("d")
        second = dt.refresh_history[-1]
        assert second.ivm_stats.agg_stateful_folds == 1
        assert second.ivm_stats.endpoint_evals == 0  # pure O(|delta|) fold
        assert db.check_dvs("d")
        assert sorted(db.query("SELECT * FROM d").rows) == [
            ("a", 3, 45, 5, 30), ("b", 2, 70, 20, 50)]

    def test_extremum_deletion_and_group_vanish(self, db):
        dt = make_dt(db)
        db.execute("DELETE FROM src WHERE val = 30")   # max of group a
        db.refresh_dynamic_table("d")
        assert db.check_dvs("d")
        db.execute("DELETE FROM src WHERE grp = 'b'")  # group vanishes
        db.refresh_dynamic_table("d")
        assert dt.refresh_history[-1].ivm_stats.agg_stateful_folds == 1
        assert db.check_dvs("d")
        assert sorted(db.query("SELECT * FROM d").rows) == [
            ("a", 1, 10, 10, 10)]

    def test_scalar_aggregate_end_to_end(self, db):
        """CREATE DYNAMIC TABLE ... SELECT COUNT(*)/SUM(x) works without
        FULL mode, through empty-input transitions."""
        dt = make_dt(db, name="s",
                     sql="SELECT count(*) n, sum(val) s FROM src")
        assert dt.effective_refresh_mode.value == "incremental"
        assert db.query("SELECT * FROM s").rows == [(3, 60)]

        db.execute("INSERT INTO src VALUES (4, 'c', 40)")
        db.refresh_dynamic_table("s")
        assert dt.refresh_history[-1].action == RefreshAction.INCREMENTAL
        assert dt.refresh_history[-1].ivm_stats.agg_stateful_folds == 1
        assert db.query("SELECT * FROM s").rows == [(4, 100)]

        db.execute("DELETE FROM src WHERE id > 0")  # empty input: one row
        db.refresh_dynamic_table("s")
        assert db.query("SELECT * FROM s").rows == [(0, None)]
        assert db.check_dvs("s")

    def test_count_distinct_text_end_to_end(self, db):
        """Regression: count(distinct <TEXT column>) takes the stateful
        path without trying to sum strings."""
        dt = make_dt(db, name="cd",
                     sql="SELECT count(distinct grp) dg FROM src")
        assert db.query("SELECT * FROM cd").rows == [(2,)]
        db.execute("INSERT INTO src VALUES (4, 'c', 40)")
        db.refresh_dynamic_table("cd")
        assert dt.refresh_history[-1].ivm_stats.agg_stateful_folds == 1
        assert db.query("SELECT * FROM cd").rows == [(3,)]
        db.execute("DELETE FROM src WHERE grp = 'c'")
        db.refresh_dynamic_table("cd")
        assert db.query("SELECT * FROM cd").rows == [(2,)]
        assert db.check_dvs("cd")

    def test_full_mode_dt_keeps_no_state(self, db):
        dt = make_dt(db, name="f", refresh_mode="full")
        db.execute("INSERT INTO src VALUES (4, 'a', 5)")
        db.refresh_dynamic_table("f")
        assert dt.refresh_history[-1].action == RefreshAction.FULL
        assert dt.agg_state is None
        assert db.check_dvs("f")

    def test_reinitialize_invalidates_state(self, db):
        dt = make_dt(db)
        db.execute("INSERT INTO src VALUES (4, 'a', 5)")
        db.refresh_dynamic_table("d")
        assert dt.agg_state is not None and dt.agg_state.node_count == 1

        # Replacing the upstream table forces REINITIALIZE; carried
        # accumulators describe the dropped table and must go.
        db.execute("CREATE OR REPLACE TABLE src (id int, grp text, val int)")
        db.execute("INSERT INTO src VALUES (9, 'z', 90)")
        db.refresh_dynamic_table("d")
        assert dt.refresh_history[-1].action == RefreshAction.REINITIALIZE
        assert dt.agg_state.node_count == 0
        assert any("reinitialize" in reason
                   for reason in dt.agg_state.invalidations)

        # And the next incremental refresh lazily rebuilds and is correct.
        db.execute("INSERT INTO src VALUES (10, 'z', 10)")
        db.refresh_dynamic_table("d")
        assert dt.refresh_history[-1].ivm_stats.agg_stateful_folds == 1
        assert db.check_dvs("d")

    def test_out_of_order_interval_self_heals_in_engine(self, db):
        dt = make_dt(db)
        db.execute("INSERT INTO src VALUES (4, 'a', 5)")
        db.refresh_dynamic_table("d")
        # Simulate a state store that drifted from the DT's frontier
        # (e.g. restored from elsewhere): the next refresh must detect the
        # token mismatch and reinitialize rather than fold.
        dt.agg_state.advanced_to = -12345
        db.execute("INSERT INTO src VALUES (5, 'b', 50)")
        db.refresh_dynamic_table("d")
        assert any("out-of-order" in reason
                   for reason in dt.agg_state.invalidations)
        assert db.check_dvs("d")
        assert sorted(db.query("SELECT * FROM d").rows) == [
            ("a", 3, 45, 5, 30), ("b", 2, 70, 20, 50)]

    def test_savepoint_rollback_interaction(self, db):
        """Rows staged then rolled back to a savepoint never reach the
        change stream, so the fold sees only the committed delta."""
        dt = make_dt(db)
        session = db.session()
        session.begin()
        session.execute("INSERT INTO src VALUES (6, 'a', 60)")
        session.savepoint("sp")
        session.execute("INSERT INTO src VALUES (7, 'a', 700)")
        session.rollback_to("sp")
        session.commit()
        db.refresh_dynamic_table("d")
        assert dt.refresh_history[-1].ivm_stats.agg_stateful_folds == 1
        assert db.check_dvs("d")
        assert sorted(db.query("SELECT * FROM d").rows) == [
            ("a", 3, 100, 10, 60), ("b", 1, 20, 20, 20)]

    def test_failed_refresh_drops_partial_fold(self, db):
        """A refresh that errors after (possibly partial) folding must not
        leave accumulators describing an interval that never committed."""
        dt = make_dt(db)
        db.execute("INSERT INTO src VALUES (4, 'a', 5)")
        db.refresh_dynamic_table("d")
        assert dt.agg_state.node_count == 1

        # Fail the next refresh: drop the source so resolution errors.
        db.execute("DROP TABLE src")
        db.clock.advance(MINUTE)
        with pytest.raises(UserError):
            db.refresh_dynamic_table("d")
        assert dt.refresh_history[-1].error is not None

        db.execute("UNDROP TABLE src")
        db.execute("INSERT INTO src VALUES (5, 'b', 50)")
        db.refresh_dynamic_table("d")
        assert db.check_dvs("d")

    def test_force_stateless_is_reference_and_self_heals(self, db):
        dt = make_dt(db)
        db.execute("INSERT INTO src VALUES (4, 'a', 5)")
        with force_stateless():
            db.refresh_dynamic_table("d")
        record = dt.refresh_history[-1]
        assert record.ivm_stats.agg_stateful_folds == 0
        assert record.ivm_stats.agg_recomputes == 1
        assert db.check_dvs("d")

        # Back to stateful: the store must not trust pre-ablation state.
        db.execute("INSERT INTO src VALUES (5, 'b', 50)")
        db.refresh_dynamic_table("d")
        assert dt.refresh_history[-1].ivm_stats.agg_stateful_folds == 1
        assert db.check_dvs("d")

    def test_explain_reports_refresh_strategy(self, db):
        explain = db.explain(
            "SELECT grp, count(*) n FROM src GROUP BY grp")
        assert "stateful" in explain
        explain = db.explain(
            "SELECT grp, median(val) m FROM src GROUP BY grp")
        assert "recompute" in explain and "median" in explain
