"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro import Database
from repro.workload.generator import UpdateWorkload, create_workload_schema
from repro.workload.trains import TrainWorkload


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: perf smoke checks (scaled-down benchmark scenarios with "
        "work-count assertions; deselect with '-m \"not perf\"')")


@pytest.fixture
def db() -> Database:
    """A fresh database with one default warehouse."""
    database = Database()
    database.create_warehouse("wh")
    return database


@pytest.fixture
def star_db(db: Database) -> Database:
    """Database with the facts/dims star schema seeded."""
    create_workload_schema(db)
    workload = UpdateWorkload()
    workload.seed(db, facts=50, dims=8)
    db._star_workload = workload  # handed to tests that keep mutating
    return db


@pytest.fixture
def trains_db() -> Database:
    """Database with the paper's Listing 1 pipeline set up."""
    database = Database()
    workload = TrainWorkload()
    workload.setup(database)
    database._train_workload = workload
    return database
