"""Tests for micro-partitioned versioned tables."""

import pytest

from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.errors import ChangeIntegrityError, InternalError, VersionNotFound
from repro.ivm.changes import ChangeSet
from repro.storage.table import StagedWrite, VersionedTable
from repro.txn.hlc import HlcTimestamp


def make_table(partition_rows=4):
    schema = schema_of(("a", SqlType.INT), ("b", SqlType.TEXT))
    return VersionedTable("t", schema, table_seq=1,
                          partition_rows=partition_rows)


def insert(table, rows, wall):
    return table.apply(StagedWrite(inserts=list(rows)), HlcTimestamp(wall))


class TestInserts:
    def test_insert_creates_version(self):
        table = make_table()
        version = insert(table, [(1, "x")], wall=10)
        assert version.index == 1
        assert table.row_count() == 1

    def test_row_ids_are_stable_and_prefixed(self):
        table = make_table()
        insert(table, [(1, "x"), (2, "y")], wall=10)
        ids = table.relation().row_ids
        assert ids == ["b1:0", "b1:1"]

    def test_partition_chunking(self):
        table = make_table(partition_rows=2)
        insert(table, [(i, "x") for i in range(5)], wall=10)
        assert table.partition_count() == 3

    def test_commit_must_be_monotonic(self):
        table = make_table()
        insert(table, [(1, "x")], wall=10)
        with pytest.raises(InternalError):
            insert(table, [(2, "y")], wall=5)


class TestDeletesAndUpdates:
    def test_delete_rewrites_partition(self):
        table = make_table(partition_rows=10)
        insert(table, [(1, "x"), (2, "y")], wall=10)
        table.apply(StagedWrite(deletes={"b1:0"}), HlcTimestamp(20))
        relation = table.relation()
        assert relation.rows == [(2, "y")]
        assert relation.row_ids == ["b1:1"]  # survivor keeps its id

    def test_delete_missing_row_rejected(self):
        table = make_table()
        insert(table, [(1, "x")], wall=10)
        with pytest.raises(ChangeIntegrityError):
            table.apply(StagedWrite(deletes={"b1:99"}), HlcTimestamp(20))

    def test_update_keeps_identity(self):
        table = make_table()
        insert(table, [(1, "x")], wall=10)
        table.apply(StagedWrite(updates={"b1:0": (1, "z")}), HlcTimestamp(20))
        relation = table.relation()
        assert relation.rows == [(1, "z")]
        assert relation.row_ids == ["b1:0"]

    def test_overwrite_replaces_everything(self):
        table = make_table()
        insert(table, [(1, "x"), (2, "y")], wall=10)
        table.apply(StagedWrite(inserts=[(9, "z")], overwrite=True),
                    HlcTimestamp(20))
        assert table.relation().rows == [(9, "z")]


class TestTimeTravel:
    def test_version_at_resolves_largest_leq(self):
        table = make_table()
        insert(table, [(1, "x")], wall=10)
        insert(table, [(2, "y")], wall=30)
        assert table.version_at(10).index == 1
        assert table.version_at(29).index == 1
        assert table.version_at(30).index == 2
        assert table.version_at(99).index == 2

    def test_version_zero_is_empty(self):
        table = make_table()
        insert(table, [(1, "x")], wall=10)
        assert table.row_count(table.version_at(5)) == 0

    def test_relation_cached_per_version(self):
        table = make_table()
        version = insert(table, [(1, "x")], wall=10)
        assert table.relation(version) is table.relation(version)

    def test_old_versions_stay_readable(self):
        table = make_table()
        v1 = insert(table, [(1, "x")], wall=10)
        table.apply(StagedWrite(deletes={"b1:0"}), HlcTimestamp(20))
        assert table.relation(v1).rows == [(1, "x")]
        assert table.relation().rows == []


class TestRefreshMapping:
    def test_exact_lookup(self):
        table = make_table()
        version = insert(table, [(1, "x")], wall=10)
        table.register_refresh(1000, version)
        assert table.version_for_refresh(1000) is version

    def test_missing_refresh_fails(self):
        table = make_table()
        with pytest.raises(VersionNotFound):
            table.version_for_refresh(1234)

    def test_refresh_timestamps_sorted(self):
        table = make_table()
        version = insert(table, [(1, "x")], wall=10)
        table.register_refresh(300, version)
        table.register_refresh(100, version)
        assert table.refresh_timestamps() == [100, 300]


class TestChangesets:
    def test_apply_changeset(self):
        table = make_table()
        insert(table, [(1, "x"), (2, "y")], wall=10)
        changes = ChangeSet()
        changes.delete("b1:0", (1, "x"))
        changes.insert("g:abc", (7, "q"))
        table.apply(StagedWrite(changeset=changes), HlcTimestamp(20))
        pairs = dict(table.relation().pairs())
        assert pairs == {"b1:1": (2, "y"), "g:abc": (7, "q")}

    def test_changeset_validates_against_locator(self):
        table = make_table()
        insert(table, [(1, "x")], wall=10)
        bad = ChangeSet()
        bad.delete("nope", (0, ""))
        with pytest.raises(ChangeIntegrityError):
            table.apply(StagedWrite(changeset=bad), HlcTimestamp(20))

    def test_duplicate_insert_rejected(self):
        table = make_table()
        insert(table, [(1, "x")], wall=10)
        bad = ChangeSet()
        bad.insert("b1:0", (9, "z"))  # id already present, no delete
        with pytest.raises(ChangeIntegrityError):
            table.apply(StagedWrite(changeset=bad), HlcTimestamp(20))

    def test_update_via_changeset(self):
        table = make_table()
        insert(table, [(1, "x")], wall=10)
        changes = ChangeSet()
        changes.delete("b1:0", (1, "x"))
        changes.insert("b1:0", (1, "z"))
        table.apply(StagedWrite(changeset=changes), HlcTimestamp(20))
        assert table.relation().rows == [(1, "z")]


class TestRecluster:
    def test_recluster_preserves_contents(self):
        table = make_table(partition_rows=2)
        insert(table, [(i, "x") for i in range(5)], wall=10)
        before = sorted(table.relation().pairs())
        table.recluster(HlcTimestamp(20))
        after = sorted(table.relation().pairs())
        assert before == after

    def test_recluster_flagged_data_equivalent(self):
        table = make_table()
        insert(table, [(1, "x")], wall=10)
        version = table.recluster(HlcTimestamp(20))
        assert version.data_equivalent
        assert not table.versions[1].data_equivalent
