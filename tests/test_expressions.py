"""Tests for bound expression evaluation."""

import pytest

from repro.engine import expressions as e
from repro.engine.types import SqlType
from repro.errors import EvaluationError, TypeError_

CTX = e.DEFAULT_CONTEXT


def col(index, sql_type=SqlType.INT):
    return e.ColumnRef(index, sql_type)


def lit(value):
    return e.Literal(value)


class TestLiteralsAndColumns:
    def test_literal_infers_type(self):
        assert lit(1).type == SqlType.INT
        assert lit("x").type == SqlType.TEXT
        assert lit(None).type == SqlType.NULL

    def test_column_lookup(self):
        assert col(1).eval((10, 20), CTX) == 20

    def test_remap(self):
        remapped = col(0).remap({0: 3})
        assert remapped.index == 3

    def test_column_indices(self):
        expr = e.Arithmetic("+", col(0), col(2))
        assert expr.column_indices() == {0, 2}


class TestArithmetic:
    def test_basic(self):
        assert e.Arithmetic("+", lit(2), lit(3)).eval((), CTX) == 5
        assert e.Arithmetic("*", lit(4), lit(3)).eval((), CTX) == 12
        assert e.Arithmetic("-", lit(4), lit(3)).eval((), CTX) == 1
        assert e.Arithmetic("%", lit(7), lit(3)).eval((), CTX) == 1

    def test_division_is_float(self):
        expr = e.Arithmetic("/", lit(7), lit(2))
        assert expr.type == SqlType.FLOAT
        assert expr.eval((), CTX) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            e.Arithmetic("/", lit(1), lit(0)).eval((), CTX)

    def test_null_propagates(self):
        assert e.Arithmetic("+", lit(None), lit(1)).eval((), CTX) is None

    def test_int_float_widens(self):
        assert e.Arithmetic("+", lit(1), lit(2.5)).type == SqlType.FLOAT

    def test_text_rejected_statically(self):
        with pytest.raises(TypeError_):
            e.Arithmetic("+", lit("a"), lit(1))


class TestComparison:
    def test_operators(self):
        assert e.Comparison("<", lit(1), lit(2)).eval((), CTX) is True
        assert e.Comparison(">=", lit(2), lit(2)).eval((), CTX) is True
        assert e.Comparison("!=", lit(1), lit(1)).eval((), CTX) is False

    def test_null_yields_null(self):
        assert e.Comparison("=", lit(None), lit(1)).eval((), CTX) is None

    def test_incomparable_types_rejected(self):
        with pytest.raises(TypeError_):
            e.Comparison("=", lit("a"), lit(1))


class TestBooleans:
    def test_short_circuit_and(self):
        poison = e.Arithmetic("/", lit(1), lit(0))
        guarded = e.Comparison(">", poison, lit(0))
        expr = e.BooleanOp("and", (lit(False), guarded))
        assert expr.eval((), CTX) is False

    def test_or_with_null(self):
        assert e.BooleanOp("or", (lit(None), lit(True))).eval((), CTX) is True
        assert e.BooleanOp("or", (lit(None), lit(False))).eval((), CTX) is None

    def test_not(self):
        assert e.Not(lit(True)).eval((), CTX) is False
        assert e.Not(lit(None)).eval((), CTX) is None


class TestPredicates:
    def test_is_null(self):
        assert e.IsNull(lit(None)).eval((), CTX) is True
        assert e.IsNull(lit(1), negated=True).eval((), CTX) is True

    def test_in_list(self):
        expr = e.InList(col(0), (lit(1), lit(2)))
        assert expr.eval((1,), CTX) is True
        assert expr.eval((3,), CTX) is False

    def test_in_list_null_semantics(self):
        expr = e.InList(col(0), (lit(1), lit(None)))
        assert expr.eval((1,), CTX) is True
        assert expr.eval((3,), CTX) is None  # not found, NULL present
        assert expr.eval((None,), CTX) is None

    def test_not_in(self):
        expr = e.InList(col(0), (lit(1),), negated=True)
        assert expr.eval((2,), CTX) is True
        assert expr.eval((1,), CTX) is False

    def test_like(self):
        assert e.Like(lit("hello"), lit("h%o")).eval((), CTX) is True
        assert e.Like(lit("hello"), lit("h_llo")).eval((), CTX) is True
        assert e.Like(lit("hello"), lit("x%")).eval((), CTX) is False

    def test_like_escapes_regex_chars(self):
        assert e.Like(lit("a.b"), lit("a.b")).eval((), CTX) is True
        assert e.Like(lit("axb"), lit("a.b")).eval((), CTX) is False


class TestCaseCastPath:
    def test_case(self):
        expr = e.Case(
            ((e.Comparison(">", col(0), lit(0)), lit("pos")),),
            lit("neg"))
        assert expr.eval((5,), CTX) == "pos"
        assert expr.eval((-5,), CTX) == "neg"

    def test_case_null_condition_is_false(self):
        expr = e.Case(((lit(None), lit("x")),), lit("y"))
        assert expr.eval((), CTX) == "y"

    def test_cast(self):
        assert e.Cast(lit("42"), SqlType.INT).eval((), CTX) == 42

    def test_variant_path(self):
        expr = e.VariantPath(col(0, SqlType.VARIANT), ("a", "b"))
        assert expr.eval(({"a": {"b": 7}},), CTX) == 7
        assert expr.eval(({"a": {}},), CTX) is None
        assert expr.eval((None,), CTX) is None

    def test_variant_path_array_index(self):
        expr = e.VariantPath(col(0, SqlType.VARIANT), ("0",))
        assert expr.eval(([10, 20],), CTX) == 10


class TestFunctions:
    def lookup(self, name):
        return e.DEFAULT_REGISTRY.lookup(name)

    def test_scalar_functions(self):
        assert e.FunctionCall(self.lookup("abs"), (lit(-3),)).eval((), CTX) == 3
        assert e.FunctionCall(self.lookup("upper"), (lit("ab"),)).eval((), CTX) == "AB"
        assert e.FunctionCall(self.lookup("length"), (lit("abc"),)).eval((), CTX) == 3

    def test_null_on_null(self):
        assert e.FunctionCall(self.lookup("abs"), (lit(None),)).eval((), CTX) is None

    def test_coalesce_handles_nulls_itself(self):
        expr = e.FunctionCall(self.lookup("coalesce"),
                              (lit(None), lit(None), lit(3)))
        assert expr.eval((), CTX) == 3

    def test_iff(self):
        expr = e.FunctionCall(self.lookup("iff"), (lit(True), lit(1), lit(2)))
        assert expr.eval((), CTX) == 1

    def test_date_trunc(self):
        hour_ns = 3_600_000_000_000
        expr = e.FunctionCall(self.lookup("date_trunc"),
                              (lit("hour"), lit(hour_ns + 5)))
        assert expr.eval((), CTX) == hour_ns

    def test_substr_one_based(self):
        expr = e.FunctionCall(self.lookup("substr"), (lit("hello"), lit(2), lit(3)))
        assert expr.eval((), CTX) == "ell"

    def test_unknown_function(self):
        with pytest.raises(TypeError_):
            self.lookup("no_such_fn")

    def test_udf_registration_and_volatility(self):
        registry = e.FunctionRegistry()
        registry.register_udf("double_it", lambda x: x * 2,
                              SqlType.INT, immutable=True)
        registry.register_udf("rng", lambda: 4, SqlType.INT, immutable=False)
        call = e.FunctionCall(registry.lookup("double_it"), (lit(5),))
        assert call.eval((), CTX) == 10
        assert call.is_deterministic
        volatile = e.FunctionCall(registry.lookup("rng"), ())
        assert not volatile.is_deterministic

    def test_udf_cannot_shadow_builtin(self):
        registry = e.FunctionRegistry()
        with pytest.raises(TypeError_):
            registry.register_udf("abs", lambda x: x)

    def test_function_error_wrapped(self):
        registry = e.FunctionRegistry()
        registry.register_udf("boom", lambda: 1 / 0, SqlType.INT)
        with pytest.raises(EvaluationError):
            e.FunctionCall(registry.lookup("boom"), ()).eval((), CTX)


class TestContextFunctions:
    def test_current_timestamp(self):
        ctx = e.EvalContext(timestamp=123)
        assert e.ContextFunction("current_timestamp").eval((), ctx) == 123

    def test_current_role(self):
        ctx = e.EvalContext(timestamp=0, role="analyst")
        assert e.ContextFunction("current_role").eval((), ctx) == "analyst"

    def test_uses_context_flag(self):
        assert e.ContextFunction("current_timestamp").uses_context
        assert not lit(1).uses_context
        wrapped = e.Arithmetic("+", e.Cast(e.ContextFunction(
            "current_timestamp"), SqlType.INT), lit(1))
        assert wrapped.uses_context


class TestConjuncts:
    def test_flatten(self):
        a = e.Comparison("=", col(0), lit(1))
        b = e.Comparison("=", col(1), lit(2))
        c = e.Comparison("=", col(2), lit(3))
        combined = e.BooleanOp("and", (e.BooleanOp("and", (a, b)), c))
        assert e.conjuncts(combined) == [a, b, c]

    def test_conjoin_empty_is_true(self):
        assert e.conjoin([]).eval((), CTX) is True

    def test_conjoin_single(self):
        a = e.Comparison("=", col(0), lit(1))
        assert e.conjoin([a]) is a
