"""Tests for aggregate evaluation, including the statistical extensions."""

import pytest

from repro import Database
from repro.util.timeutil import MINUTE


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE t (grp text, v int)")
    database.execute("INSERT INTO t VALUES ('a', 2), ('a', 4), ('a', 6),"
                     " ('b', 10), ('b', NULL)")
    return database


class TestStatisticalAggregates:
    def test_median_odd(self, db):
        rows = db.query("SELECT grp, median(v) m FROM t GROUP BY grp").rows
        assert dict(rows)["a"] == 4

    def test_median_even(self, db):
        db.execute("INSERT INTO t VALUES ('a', 8)")
        rows = db.query("SELECT grp, median(v) m FROM t GROUP BY grp").rows
        assert dict(rows)["a"] == 5.0

    def test_variance_and_stddev(self, db):
        rows = db.query(
            "SELECT grp, variance(v) var, stddev(v) sd FROM t "
            "GROUP BY grp").rows
        by_group = {row[0]: row[1:] for row in rows}
        assert by_group["a"][0] == pytest.approx(4.0)   # sample variance
        assert by_group["a"][1] == pytest.approx(2.0)

    def test_stddev_of_single_value_is_null(self, db):
        rows = db.query(
            "SELECT grp, stddev(v) sd FROM t GROUP BY grp").rows
        assert dict(rows)["b"] is None  # one non-null observation

    def test_listagg_deterministic(self, db):
        rows = db.query(
            "SELECT grp, listagg(v) vals FROM t GROUP BY grp").rows
        assert dict(rows)["a"] == "2,4,6"

    def test_nulls_skipped(self, db):
        rows = db.query(
            "SELECT grp, median(v) m FROM t GROUP BY grp").rows
        assert dict(rows)["b"] == 10


class TestIncrementalMaintenance:
    def test_statistical_aggregates_stay_incremental(self, db):
        dt = db.create_dynamic_table(
            "stats", "SELECT grp, median(v) m, stddev(v) sd, "
            "listagg(v) vals FROM t GROUP BY grp", "1 minute", "wh")
        assert dt.effective_refresh_mode.value == "incremental"
        db.execute("INSERT INTO t VALUES ('a', 100), ('b', 12)")
        db.refresh_dynamic_table("stats")
        assert db.check_dvs("stats")

    def test_dvs_through_mutation_sequence(self, db):
        db.create_dynamic_table(
            "stats", "SELECT grp, variance(v) var FROM t GROUP BY grp",
            "1 minute", "wh")
        for step in range(4):
            db.execute(f"INSERT INTO t VALUES ('a', {step * 3})")
            if step % 2:
                db.execute(f"DELETE FROM t WHERE v = {step}")
            db.refresh_dynamic_table("stats")
            assert db.check_dvs("stats")
