"""Tests for change queries over versioned tables (streams)."""

from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.ivm.changes import Action
from repro.storage.table import StagedWrite, VersionedTable
from repro.streams.changes import (changes_between, changes_since,
                                   is_data_equivalent_interval)
from repro.txn.hlc import HlcTimestamp


def make_table(partition_rows=3):
    schema = schema_of(("a", SqlType.INT),)
    return VersionedTable("t", schema, 1, partition_rows=partition_rows)


class TestBasicDiffs:
    def test_empty_interval(self):
        table = make_table()
        version = table.apply(StagedWrite(inserts=[(1,)]), HlcTimestamp(10))
        assert len(changes_between(table, version, version)) == 0

    def test_inserts_only(self):
        table = make_table()
        v0 = table.current_version
        table.apply(StagedWrite(inserts=[(1,), (2,)]), HlcTimestamp(10))
        changes = changes_since(table, v0)
        assert changes.insert_only
        assert sorted(c.row for c in changes) == [(1,), (2,)]

    def test_delete_appears(self):
        table = make_table()
        table.apply(StagedWrite(inserts=[(1,), (2,)]), HlcTimestamp(10))
        v1 = table.current_version
        table.apply(StagedWrite(deletes={"b1:0"}), HlcTimestamp(20))
        changes = changes_between(table, v1, table.current_version)
        assert [c.action for c in changes] == [Action.DELETE]
        assert changes.deletes()[0].row == (1,)

    def test_update_is_delete_plus_insert_same_id(self):
        table = make_table()
        table.apply(StagedWrite(inserts=[(1,)]), HlcTimestamp(10))
        v1 = table.current_version
        table.apply(StagedWrite(updates={"b1:0": (9,)}), HlcTimestamp(20))
        changes = changes_between(table, v1, table.current_version)
        assert len(changes) == 2
        assert changes.deletes()[0].row_id == changes.inserts()[0].row_id


class TestReadAmplificationCancellation:
    def test_copied_rows_cancel(self):
        """Deleting one row of a shared partition rewrites the partition;
        the surviving (copied) rows must not appear in the stream."""
        table = make_table(partition_rows=10)
        table.apply(StagedWrite(inserts=[(i,) for i in range(8)]),
                    HlcTimestamp(10))
        v1 = table.current_version
        table.apply(StagedWrite(deletes={"b1:3"}), HlcTimestamp(20))
        changes = changes_between(table, v1, table.current_version)
        assert len(changes) == 1
        assert changes.deletes()[0].row == (3,)

    def test_transient_row_never_appears(self):
        table = make_table()
        v0 = table.current_version
        table.apply(StagedWrite(inserts=[(1,)]), HlcTimestamp(10))
        table.apply(StagedWrite(deletes={"b1:0"}), HlcTimestamp(20))
        changes = changes_between(table, v0, table.current_version)
        assert len(changes) == 0


class TestDataEquivalence:
    def test_recluster_produces_no_changes(self):
        table = make_table(partition_rows=2)
        table.apply(StagedWrite(inserts=[(i,) for i in range(6)]),
                    HlcTimestamp(10))
        v1 = table.current_version
        table.recluster(HlcTimestamp(20))
        changes = changes_between(table, v1, table.current_version)
        assert len(changes) == 0

    def test_interval_detection(self):
        table = make_table()
        table.apply(StagedWrite(inserts=[(1,)]), HlcTimestamp(10))
        v1 = table.current_version
        table.recluster(HlcTimestamp(20))
        table.recluster(HlcTimestamp(30))
        assert is_data_equivalent_interval(table, v1, table.current_version)
        table.apply(StagedWrite(inserts=[(2,)]), HlcTimestamp(40))
        assert not is_data_equivalent_interval(table, v1,
                                               table.current_version)


class TestMultiVersionIntervals:
    def test_net_changes_across_many_versions(self):
        table = make_table()
        v0 = table.current_version
        table.apply(StagedWrite(inserts=[(1,), (2,)]), HlcTimestamp(10))
        table.apply(StagedWrite(updates={"b1:0": (10,)}), HlcTimestamp(20))
        table.apply(StagedWrite(deletes={"b1:1"}), HlcTimestamp(30))
        table.apply(StagedWrite(inserts=[(3,)]), HlcTimestamp(40))
        changes = changes_between(table, v0, table.current_version)
        inserted = sorted(c.row for c in changes.inserts())
        assert inserted == [(3,), (10,)]
        assert not changes.deletes()  # rows 1 and 2 never existed at v0

    def test_changes_validate(self):
        table = make_table()
        table.apply(StagedWrite(inserts=[(i,) for i in range(5)]),
                    HlcTimestamp(10))
        v1 = table.current_version
        table.apply(StagedWrite(deletes={"b1:0", "b1:4"},
                                updates={"b1:2": (99,)}), HlcTimestamp(20))
        changes = changes_between(table, v1, table.current_version)
        changes.validate(dict(table.relation(v1).pairs()))
