"""Tests for the engine-invariant linter (``tools/lint_engine.py``):
the repo itself lints clean, every rule fires on its seeded fixture,
pragmas suppress, and regressions to the guarded invariants are caught.
Also hosts the (CI-only, skipped when mypy is absent) strict-typing
gate over ``repro.plan``, ``repro.analysis``, ``repro.durability``,
and ``repro.server``."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import lint_engine  # noqa: E402


# ---------------------------------------------------------------------------
# The repo is clean; the self-test proves the rules are live
# ---------------------------------------------------------------------------


def test_repo_lints_clean():
    violations = lint_engine.lint_tree(lint_engine.SRC_ROOT)
    assert violations == [], "\n".join(v.render() for v in violations)


def test_self_test_passes():
    assert lint_engine.self_test() == 0


def test_cli_exit_codes():
    clean = subprocess.run(
        [sys.executable, "tools/lint_engine.py"], cwd=REPO_ROOT,
        capture_output=True, text=True)
    assert clean.returncode == 0, clean.stdout + clean.stderr
    selftest = subprocess.run(
        [sys.executable, "tools/lint_engine.py", "--self-test"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert selftest.returncode == 0, selftest.stdout + selftest.stderr


@pytest.mark.parametrize("fixture, rule",
                         sorted(lint_engine.FIXTURE_EXPECTATIONS.items()))
def test_each_fixture_fires_its_rule(fixture, rule):
    path = lint_engine.FIXTURE_DIR / fixture
    violations = lint_engine.check_file(path, lint_engine.FIXTURE_DIR,
                                        force_all=True)
    assert any(v.rule == rule for v in violations)
    for violation in violations:
        assert f"[{violation.rule}]" in violation.render()


# ---------------------------------------------------------------------------
# Regression detection: un-fixing the real code trips the linter
# ---------------------------------------------------------------------------


def _lint_mutated(tmp_path, source_path, transform, rel_name):
    target = tmp_path / rel_name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(transform(source_path.read_text()))
    return lint_engine.lint_tree(tmp_path)


def test_unsorting_commit_locks_fires(tmp_path):
    manager = lint_engine.SRC_ROOT / "txn" / "manager.py"
    violations = _lint_mutated(
        tmp_path, manager,
        lambda text: text.replace("written = sorted(name",
                                  "written = list(name"),
        "txn/manager.py")
    assert any(v.rule == "lock-order" for v in violations)


def test_removing_wallclock_pragma_fires(tmp_path):
    locks = lint_engine.SRC_ROOT / "txn" / "locks.py"
    violations = _lint_mutated(
        tmp_path, locks,
        lambda text: text.replace("  # lint: allow-wall-clock", ""),
        "txn/locks.py")
    assert sum(v.rule == "wall-clock" for v in violations) == 2


def test_new_materialization_in_hot_path_fires(tmp_path):
    violations = _lint_mutated(
        tmp_path, lint_engine.FIXTURE_DIR / "bad_materialize.py",
        lambda text: text, "engine/executor.py")
    assert any(v.rule == "materialize" for v in violations)


def test_materialize_pragma_suppresses(tmp_path):
    violations = _lint_mutated(
        tmp_path, lint_engine.FIXTURE_DIR / "bad_materialize.py",
        lambda text: text.replace(
            "relation.rows", "relation.rows  # lint: allow-materialize"
        ).replace("relation.pairs()",
                  "relation.pairs()  # lint: allow-materialize"),
        "engine/executor.py")
    assert not any(v.rule == "materialize" for v in violations)


def test_incomplete_accumulator_fires_anywhere(tmp_path):
    violations = _lint_mutated(
        tmp_path, lint_engine.FIXTURE_DIR / "bad_accumulator.py",
        lambda text: text, "engine/aggregates_extra.py")
    fired = [v for v in violations if v.rule == "accumulator-protocol"]
    assert len(fired) == 1
    assert "HalfSumAccumulator" in fired[0].message
    assert "retract" in fired[0].message


def test_sorted_loop_is_accepted(tmp_path):
    source = (
        "def commit(manager, writes):\n"
        "    written = sorted(writes)\n"
        "    for name in written:\n"
        "        manager.lock(name)\n")
    target = tmp_path / "txn" / "manager.py"
    target.parent.mkdir(parents=True)
    target.write_text(source)
    assert lint_engine.lint_tree(tmp_path) == []


def test_allowlist_matches_reality():
    """The allowlist equals the live set of materialize sites — a stale
    entry would silently widen the allowed surface, and a missing one
    would fail the gated run."""
    live = lint_engine.live_allowlist(lint_engine.SRC_ROOT)
    assert lint_engine.MATERIALIZE_ALLOWLIST == live, (
        "regenerate with: python tools/lint_engine.py --dump-allowlist")


def test_dump_allowlist_is_pasteable():
    """--dump-allowlist prints a complete assignment block whose
    evaluation reproduces the in-file allowlist verbatim."""
    result = subprocess.run(
        [sys.executable, "tools/lint_engine.py", "--dump-allowlist"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
    block = result.stdout.split("=", 1)[1]
    assert result.stdout.startswith(
        "MATERIALIZE_ALLOWLIST: set[tuple[str, str]] = {")
    assert eval(block) == lint_engine.MATERIALIZE_ALLOWLIST


def test_stale_pragma_fires(tmp_path):
    violations = _lint_mutated(
        tmp_path, lint_engine.SRC_ROOT / "txn" / "locks.py",
        lambda text: text.replace("time.monotonic()", "0.0"),
        "txn/locks.py")
    fired = [v for v in violations if v.rule == "unused-pragma"]
    assert len(fired) == 2
    assert all("allow-wall-clock" in v.message for v in fired)


def test_used_pragma_does_not_fire_unused(tmp_path):
    violations = _lint_mutated(
        tmp_path, lint_engine.SRC_ROOT / "txn" / "locks.py",
        lambda text: text, "txn/locks.py")
    assert violations == []


# ---------------------------------------------------------------------------
# mypy strict gate (runs in CI where mypy is installed)
# ---------------------------------------------------------------------------


def test_mypy_clean_on_strict_packages():
    pytest.importorskip("mypy")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini",
         "src/repro/plan", "src/repro/analysis",
         "src/repro/durability", "src/repro/server"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
