"""End-to-end integration: a realistic pipeline run for simulated hours.

One scenario exercising most of the system at once: a 7-DT dependency
graph (diamond + chain + fan-out) over three base tables, mixed refresh
modes, DOWNSTREAM lags, continuous DML, upstream DDL mid-run, a clone,
manual refreshes interleaved with scheduled ones — with DVS asserted on
every DT at multiple checkpoints and fleet-level invariants at the end.
"""

import random

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.core.graph import DependencyGraph
from repro.scheduler.liveness import slo_report
from repro.scheduler.metrics import peak_lags
from repro.util.timeutil import HOUR, MINUTE, minutes


@pytest.fixture
def pipeline():
    db = Database()
    db.create_warehouse("etl_wh", size=2)
    db.create_warehouse("serving_wh", size=1)

    db.execute("CREATE TABLE events (id int, user_id int, kind text,"
               " amount int)")
    db.execute("CREATE TABLE users (id int, region text)")
    db.execute("CREATE TABLE rates (region text, multiplier int)")
    db.execute("INSERT INTO users VALUES (1, 'na'), (2, 'eu'), (3, 'na'),"
               " (4, 'apac')")
    db.execute("INSERT INTO rates VALUES ('na', 2), ('eu', 3),"
               " ('apac', 5)")
    db.execute("INSERT INTO events VALUES"
               " (1, 1, 'buy', 10), (2, 2, 'buy', 20), (3, 3, 'view', 0)")

    # Layer 1: cleaning (DOWNSTREAM lag).
    db.create_dynamic_table(
        "purchases", "SELECT id, user_id, amount FROM events "
        "WHERE kind = 'buy' AND amount > 0", "downstream", "etl_wh")
    # Layer 2: diamond — two enrichments over the same input.
    db.create_dynamic_table(
        "enriched", "SELECT p.id, p.amount, u.region FROM purchases p "
        "JOIN users u ON p.user_id = u.id", "downstream", "etl_wh")
    db.create_dynamic_table(
        "big_spenders", "SELECT DISTINCT user_id FROM purchases "
        "WHERE amount > 15", "5 minutes", "etl_wh")
    # Layer 3: join the diamond back together + aggregate.
    db.create_dynamic_table(
        "regional", "SELECT e.region, count(*) n, sum(e.amount) total "
        "FROM enriched e GROUP BY e.region", "downstream", "etl_wh")
    db.create_dynamic_table(
        "weighted", "SELECT r.region, r.total * x.multiplier weighted "
        "FROM regional r LEFT JOIN rates x ON r.region = x.region",
        "2 minutes", "serving_wh")
    # A windowed consumer and a FULL-mode consumer.
    db.create_dynamic_table(
        "ranked", "SELECT id, region, amount, rank() over "
        "(partition by region order by amount desc, id) r FROM enriched",
        "4 minutes", "serving_wh")
    db.create_dynamic_table(
        "toplist", "SELECT id, amount FROM enriched ORDER BY amount DESC "
        "LIMIT 3", "8 minutes", "serving_wh")
    return db


ALL_DTS = ("purchases", "enriched", "big_spenders", "regional",
           "weighted", "ranked", "toplist")


def drive(db, rng, minutes_count, start_id=100):
    next_id = [start_id]
    for step in range(minutes_count):
        def mutate(s=step):
            kind = rng.choice(["buy", "buy", "view"])
            db.execute(
                f"INSERT INTO events VALUES ({next_id[0]}, "
                f"{rng.randint(1, 4)}, '{kind}', {rng.randint(0, 40)})")
            next_id[0] += 1
            if s % 7 == 3:
                db.execute(f"DELETE FROM events WHERE amount = "
                           f"{rng.randint(0, 10)}")
            if s % 11 == 5:
                db.execute("UPDATE users SET region = 'latam' "
                           f"WHERE id = {rng.randint(1, 4)}")
        db.at(db.now + (step + 1) * MINUTE, mutate)
    db.run_for(minutes(minutes_count + 2))


class TestLongRun:
    def test_hours_of_operation_preserve_dvs(self, pipeline):
        db = pipeline
        rng = random.Random(11)
        for checkpoint in range(3):
            drive(db, rng, 20, start_id=1000 * (checkpoint + 1))
            for name in ALL_DTS:
                assert db.check_dvs(name), name

    def test_mixed_modes_resolved_correctly(self, pipeline):
        db = pipeline
        modes = {name: db.dynamic_table(name).effective_refresh_mode.value
                 for name in ALL_DTS}
        assert modes["toplist"] == "full"       # ORDER BY/LIMIT
        del modes["toplist"]
        assert set(modes.values()) == {"incremental"}

    def test_graph_shape(self, pipeline):
        graph = DependencyGraph(pipeline.catalog)
        assert len(graph.connected_components()) == 1
        order = [dt.name for dt in graph.topological_order()]
        assert order.index("purchases") < order.index("enriched")
        assert order.index("regional") < order.index("weighted")

    def test_ddl_midrun_reinitializes_then_recovers(self, pipeline):
        db = pipeline
        rng = random.Random(13)
        drive(db, rng, 10)
        db.execute("CREATE OR REPLACE TABLE rates "
                   "(region text, multiplier int)")
        db.execute("INSERT INTO rates VALUES ('na', 10), ('eu', 10),"
                   " ('apac', 10), ('latam', 10)")
        drive(db, rng, 10, start_id=5000)
        weighted = db.dynamic_table("weighted")
        actions = [r.action for r in weighted.refresh_history
                   if r.succeeded]
        assert RefreshAction.REINITIALIZE in actions
        # Back to incremental after the reinitialize.
        post = actions[actions.index(RefreshAction.REINITIALIZE) + 1:]
        assert RefreshAction.REINITIALIZE not in post
        for name in ALL_DTS:
            assert db.check_dvs(name)

    def test_clone_midrun_tracks_source_semantics(self, pipeline):
        db = pipeline
        rng = random.Random(17)
        drive(db, rng, 8)
        # Clone a DT with a *concrete* lag: a clone of a DOWNSTREAM DT has
        # no downstream consumers of its own, so it would (correctly)
        # never be scheduled.
        db.execute("CREATE DYNAMIC TABLE weighted2 CLONE weighted")
        drive(db, rng, 8, start_id=7000)
        assert db.check_dvs("weighted2")
        assert sorted(db.query("SELECT * FROM weighted2").rows) == \
               sorted(db.query("SELECT * FROM weighted").rows)

    def test_clone_of_downstream_dt_is_never_scheduled(self, pipeline):
        db = pipeline
        drive(db, random.Random(29), 5)
        db.execute("CREATE DYNAMIC TABLE regional2 CLONE regional")
        clone = db.dynamic_table("regional2")
        refreshes_at_clone = len(clone.refresh_history)
        drive(db, random.Random(31), 5, start_id=9000)
        # DOWNSTREAM lag + no consumers => refresh only on demand.
        assert len(clone.refresh_history) == refreshes_at_clone
        assert db.check_dvs("regional2")  # still self-consistent (stale)

    def test_fleet_invariants_after_run(self, pipeline):
        db = pipeline
        drive(db, random.Random(19), 30)
        # Every DT met its lag; nothing is stuck; SLOs clean.
        for entry in slo_report(db.dynamic_tables()):
            assert entry.within_lag, entry
        assert db.scheduler.liveness.check(db.now) == []
        # Lag alignment: shared-timestamp components.
        graph = DependencyGraph(db.catalog)
        purchases_ts = set(
            db.dynamic_table("purchases").table.refresh_timestamps())
        for name in ("enriched", "regional", "weighted"):
            for ts in db.dynamic_table(name).table.refresh_timestamps():
                assert ts in purchases_ts

    def test_manual_and_scheduled_interleave(self, pipeline):
        db = pipeline
        rng = random.Random(23)
        drive(db, rng, 5)
        db.execute("INSERT INTO events VALUES (9999, 1, 'buy', 33)")
        db.refresh_dynamic_table("weighted")  # manual, mid-schedule
        drive(db, rng, 5, start_id=8000)
        for name in ALL_DTS:
            assert db.check_dvs(name)
