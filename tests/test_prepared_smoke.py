"""Perf smoke check: prepared statements skip parse + optimize.

PR 1 added a plan cache keyed by (query text, catalog epoch); the prepared
statement API exploits it across repeat executions. This check runs the
same point-lookup query N times two ways — as fresh ``query()`` calls
(each paying tokenize + parse + bind + optimize) and as one
:class:`~repro.api.prepared.PreparedStatement` re-executed with new binds
(plan-cache hit, zero frontend work) — asserts the prepared path is at
least 2x faster, and snapshots both throughputs to
``benchmarks/BENCH_prepared.json``.

Runs as part of tier-1 (it is fast); deselect with ``-m "not perf"``.
"""

import os
import sys
import time

import pytest

from repro import Database

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "benchmarks"))
from reporting import emit_json  # noqa: E402

pytestmark = pytest.mark.perf

TABLE_ROWS = 100
EXECUTIONS = 300

QUERY_TEMPLATE = ("SELECT id, grp, val * 2 doubled FROM items "
                  "WHERE val >= {} AND id < 10000")
PREPARED_QUERY = ("SELECT id, grp, val * 2 doubled FROM items "
                  "WHERE val >= ? AND id < 10000")


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE items (id int, grp text, val int)")
    database.execute("INSERT INTO items VALUES " + ", ".join(
        f"({i}, 'g{i % 10}', {i % 100})" for i in range(TABLE_ROWS)))
    return database


def test_prepared_reexecution_at_least_2x_fresh_query(db):
    prepared = db.prepare(PREPARED_QUERY)

    # Warm both paths once (first prepared execution builds the plan).
    baseline = db.query(QUERY_TEMPLATE.format(0)).rows
    assert prepared.query((0,)).rows == baseline

    start = time.perf_counter()
    for i in range(EXECUTIONS):
        db.query(QUERY_TEMPLATE.format(i % 50))
    fresh_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    for i in range(EXECUTIONS):
        prepared.query((i % 50,))
    prepared_elapsed = time.perf_counter() - start

    # Both paths agree on results for every bind.
    for bound in (0, 17, 49):
        assert sorted(prepared.query((bound,)).rows) == \
            sorted(db.query(QUERY_TEMPLATE.format(bound)).rows)

    speedup = fresh_elapsed / prepared_elapsed
    emit_json("BENCH_prepared.json", {
        "scenario": ("point lookup re-executed with varying binds: "
                     "prepared statement vs fresh query()"),
        "query": PREPARED_QUERY,
        "table_rows": TABLE_ROWS,
        "executions": EXECUTIONS,
        "fresh_query_per_second": round(EXECUTIONS / fresh_elapsed, 1),
        "prepared_per_second": round(EXECUTIONS / prepared_elapsed, 1),
        "speedup": round(speedup, 2),
    })

    # The acceptance bar: plan-cache hits make re-execution >= 2x faster.
    assert speedup >= 2.0, (
        f"prepared re-execution only {speedup:.2f}x faster "
        f"(fresh {fresh_elapsed:.4f}s vs prepared {prepared_elapsed:.4f}s)")
