"""Tests for initialization timestamp selection (section 3.1.2) and
target-lag parsing."""

import pytest

from repro import Database
from repro.core.initialization import choose_initialization_timestamp
from repro.core.lag import TargetLag
from repro.errors import UserError
from repro.util.timeutil import MINUTE, SECOND, minutes


class TestTargetLag:
    def test_parse_duration(self):
        lag = TargetLag.parse("5 minutes")
        assert lag.duration == minutes(5)
        assert not lag.is_downstream

    def test_parse_downstream(self):
        assert TargetLag.parse("DOWNSTREAM").is_downstream
        assert TargetLag.parse(" downstream ").is_downstream

    def test_minimum_enforced(self):
        with pytest.raises(UserError):
            TargetLag.parse("30 seconds")

    def test_str(self):
        assert str(TargetLag.parse("1 minute")) == "1 minute"
        assert str(TargetLag.downstream()) == "DOWNSTREAM"


class TestChoice:
    def test_no_upstream_uses_creation_time(self):
        choice = choose_initialization_timestamp([], creation_time=100,
                                                 target_lag=minutes(1))
        assert choice.data_timestamp == 100
        assert not choice.requires_upstream_refresh


class TestEndToEnd:
    """The quadratic-refresh-avoidance behaviour, on the real system."""

    def make_db(self):
        db = Database()
        db.create_warehouse("wh")
        db.execute("CREATE TABLE src (id int)")
        db.execute("INSERT INTO src VALUES (1)")
        return db

    def test_stacked_creation_reuses_upstream_timestamp(self):
        db = self.make_db()
        a = db.create_dynamic_table("a", "SELECT id FROM src",
                                    "1 minute", "wh")
        refreshes_of_a = len(a.refresh_history)
        db.clock.advance(10 * SECOND)  # within the 1-minute lag
        b = db.create_dynamic_table("b", "SELECT id FROM a",
                                    "1 minute", "wh")
        # a was NOT refreshed again; b reused a's data timestamp.
        assert len(a.refresh_history) == refreshes_of_a
        assert b.data_timestamp == a.data_timestamp

    def test_initialized_to_past_timestamp(self):
        """'a DT created at t might be initialized to a data timestamp of
        t' < t' — the counterintuitive consequence the paper accepts."""
        db = self.make_db()
        db.create_dynamic_table("a", "SELECT id FROM src", "1 minute", "wh")
        db.clock.advance(30 * SECOND)
        b = db.create_dynamic_table("b", "SELECT id FROM a",
                                    "1 minute", "wh")
        assert b.data_timestamp < db.now

    def test_stale_upstream_forces_fresh_timestamp(self):
        db = self.make_db()
        a = db.create_dynamic_table("a", "SELECT id FROM src",
                                    "1 minute", "wh")
        db.clock.advance(10 * MINUTE)  # far beyond the target lag
        b = db.create_dynamic_table("b", "SELECT id FROM a",
                                    "1 minute", "wh")
        # a had to refresh again at the new timestamp.
        assert b.data_timestamp == db.now
        assert a.data_timestamp == b.data_timestamp

    def test_deep_chain_initializes_linearly(self):
        """The pattern the heuristic exists for: creating a chain in
        dependency order must not refresh upstream DTs repeatedly."""
        db = self.make_db()
        names = ["d0"]
        db.create_dynamic_table("d0", "SELECT id FROM src", "1 minute", "wh")
        for depth in range(1, 5):
            db.clock.advance(SECOND)
            db.create_dynamic_table(
                f"d{depth}", f"SELECT id FROM d{depth - 1}",
                "1 minute", "wh")
            names.append(f"d{depth}")
        counts = [len(db.dynamic_table(name).refresh_history)
                  for name in names]
        assert counts == [1, 1, 1, 1, 1]  # no quadratic blowup

    def test_multi_upstream_requires_common_timestamp(self):
        db = self.make_db()
        db.create_dynamic_table("a", "SELECT id FROM src", "1 minute", "wh")
        db.clock.advance(5 * SECOND)
        db.create_dynamic_table("b", "SELECT id FROM src", "1 minute", "wh")
        db.clock.advance(5 * SECOND)
        joined = db.create_dynamic_table(
            "j", "SELECT x.id FROM a x JOIN b y ON x.id = y.id",
            "1 minute", "wh")
        # a and b have no common registered timestamp within the lag, so
        # initialization picked a fresh one and refreshed both.
        assert joined.data_timestamp == db.now
        assert db.dynamic_table("a").data_timestamp == db.now
        assert db.dynamic_table("b").data_timestamp == db.now
        assert db.check_dvs("j")
