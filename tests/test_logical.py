"""Tests for logical plan helpers: traversal, equi-key extraction."""

import pytest

from repro.engine import expressions as e
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.plan import logical as lp

LEFT = schema_of(("a", SqlType.INT), ("b", SqlType.TEXT), table="l")
RIGHT = schema_of(("c", SqlType.INT), ("d", SqlType.TEXT), table="r")


def join_with(condition, kind="inner"):
    return lp.Join(kind, lp.Scan("l", LEFT), lp.Scan("r", RIGHT), condition)


def col(index, sql_type=SqlType.INT):
    return e.ColumnRef(index, sql_type)


class TestEquiKeys:
    def test_simple_equality(self):
        # l.a (index 0) = r.c (index 2)
        join = join_with(e.Comparison("=", col(0), col(2)))
        keys = lp.extract_equi_keys(join)
        assert len(keys.left_keys) == 1
        assert keys.left_keys[0].index == 0
        assert keys.right_keys[0].index == 0  # rebased to right schema
        assert keys.residual is None

    def test_reversed_sides(self):
        join = join_with(e.Comparison("=", col(2), col(0)))
        keys = lp.extract_equi_keys(join)
        assert len(keys.left_keys) == 1

    def test_expression_keys(self):
        doubled = e.Arithmetic("*", col(0), e.Literal(2))
        join = join_with(e.Comparison("=", doubled, col(2)))
        keys = lp.extract_equi_keys(join)
        assert len(keys.left_keys) == 1
        assert isinstance(keys.left_keys[0], e.Arithmetic)

    def test_residual_preserved(self):
        condition = e.BooleanOp("and", (
            e.Comparison("=", col(0), col(2)),
            e.Comparison(">", col(0), e.Literal(5))))
        keys = lp.extract_equi_keys(join_with(condition))
        assert len(keys.left_keys) == 1
        assert keys.residual is not None

    def test_same_side_equality_is_residual(self):
        condition = e.Comparison("=", col(0),
                                 e.ColumnRef(1, SqlType.INT))
        keys = lp.extract_equi_keys(join_with(condition))
        assert not keys.left_keys
        assert keys.residual is not None

    def test_inequality_is_residual(self):
        keys = lp.extract_equi_keys(
            join_with(e.Comparison("<", col(0), col(2))))
        assert not keys.left_keys
        assert keys.residual is not None

    def test_cross_join_no_keys(self):
        keys = lp.extract_equi_keys(join_with(None, kind="cross"))
        assert not keys.left_keys and keys.residual is None


class TestPlanStructure:
    def test_walk_preorder(self):
        join = join_with(e.Comparison("=", col(0), col(2)))
        filtered = lp.Filter(join, e.Literal(True, SqlType.BOOL))
        names = [type(node).__name__ for node in filtered.walk()]
        assert names == ["Filter", "Join", "Scan", "Scan"]

    def test_scans_of(self):
        join = join_with(e.Comparison("=", col(0), col(2)))
        assert lp.scans_of(join) == ["l", "r"]

    def test_with_children_preserves_type(self):
        join = join_with(e.Comparison("=", col(0), col(2)))
        rebuilt = join.with_children(list(join.children()))
        assert isinstance(rebuilt, lp.Join)
        assert rebuilt.kind == "inner"

    def test_join_schema_concatenates(self):
        join = join_with(None, kind="cross")
        assert join.schema.names == ["a", "b", "c", "d"]

    def test_unknown_join_kind_rejected(self):
        with pytest.raises(ValueError):
            lp.Join("sideways", lp.Scan("l", LEFT), lp.Scan("r", RIGHT), None)

    def test_pretty_renders_tree(self):
        join = join_with(e.Comparison("=", col(0), col(2)))
        text = lp.Filter(join, e.Literal(True, SqlType.BOOL)).pretty()
        assert "Scan(l)" in text and "\n" in text
        assert text.splitlines()[0].startswith("Filter")
