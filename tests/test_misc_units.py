"""Unit tests for the small supporting modules: errors, relations, the
simulation clock, and DT state machinery."""

import pytest

from repro import errors
from repro.core.dynamic_table import (MAX_CONSECUTIVE_FAILURES,
                                      RefreshAction, RefreshRecord)
from repro.engine.relation import Relation
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.scheduler.clock import SimClock
from repro.util.timeutil import MINUTE, SECOND


class TestErrorHierarchy:
    def test_user_errors_are_repro_errors(self):
        assert issubclass(errors.UserError, errors.ReproError)
        assert issubclass(errors.ParseError, errors.SqlError)
        assert issubclass(errors.EvaluationError, errors.UserError)
        assert issubclass(errors.SuspendedError, errors.DynamicTableError)

    def test_internal_errors_separate_from_user_errors(self):
        assert issubclass(errors.ChangeIntegrityError, errors.InternalError)
        assert not issubclass(errors.InternalError, errors.UserError)

    def test_dropped_is_not_found(self):
        assert issubclass(errors.EntityDropped, errors.EntityNotFound)

    def test_version_not_found_is_transactional(self):
        assert issubclass(errors.VersionNotFound, errors.TransactionError)

    def test_parse_error_location(self):
        error = errors.ParseError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.column == 7


class TestRelation:
    SCHEMA = schema_of(("a", SqlType.INT))

    def test_positional_fallback_ids(self):
        relation = Relation(self.SCHEMA, [(1,), (2,)])
        assert relation.row_ids == ["pos:0", "pos:1"]

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError):
            Relation(self.SCHEMA, [(1,), (2,)], ["only-one"])

    def test_pairs_roundtrip(self):
        relation = Relation.from_pairs(self.SCHEMA, [("x", (1,)),
                                                     ("y", (2,))])
        assert list(relation.pairs()) == [("x", (1,)), ("y", (2,))]
        assert len(relation) == 2
        assert list(relation) == [(1,), (2,)]

    def test_append(self):
        relation = Relation(self.SCHEMA)
        relation.append("r", (9,))
        assert relation.rows == [(9,)]


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.now() == 0
        clock.advance(5 * SECOND)
        assert clock.now() == 5 * SECOND

    def test_advance_to(self):
        clock = SimClock(start=MINUTE)
        clock.advance_to(2 * MINUTE)
        assert clock.now() == 2 * MINUTE

    def test_backwards_rejected(self):
        clock = SimClock(start=MINUTE)
        with pytest.raises(errors.InternalError):
            clock.advance_to(0)
        with pytest.raises(errors.InternalError):
            clock.advance(-1)


class TestRefreshRecord:
    def test_succeeded_excludes_errors_and_skips(self):
        good = RefreshRecord(data_timestamp=0, action=RefreshAction.FULL)
        failed = RefreshRecord(data_timestamp=0)
        failed.error = "boom"
        skipped = RefreshRecord(data_timestamp=0, skipped=True)
        assert good.succeeded
        assert not failed.succeeded
        assert not skipped.succeeded

    def test_rows_changed_and_duration(self):
        record = RefreshRecord(data_timestamp=0)
        record.rows_inserted = 3
        record.rows_deleted = 2
        record.start_wall = 10
        record.end_wall = 25
        assert record.rows_changed == 5
        assert record.duration == 15


class TestSuspensionStateMachine:
    def make_dt(self):
        from repro import Database

        db = Database()
        db.create_warehouse("wh")
        db.execute("CREATE TABLE t (a int)")
        return db.create_dynamic_table("d", "SELECT a FROM t",
                                       "1 minute", "wh")

    def test_failures_accumulate_then_suspend(self):
        dt = self.make_dt()
        for __ in range(MAX_CONSECUTIVE_FAILURES):
            failed = RefreshRecord(data_timestamp=0)
            failed.error = "x"
            dt.record_refresh(failed)
        assert dt.suspended

    def test_skips_do_not_count_as_failures(self):
        dt = self.make_dt()
        for __ in range(MAX_CONSECUTIVE_FAILURES + 2):
            dt.record_refresh(RefreshRecord(data_timestamp=0, skipped=True))
        assert not dt.suspended

    def test_success_resets(self):
        dt = self.make_dt()
        failed = RefreshRecord(data_timestamp=0)
        failed.error = "x"
        dt.record_refresh(failed)
        ok = RefreshRecord(data_timestamp=1, action=RefreshAction.NO_DATA)
        dt.record_refresh(ok)
        assert dt.consecutive_failures == 0

    def test_lag_at(self):
        dt = self.make_dt()
        data_ts = dt.data_timestamp
        assert dt.lag_at(data_ts + MINUTE) == MINUTE
