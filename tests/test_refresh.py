"""Tests for the refresh engine: actions, frontiers, failure handling."""

import pytest

from repro import Database
from repro.core.dynamic_table import RefreshAction
from repro.errors import NotInitializedError, UserError, VersionNotFound
from repro.util.timeutil import MINUTE, SECOND


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE src (id int, grp text, val int)")
    database.execute(
        "INSERT INTO src VALUES (1, 'a', 10), (2, 'b', 20), (3, 'a', 30)")
    return database


def make_dt(db, name="d", sql="SELECT grp, sum(val) s FROM src GROUP BY grp",
            **kwargs):
    return db.create_dynamic_table(name, sql, "1 minute", "wh", **kwargs)


class TestActions:
    def test_initial_refresh(self, db):
        dt = make_dt(db)
        assert dt.refresh_history[0].action == RefreshAction.INITIAL
        assert dt.initialized
        assert sorted(db.query("SELECT * FROM d").rows) == [
            ("a", 40), ("b", 20)]

    def test_no_data_when_sources_unchanged(self, db):
        dt = make_dt(db)
        db.refresh_dynamic_table("d")
        assert dt.refresh_history[-1].action == RefreshAction.NO_DATA
        assert dt.refresh_history[-1].rows_changed == 0

    def test_no_data_still_advances_data_timestamp(self, db):
        dt = make_dt(db)
        before = dt.data_timestamp
        db.clock.advance(MINUTE)
        db.refresh_dynamic_table("d")
        assert dt.data_timestamp > before

    def test_incremental_on_change(self, db):
        dt = make_dt(db)
        db.execute("INSERT INTO src VALUES (4, 'a', 5)")
        db.refresh_dynamic_table("d")
        record = dt.refresh_history[-1]
        assert record.action == RefreshAction.INCREMENTAL
        assert sorted(db.query("SELECT * FROM d").rows) == [
            ("a", 45), ("b", 20)]

    def test_full_mode_forces_full_action(self, db):
        dt = make_dt(db, name="f", refresh_mode="full")
        db.execute("INSERT INTO src VALUES (4, 'a', 5)")
        db.refresh_dynamic_table("f")
        assert dt.refresh_history[-1].action == RefreshAction.FULL

    def test_scalar_aggregate_auto_resolves_to_incremental(self, db):
        """Scalar aggregates no longer force FULL mode: the stateful
        aggregate rule maintains the single implicit group."""
        dt = make_dt(db, name="f2", sql="SELECT count(*) n FROM src")
        assert dt.effective_refresh_mode.value == "incremental"
        db.execute("INSERT INTO src VALUES (9, 'z', 1)")
        db.refresh_dynamic_table("f2")
        assert dt.refresh_history[-1].action == RefreshAction.INCREMENTAL
        assert db.query("SELECT * FROM f2").rows == [(4,)]

    def test_full_only_query_auto_resolves_to_full(self, db):
        dt = make_dt(db, name="f3",
                     sql="SELECT id, row_number() over (order by id) rn "
                         "FROM src")
        assert dt.effective_refresh_mode.value == "full"
        db.execute("INSERT INTO src VALUES (9, 'z', 1)")
        db.refresh_dynamic_table("f3")
        assert dt.refresh_history[-1].action == RefreshAction.FULL

    def test_incremental_mode_on_unsupported_query_rejected(self, db):
        from repro.errors import NotIncrementalizableError

        with pytest.raises(NotIncrementalizableError):
            make_dt(db, name="bad",
                    sql="SELECT id, row_number() over (order by id) rn "
                        "FROM src",
                    refresh_mode="incremental")


class TestDvsInvariant:
    def test_dvs_after_each_refresh(self, db):
        make_dt(db)
        for step in range(5):
            db.execute(f"INSERT INTO src VALUES ({10 + step}, 'c', {step})")
            if step % 2:
                db.execute("DELETE FROM src WHERE val > 25")
            db.refresh_dynamic_table("d")
            assert db.check_dvs("d")

    def test_update_workload(self, db):
        make_dt(db)
        db.execute("UPDATE src SET val = val + 1 WHERE grp = 'a'")
        db.refresh_dynamic_table("d")
        assert db.check_dvs("d")
        assert sorted(db.query("SELECT * FROM d").rows) == [
            ("a", 42), ("b", 20)]

    def test_incremental_equals_full_recompute(self, db):
        incremental = make_dt(db, name="inc")
        full = make_dt(db, name="ful", refresh_mode="full")
        for step in range(4):
            db.execute(f"INSERT INTO src VALUES ({20 + step}, 'a', {step})")
            db.execute("DELETE FROM src WHERE val = 20")
            db.refresh_dynamic_table("inc")
            db.refresh_dynamic_table("ful")
            assert sorted(db.query("SELECT * FROM inc").rows) == \
                   sorted(db.query("SELECT * FROM ful").rows)


class TestStackedDts:
    def test_dt_over_dt(self, db):
        make_dt(db, name="base_dt",
                sql="SELECT id, grp, val FROM src WHERE val > 5")
        make_dt(db, name="top_dt",
                sql="SELECT grp, count(*) n FROM base_dt GROUP BY grp")
        db.execute("INSERT INTO src VALUES (7, 'b', 100)")
        db.refresh_dynamic_table("top_dt")
        assert sorted(db.query("SELECT * FROM top_dt").rows) == [
            ("a", 2), ("b", 2)]
        assert db.check_dvs("top_dt")

    def test_exact_version_lookup_enforced(self, db):
        dt = make_dt(db, name="up")
        make_dt(db, name="down", sql="SELECT grp FROM up")
        # Refreshing `down` directly at a timestamp `up` never refreshed
        # at must fail (section 6.1 validation #1).
        record = db.engine.refresh(db.dynamic_table("down"),
                                   db.now + 5 * SECOND)
        assert record.error is not None
        assert "VersionNotFound" in record.error

    def test_reading_uninitialized_dt_fails(self, db):
        make_dt(db, name="lazy", initialize="on_schedule")
        with pytest.raises(NotInitializedError):
            db.query("SELECT * FROM lazy")

    def test_on_schedule_initialization_via_scheduler(self, db):
        dt = make_dt(db, name="lazy", initialize="on_schedule")
        assert not dt.initialized
        db.run_for(2 * MINUTE)
        assert dt.initialized


class TestErrorsAndSuspension:
    def test_user_error_recorded_not_raised(self, db):
        dt = make_dt(db, name="boom",
                     sql="SELECT grp, sum(val / (val - 10)) s FROM src "
                         "GROUP BY grp", initialize="on_schedule")
        record = db.engine.refresh(dt, db.now + SECOND)
        assert record.error is not None
        assert "division by zero" in record.error

    def test_consecutive_failures_suspend(self, db):
        dt = make_dt(db, name="boom",
                     sql="SELECT grp, sum(val / (val - 10)) s FROM src "
                         "GROUP BY grp", initialize="on_schedule")
        for attempt in range(5):
            db.engine.refresh(dt, db.now + (attempt + 1) * SECOND)
        assert dt.suspended

    def test_resume_resets_counter(self, db):
        dt = make_dt(db, name="boom",
                     sql="SELECT grp, sum(val / (val - 10)) s FROM src "
                         "GROUP BY grp", initialize="on_schedule")
        for attempt in range(5):
            db.engine.refresh(dt, db.now + (attempt + 1) * SECOND)
        db.execute("DELETE FROM src WHERE val = 10")  # fix the data
        db.execute("ALTER DYNAMIC TABLE boom RESUME")
        assert not dt.suspended
        assert dt.consecutive_failures == 0
        db.refresh_dynamic_table("boom")
        assert dt.initialized

    def test_success_resets_failure_counter(self, db):
        dt = make_dt(db)
        dt.consecutive_failures = 3
        db.execute("INSERT INTO src VALUES (9, 'z', 1)")
        db.refresh_dynamic_table("d")
        assert dt.consecutive_failures == 0

    def test_suspended_dt_rejects_refresh(self, db):
        make_dt(db)
        db.execute("ALTER DYNAMIC TABLE d SUSPEND")
        with pytest.raises(UserError):
            db.refresh_dynamic_table("d")


class TestFrontier:
    def test_frontier_tracks_each_source(self, db):
        db.execute("CREATE TABLE other (k int)")
        db.execute("INSERT INTO other VALUES (1)")
        dt = make_dt(db, name="joined",
                     sql="SELECT s.id, o.k FROM src s JOIN other o "
                         "ON s.id = o.k")
        assert set(dt.frontier.cursors) == {"src", "other"}

    def test_frontier_advances_only_changed_sources(self, db):
        db.execute("CREATE TABLE other (k int)")
        db.execute("INSERT INTO other VALUES (1)")
        dt = make_dt(db, name="joined",
                     sql="SELECT s.id, o.k FROM src s JOIN other o "
                         "ON s.id = o.k")
        before = dt.frontier
        db.execute("INSERT INTO other VALUES (2)")
        db.refresh_dynamic_table("joined")
        moved = dt.frontier.advanced_from(before)
        assert moved == ["other"]


class TestContextFunctions:
    """Section 3.4: context functions are handled so DVS stays exact —
    queries using them fall back to FULL refresh."""

    def test_current_timestamp_forces_full_mode(self, db):
        dt = make_dt(db, name="stamped",
                     sql="SELECT id, current_timestamp() ts FROM src")
        assert dt.effective_refresh_mode.value == "full"

    def test_dvs_holds_for_context_queries(self, db):
        from repro.util.timeutil import MINUTE

        make_dt(db, name="stamped",
                sql="SELECT id, current_timestamp() ts FROM src")
        db.clock.advance(MINUTE)
        db.execute("INSERT INTO src VALUES (9, 'z', 1)")
        db.refresh_dynamic_table("stamped")
        assert db.check_dvs("stamped")
        # Every row carries the refresh's data timestamp.
        timestamps = {row[1] for row in
                      db.query("SELECT * FROM stamped").rows}
        assert len(timestamps) == 1

    def test_incremental_mode_with_context_rejected(self, db):
        from repro.errors import NotIncrementalizableError

        with pytest.raises(NotIncrementalizableError):
            make_dt(db, name="bad",
                    sql="SELECT id, current_timestamp() ts FROM src",
                    refresh_mode="incremental")
