"""Unit tests for the columnar execution core.

Covers the three layers the columnar refactor introduced:

* the :class:`Relation` columnar block layout and its row-tuple
  compatibility view;
* the struct-of-arrays :class:`ChangeSet` (bulk mutation, array accessors,
  vectorized consolidation);
* the vectorized expression compiler (value equivalence with the
  reference interpreter, including the lazy-evaluation guard semantics of
  AND/OR and CASE) and the columnar storage partition layout.
"""

import pytest

from repro.engine import types as t
from repro.engine.executor import Block, evaluate, force_columnar
from repro.engine.expressions import (Arithmetic, BooleanOp, Case, Cast,
                                      ColumnRef, Comparison, FunctionCall,
                                      InList, IsNull, Like, Literal, Not,
                                      DEFAULT_CONTEXT, DEFAULT_REGISTRY,
                                      compile_expression_columnar,
                                      compile_group_key_columnar,
                                      compile_row_columnar)
from repro.engine.relation import (DictResolver, Relation, columnar_enabled,
                                   row_major_mode)
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.errors import EvaluationError, RowIdIntegrityError
from repro.ivm.changes import Action, Change, ChangeSet, consolidate, invert
from repro.ivm.differentiator import DictDeltaSource, differentiate
from repro.plan.builder import DictSchemaProvider, build_plan
from repro.sql.parser import parse_query
from repro.storage.partition import Partition, build_partitions

ITEMS = schema_of(("id", SqlType.INT), ("grp", SqlType.TEXT),
                  ("val", SqlType.INT), table="items")


class TestRelationBlockLayout:
    def test_from_columns_round_trip(self):
        relation = Relation.from_columns(
            ITEMS, [[1, 2, 3], ["a", "b", "c"], [10, 20, 30]],
            ["r0", "r1", "r2"])
        assert relation.is_columnar
        assert relation.rows == [(1, "a", 10), (2, "b", 20), (3, "c", 30)]
        assert list(relation.pairs())[1] == ("r1", (2, "b", 20))
        assert len(relation) == 3

    def test_rows_to_columns_materialization(self):
        relation = Relation(ITEMS, [(1, "a", 10), (2, "b", 20)],
                            ["r0", "r1"])
        assert not relation.is_columnar
        assert relation.columns == [[1, 2], ["a", "b"], [10, 20]]
        assert relation.column(2) == [10, 20]
        assert relation.is_columnar  # cached after first access

    def test_append_keeps_layouts_in_sync(self):
        relation = Relation.from_columns(ITEMS, [[1], ["a"], [10]], ["r0"])
        __ = relation.rows  # materialize both layouts
        relation.append("r1", (2, "b", 20))
        assert relation.rows == [(1, "a", 10), (2, "b", 20)]
        assert relation.columns == [[1, 2], ["a", "b"], [10, 20]]
        assert relation.row_ids == ["r0", "r1"]

    def test_empty_columnar_relation(self):
        relation = Relation.from_columns(ITEMS, [[], [], []], [])
        assert len(relation) == 0
        assert relation.rows == []

    def test_positional_fallback_ids(self):
        relation = Relation(ITEMS, [(1, "a", 10)])
        assert relation.row_ids == ["pos:0"]
        columnar = Relation.from_columns(ITEMS, [[1], ["a"], [10]])
        assert columnar.row_ids == ["pos:0"]

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError):
            Relation(ITEMS, [(1, "a", 10)], ["r0", "r1"])
        with pytest.raises(ValueError):
            Relation.from_columns(ITEMS, [[1], ["a"], [10]], ["r0", "r1"])


class TestBlock:
    def test_iteration_len_and_slicing(self):
        block = Block(["r0", "r1", "r2"], [[1, 2, 3], ["a", "b", "c"]])
        assert len(block) == 3
        assert list(block) == [("r0", (1, "a")), ("r1", (2, "b")),
                               ("r2", (3, "c"))]
        head = block[:2]
        assert isinstance(head, Block)
        assert head.row_tuples() == [(1, "a"), (2, "b")]
        assert block[1] == ("r1", (2, "b"))


class TestSoAChangeSet:
    def test_bulk_insert_delete(self):
        changes = ChangeSet()
        changes.delete_many(["a", "b"], [(1,), (2,)])
        changes.insert_many(["c"], [(3,)])
        assert len(changes) == 3
        assert changes.actions == [Action.DELETE, Action.DELETE,
                                   Action.INSERT]
        assert changes.insert_arrays() == (["c"], [(3,)])
        assert changes.delete_arrays() == (["a", "b"], [(1,), (2,)])
        assert not changes.insert_only

    def test_changes_view_and_setter(self):
        changes = ChangeSet()
        changes.insert("a", (1,))
        view = changes.changes
        assert view == [Change(Action.INSERT, "a", (1,))]
        changes.changes = [Change(Action.DELETE, "b", (2,))]
        assert changes.row_ids == ["b"]
        assert changes.actions == [Action.DELETE]

    def test_extend_changeset_is_bulk(self):
        left = ChangeSet()
        left.insert("a", (1,))
        right = ChangeSet()
        right.delete("b", (2,))
        left.extend(right)
        assert left.row_ids == ["a", "b"]
        assert [c.action for c in left] == [Action.INSERT, Action.DELETE]

    def test_consolidate_on_arrays(self):
        changes = ChangeSet()
        changes.delete_many(["a", "b"], [(1,), (2,)])
        changes.insert_many(["a", "c"], [(1,), (3,)])  # a: copied row
        result = consolidate(changes)
        assert [(c.action, c.row_id) for c in result] == [
            (Action.DELETE, "b"), (Action.INSERT, "c")]

    def test_invert_preserves_arrays(self):
        changes = ChangeSet()
        changes.insert("a", (1,))
        changes.delete("b", (2,))
        inverted = invert(changes)
        assert inverted.actions == [Action.DELETE, Action.INSERT]
        assert inverted.row_ids == ["a", "b"]
        assert changes.actions == [Action.INSERT, Action.DELETE]  # untouched


class TestColumnarPartitions:
    def test_partition_stores_columns(self):
        pairs = [(f"r{i}", (i, f"g{i % 2}", i * 10)) for i in range(5)]
        partition = Partition.create(pairs)
        assert partition.columns[0] == (0, 1, 2, 3, 4)
        assert partition.row_ids == tuple(f"r{i}" for i in range(5))
        assert partition.rows == tuple(pairs)  # compatibility view

    def test_zone_maps_from_column_arrays(self):
        partition = Partition.from_columns(
            ["r0", "r1", "r2"], [[5, None, 9], ["x", "y", "z"]])
        num, text = partition.zone_maps
        assert (num.kind, num.low, num.high, num.has_null) == (
            "num", 5, 9, True)
        assert (text.kind, text.low, text.high) == ("str", "x", "z")

    def test_build_partitions_chunks(self):
        pairs = [(f"r{i}", (i,)) for i in range(7)]
        partitions = build_partitions(pairs, 3)
        assert [len(p) for p in partitions] == [3, 3, 1]
        assert partitions[2].columns == ((6,),)


#: Expression battery for interpreter-vs-vectorized equivalence. Each
#: entry builds an expression over (id INT, grp TEXT, val INT).
def _battery():
    id_col = ColumnRef(0, SqlType.INT, "id")
    grp = ColumnRef(1, SqlType.TEXT, "grp")
    val = ColumnRef(2, SqlType.INT, "val")
    length = DEFAULT_REGISTRY.lookup("length")
    coalesce = DEFAULT_REGISTRY.lookup("coalesce")
    return [
        Literal(7),
        id_col,
        Arithmetic("+", id_col, Literal(1)),
        Arithmetic("*", id_col, val),
        Arithmetic("-", val, id_col),
        Comparison(">", val, Literal(5)),
        Comparison("=", grp, Literal("a")),
        Comparison("<=", id_col, val),
        BooleanOp("and", (Comparison(">", val, Literal(2)),
                          Comparison("=", grp, Literal("a")))),
        BooleanOp("or", (IsNull(val), Comparison("<", id_col, Literal(3)))),
        Not(Comparison("=", grp, Literal("b"))),
        IsNull(val),
        IsNull(val, negated=True),
        InList(grp, (Literal("a"), Literal("b"), Literal(None))),
        Like(grp, Literal("a%")),
        Like(grp, Literal("_"), negated=True),
        Case(((Comparison(">", val, Literal(5)), Literal("big")),),
             Literal("small")),
        Cast(val, SqlType.TEXT),
        Cast(id_col, SqlType.FLOAT),
        FunctionCall(length, (grp,)),
        FunctionCall(coalesce, (val, id_col)),
        # The guard idiom: the division must never run where val = 0.
        BooleanOp("and", (Comparison("!=", val, Literal(0)),
                          Comparison(">", Arithmetic("/", Literal(100), val),
                                     Literal(10)))),
        Case(((Comparison("!=", val, Literal(0)),
               Arithmetic("/", Literal(100), val)),), Literal(0)),
    ]


_COLUMNS = [
    [1, 2, 3, 4, 5, 6],
    ["a", "b", "ab", None, "a", "c"],
    [10, 0, None, 3, 7, 0],
]


class TestVectorizedEvaluators:
    @pytest.mark.parametrize("expr", _battery(), ids=lambda e: repr(e)[:60])
    def test_matches_interpreter(self, expr):
        rows = list(zip(*_COLUMNS))
        expected = [expr.eval(row, DEFAULT_CONTEXT) for row in rows]
        fn = compile_expression_columnar(expr)
        assert fn(_COLUMNS, len(rows)) == expected

    def test_guard_and_never_divides_by_zero(self):
        val = ColumnRef(2, SqlType.INT, "val")
        guarded = BooleanOp("and", (
            Comparison("!=", val, Literal(0)),
            Comparison(">", Arithmetic("/", Literal(1), val), Literal(0))))
        fn = compile_expression_columnar(guarded)
        # val contains zeros; the vectorized form must not raise.
        assert fn(_COLUMNS, 6) == [True, False, None, True, True, False]

    def test_unguarded_division_still_raises(self):
        val = ColumnRef(2, SqlType.INT, "val")
        expr = Arithmetic("/", Literal(1), val)
        fn = compile_expression_columnar(expr)
        with pytest.raises(EvaluationError, match="division by zero"):
            fn(_COLUMNS, 6)

    def test_compile_row_columnar(self):
        id_col = ColumnRef(0, SqlType.INT, "id")
        val = ColumnRef(2, SqlType.INT, "val")
        fn = compile_row_columnar([id_col, Arithmetic("+", val, Literal(1))])
        out = fn(_COLUMNS, 6)
        assert out[0] == _COLUMNS[0]
        assert out[1] == [11, 1, None, 4, 8, 1]

    def test_compile_group_key_columnar(self):
        grp = ColumnRef(1, SqlType.TEXT, "grp")
        fn = compile_group_key_columnar([grp])
        keys = fn(_COLUMNS, 6)
        rows = list(zip(*_COLUMNS))
        assert keys == [t.group_key((row[1],)) for row in rows]
        scalar = compile_group_key_columnar([])
        assert scalar(_COLUMNS, 3) == [t.group_key(())] * 3


PROVIDER = DictSchemaProvider({"items": ITEMS})


def _relations():
    rows = [(i, "g" + str(i % 3), (i * 3) % 7) for i in range(25)]
    return {"items": Relation(ITEMS, rows,
                              [f"b1:{i}" for i in range(len(rows))])}


class TestExecutorPathEquivalence:
    SQL = ("SELECT id, val + 1 v FROM items WHERE val > 1 AND grp != 'g2'")

    def test_row_major_mode_matches_columnar(self):
        plan = build_plan(parse_query(self.SQL), PROVIDER)
        relations = _relations()
        columnar = evaluate(plan, DictResolver(relations))
        assert columnar_enabled()
        with row_major_mode():
            assert not columnar_enabled()
            row_major = evaluate(plan, DictResolver(relations))
        assert columnar.rows == row_major.rows
        assert columnar.row_ids == row_major.row_ids

    def test_force_columnar_matches_default(self):
        plan = build_plan(parse_query(
            "SELECT grp, count(*) n FROM items GROUP BY grp"), PROVIDER)
        relations = _relations()
        default = evaluate(plan, DictResolver(relations))
        with force_columnar():
            forced = evaluate(plan, DictResolver(relations))
        assert default.rows == forced.rows
        assert default.row_ids == forced.row_ids


class TestPositionalIdGuard:
    def test_endpoint_scan_with_pos_ids_rejected(self):
        # Aggregation recomputes affected groups at both endpoints, so the
        # anonymous relation reaches the endpoint resolver and must be
        # rejected there.
        plan = build_plan(parse_query(
            "SELECT grp, count(*) n FROM items GROUP BY grp"), PROVIDER)
        anonymous = Relation(ITEMS, [(1, "a", 5)])  # pos: fallback ids
        delta = ChangeSet()
        delta.insert("real:0", (2, "b", 6))
        source = DictDeltaSource({"items": anonymous}, {"items": anonymous},
                                 {"items": delta})
        with pytest.raises(RowIdIntegrityError, match="pos"):
            differentiate(plan, source)

    def test_source_delta_with_pos_ids_rejected(self):
        plan = build_plan(parse_query(
            "SELECT id FROM items WHERE val > 1"), PROVIDER)
        proper = Relation(ITEMS, [(1, "a", 5)], ["b1:0"])
        delta = ChangeSet()
        delta.insert("pos:0", (2, "b", 6))
        source = DictDeltaSource({"items": proper}, {"items": proper},
                                 {"items": delta})
        with pytest.raises(RowIdIntegrityError, match="pos"):
            differentiate(plan, source)

    def test_proper_ids_pass(self):
        plan = build_plan(parse_query(
            "SELECT id FROM items WHERE val > 1"), PROVIDER)
        proper = Relation(ITEMS, [(1, "a", 5)], ["b1:0"])
        delta = ChangeSet()
        delta.insert("b1:1", (2, "b", 6))
        new = Relation(ITEMS, [(1, "a", 5), (2, "b", 6)], ["b1:0", "b1:1"])
        source = DictDeltaSource({"items": proper}, {"items": new},
                                 {"items": delta})
        changes, __ = differentiate(plan, source)
        assert [c.row_id for c in changes] == ["b1:1"]
