"""Tests for the transaction manager and locks."""

import pytest

from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.errors import LockConflict, TransactionError
from repro.scheduler.clock import SimClock
from repro.storage.catalog import Catalog
from repro.txn.locks import LockManager
from repro.txn.manager import TransactionManager
from repro.util.timeutil import SECOND


@pytest.fixture
def setup():
    clock = SimClock()
    catalog = Catalog(clock.now)
    manager = TransactionManager(catalog, clock.now)
    catalog.create_table("t", schema_of(("a", SqlType.INT)))
    return clock, catalog, manager


class TestLockManager:
    def test_exclusive(self):
        locks = LockManager()
        locks.acquire("t", 1)
        with pytest.raises(LockConflict):
            locks.acquire("t", 2)

    def test_reentrant(self):
        locks = LockManager()
        locks.acquire("t", 1)
        locks.acquire("t", 1)

    def test_release_all(self):
        locks = LockManager()
        locks.acquire("a", 1)
        locks.acquire("b", 1)
        locks.release_all(1)
        locks.acquire("a", 2)
        locks.acquire("b", 2)

    def test_release_wrong_holder_is_noop(self):
        locks = LockManager()
        locks.acquire("t", 1)
        locks.release("t", 2)
        assert locks.holder_of("t") == 1


class TestTransactions:
    def test_insert_commit_read(self, setup):
        clock, catalog, manager = setup
        txn = manager.begin()
        txn.insert_rows("t", [(1,), (2,)])
        txn.commit()
        reader = manager.begin()
        assert sorted(reader.scan("t").rows) == [(1,), (2,)]

    def test_uncommitted_writes_invisible(self, setup):
        clock, catalog, manager = setup
        writer = manager.begin()
        writer.insert_rows("t", [(1,)])
        reader = manager.begin()
        assert reader.scan("t").rows == []
        writer.commit()

    def test_snapshot_reads_are_stable(self, setup):
        clock, catalog, manager = setup
        txn = manager.begin()
        txn.insert_rows("t", [(1,)])
        txn.commit()
        clock.advance(SECOND)
        reader = manager.begin()  # snapshot at t=1s
        clock.advance(SECOND)
        writer = manager.begin()
        writer.insert_rows("t", [(2,)])
        writer.commit()
        assert reader.scan("t").rows == [(1,)]

    def test_write_write_conflict(self, setup):
        clock, catalog, manager = setup
        first = manager.begin()
        first.insert_rows("t", [(1,)])
        first.commit()
        clock.advance(SECOND)
        # First-committer-wins is row-level: writes conflict when a
        # commit after the transaction's snapshot touched the *same*
        # rows. Here both transactions update/delete the one row.
        table = catalog.versioned_table("t")
        row_id = next(iter(table.rows_by_id()))
        stale = manager.begin(snapshot_wall=0)
        stale.delete_rows("t", [row_id])
        third = manager.begin()
        third.update_rows("t", {row_id: (4,)})
        third.commit()
        with pytest.raises(LockConflict):
            stale.commit()

    def test_disjoint_row_writers_both_commit(self, setup):
        clock, catalog, manager = setup
        first = manager.begin()
        first.insert_rows("t", [(1,), (2,)])
        first.commit()
        clock.advance(SECOND)
        table = catalog.versioned_table("t")
        ids = sorted(table.rows_by_id())
        # Two concurrent writers touching different rows of one table:
        # row-level first-committer-wins lets both commit.
        one = manager.begin()
        other = manager.begin()
        one.update_rows("t", {ids[0]: (10,)})
        other.delete_rows("t", [ids[1]])
        one.commit()
        clock.advance(SECOND)
        other.commit()
        reader = manager.begin()
        assert sorted(reader.scan("t").rows) == [(10,)]

    def test_blind_append_exempt_from_conflict(self, setup):
        clock, catalog, manager = setup
        stale = manager.begin(snapshot_wall=0)
        stale.insert_rows("t", [(1,)])
        other = manager.begin()
        other.insert_rows("t", [(2,)])
        other.commit()
        clock.advance(SECOND)
        stale.commit()  # insert-only: cannot lose an update, no conflict
        reader = manager.begin()
        assert sorted(reader.scan("t").rows) == [(1,), (2,)]

    def test_commit_twice_rejected(self, setup):
        __, __, manager = setup
        txn = manager.begin()
        txn.insert_rows("t", [(1,)])
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_abort_discards(self, setup):
        __, __, manager = setup
        txn = manager.begin()
        txn.insert_rows("t", [(1,)])
        txn.abort()
        assert manager.begin().scan("t").rows == []
        with pytest.raises(TransactionError):
            txn.commit()

    def test_locks_released_on_commit(self, setup):
        __, __, manager = setup
        first = manager.begin()
        first.lock("t")
        first.insert_rows("t", [(1,)])
        first.commit()
        second = manager.begin()
        second.lock("t")  # no conflict: released at commit

    def test_locks_released_on_abort(self, setup):
        __, __, manager = setup
        first = manager.begin()
        first.lock("t")
        first.abort()
        manager.begin().lock("t")

    def test_lock_conflict_between_transactions(self, setup):
        __, __, manager = setup
        first = manager.begin()
        first.lock("t")
        second = manager.begin()
        with pytest.raises(LockConflict):
            second.lock("t")

    def test_pinned_version_read(self, setup):
        clock, catalog, manager = setup
        txn = manager.begin()
        txn.insert_rows("t", [(1,)])
        txn.commit()
        table = catalog.versioned_table("t")
        old = table.current_version
        clock.advance(SECOND)
        txn2 = manager.begin()
        txn2.insert_rows("t", [(2,)])
        txn2.commit()
        clock.advance(SECOND)
        reader = manager.begin()
        reader.pin_version("t", old)
        assert reader.scan("t").rows == [(1,)]

    def test_reader_sees_commits_at_wall(self, setup):
        clock, catalog, manager = setup
        txn = manager.begin()
        txn.insert_rows("t", [(1,)])
        txn.commit()
        reader = manager.reader()
        assert reader.scan("t").rows == [(1,)]

    def test_multi_table_atomic_commit(self, setup):
        clock, catalog, manager = setup
        catalog.create_table("u", schema_of(("b", SqlType.INT)))
        txn = manager.begin()
        txn.insert_rows("t", [(1,)])
        txn.insert_rows("u", [(2,)])
        commit_ts = txn.commit()
        t_version = catalog.versioned_table("t").current_version
        u_version = catalog.versioned_table("u").current_version
        assert t_version.commit_ts == commit_ts == u_version.commit_ts
