"""Tests for the workload generators."""

import random

import pytest

from repro import Database
from repro.plan.builder import build_plan
from repro.plan.properties import incrementalizability
from repro.sql.parser import parse_query
from repro.workload.generator import (QueryGenerator, UpdateWorkload,
                                      create_workload_schema)


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    create_workload_schema(database)
    return database


class TestQueryGenerator:
    def test_queries_parse_and_bind(self, db):
        generator = QueryGenerator(rng=random.Random(0))
        for __ in range(60):
            sql = generator.query()
            plan = build_plan(parse_query(sql), db.catalog)
            assert plan.schema.names

    def test_incremental_only_by_default(self, db):
        generator = QueryGenerator(rng=random.Random(1))
        for __ in range(60):
            plan = build_plan(parse_query(generator.query()), db.catalog)
            assert incrementalizability(plan).supported

    def test_full_only_mode_produces_some_unsupported(self, db):
        generator = QueryGenerator(rng=random.Random(2),
                                   allow_full_only=True)
        supported = []
        for __ in range(60):
            plan = build_plan(parse_query(generator.query()), db.catalog)
            supported.append(incrementalizability(plan).supported)
        assert not all(supported)

    def test_deterministic_under_seed(self):
        first = QueryGenerator(rng=random.Random(9))
        second = QueryGenerator(rng=random.Random(9))
        assert [first.query() for __ in range(20)] == \
               [second.query() for __ in range(20)]

    def test_covers_operator_classes(self, db):
        from repro.plan.properties import operator_inventory

        generator = QueryGenerator(rng=random.Random(3))
        seen = set()
        for __ in range(120):
            plan = build_plan(parse_query(generator.query()), db.catalog)
            for category, count in operator_inventory(plan).items():
                if count:
                    seen.add(category)
        assert {"filter", "project", "inner_join", "outer_join",
                "grouped_aggregate", "distinct", "window_function",
                "union_all"} <= seen


class TestUpdateWorkload:
    def test_seed_populates_tables(self, db):
        workload = UpdateWorkload(rng=random.Random(0))
        workload.seed(db, facts=40, dims=6)
        assert db.query("SELECT count(*) FROM facts").rows == [(40,)]
        assert db.query("SELECT count(*) FROM dims").rows == [(6,)]

    def test_steps_mutate(self, db):
        workload = UpdateWorkload(rng=random.Random(0), insert_rate=10,
                                  churn=0.5)
        workload.seed(db, facts=30, dims=5)
        table = db.catalog.versioned_table("facts")
        versions_before = len(table.versions)
        for __ in range(5):
            workload.step(db)
        assert len(table.versions) > versions_before

    def test_ids_never_collide(self, db):
        workload = UpdateWorkload(rng=random.Random(0), insert_rate=8)
        workload.seed(db, facts=30, dims=5)
        for __ in range(10):
            workload.step(db)
        ids = [row[0] for row in db.query("SELECT id FROM facts").rows]
        assert len(ids) == len(set(ids))
