"""Tests for the deterministic fault-injection subsystem and the refresh
failure policies it drives: registry + schedules, retry with modeled
backoff, error-threshold auto-suspension (§3.3.3), upstream-failure skip
propagation, wave isolation, and the ALTER/create policy surface."""

import pytest

from repro import Database
from repro.core.dynamic_table import (RefreshAction, RetryPolicy,
                                      decode_option_detail,
                                      encode_option_detail)
from repro.errors import (InjectedFault, LockConflict, SuspendedError,
                          TransientError, UserError, is_transient)
from repro.faults import (KNOWN_POINTS, FaultSchedule, HlcWindow, NthHit,
                          Probability, every, inject, nth_hit, registry)
from repro.scheduler.liveness import staleness_report
from repro.scheduler.periods import BASE_PERIOD
from repro.util.timeutil import MILLISECOND, MINUTE, SECOND


@pytest.fixture(autouse=True)
def clean_registry():
    reg = registry()
    reg.clear()
    reg.trace(False)
    reg.clock = None
    yield
    reg.clear()
    reg.trace(False)
    reg.clock = None


@pytest.fixture
def db():
    database = Database()
    database.create_warehouse("wh")
    database.execute("CREATE TABLE src (id int, grp text, val int)")
    database.execute(
        "INSERT INTO src VALUES (1, 'a', 10), (2, 'b', 20), (3, 'a', 30)")
    return database


def make_dt(db, name="d", sql="SELECT grp, sum(val) s FROM src GROUP BY grp",
            **kwargs):
    return db.create_dynamic_table(name, sql, "1 minute", "wh", **kwargs)


def refresh_once(db, dt):
    """One engine-level refresh at a fresh timestamp; returns the record
    (errors land on the record instead of raising, like the scheduler)."""
    return db.engine.refresh(dt, db.clock.advance(MILLISECOND))


class TestRegistry:
    def test_inject_is_noop_with_nothing_armed(self):
        inject("storage.apply", table="t")  # must not raise

    def test_armed_rule_fires_once_by_default(self):
        rule = registry().arm("storage.apply", nth_hit(1))
        with pytest.raises(InjectedFault) as exc:
            inject("storage.apply", table="t")
        assert exc.value.point == "storage.apply"
        inject("storage.apply", table="t")  # times=1: spent
        assert rule.fired == 1
        assert registry().fired_log == [("storage.apply", rule.description)]

    def test_match_filter_gates_the_hit_counter(self):
        rule = registry().arm("txn.commit", nth_hit(1),
                              match=lambda d: "dt1" in d.get("tables", ()))
        inject("txn.commit", tables=("src",))
        assert rule.hits == 1 and rule.matched == 0
        with pytest.raises(InjectedFault):
            inject("txn.commit", tables=("dt1",))

    def test_nth_hit_fires_on_exactly_the_nth(self):
        registry().arm("wal.append", nth_hit(3))
        inject("wal.append")
        inject("wal.append")
        with pytest.raises(InjectedFault):
            inject("wal.append")

    def test_every_n_with_unlimited_times(self):
        registry().arm("wal.append", every(2), times=None)
        fired = 0
        for __ in range(6):
            try:
                inject("wal.append")
            except InjectedFault:
                fired += 1
        assert fired == 3

    def test_disarm_and_clear(self):
        rule = registry().arm("wal.append", nth_hit(1))
        registry().disarm(rule)
        inject("wal.append")
        registry().arm("wal.append", nth_hit(1))
        registry().clear()
        inject("wal.append")
        assert not registry().armed

    def test_custom_error_factory(self):
        registry().arm("refresh.execute", nth_hit(1),
                       error=lambda: TransientError("flaky network"))
        with pytest.raises(TransientError, match="flaky network"):
            inject("refresh.execute")

    def test_hlc_window_uses_registry_clock(self):
        now = [0]
        registry().clock = lambda: now[0]
        registry().arm("refresh.execute", HlcWindow(100, 200), times=None)
        inject("refresh.execute")  # before the window
        now[0] = 150
        with pytest.raises(InjectedFault):
            inject("refresh.execute")
        now[0] = 250
        inject("refresh.execute")  # after the window

    def test_probability_stream_is_seed_deterministic(self):
        a = Probability(0.5, seed=7)
        b = Probability(0.5, seed=7)
        draws_a = [a.fires(i, {}, None) for i in range(1, 33)]
        draws_b = [b.fires(i, {}, None) for i in range(1, 33)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_fault_schedule_replays_from_seed(self):
        one = FaultSchedule.random(42, KNOWN_POINTS, count=6)
        two = FaultSchedule.random(42, KNOWN_POINTS, count=6)
        assert one.plan == two.plan
        assert FaultSchedule.random(43, KNOWN_POINTS, 6).plan != one.plan


class TestPointCoverage:
    def test_every_known_point_is_threaded(self, tmp_path):
        """Tracing a realistic durable workload must hit every point in
        KNOWN_POINTS — proof the names refer to live engine sites."""
        reg = registry()
        reg.trace(True)
        db = Database(path=str(tmp_path), parallelism=2)
        db.create_warehouse("wh")
        db.execute("CREATE TABLE src (id int, val int)")
        db.execute("INSERT INTO src VALUES (1, 10), (2, 20)")
        db.create_dynamic_table("d", "SELECT id, val FROM src",
                                "1 minute", "wh")
        db.create_dynamic_table("e", "SELECT val FROM src", "1 minute", "wh")
        db.execute("INSERT INTO src VALUES (3, 30)")
        db.run_for(2 * MINUTE)
        db.checkpoint()
        db.close()
        hits = reg.hit_counts()
        # wal.torn / wal.fsync sit inside wal.append; they count as hit
        # alongside it.
        missing = [p for p in KNOWN_POINTS if hits.get(p, 0) == 0]
        assert not missing, f"never hit: {missing} (hits: {hits})"


class TestRetryPolicy:
    def test_transient_classification(self):
        assert is_transient(InjectedFault("x"))
        assert is_transient(TransientError("x"))
        assert is_transient(LockConflict("x"))
        assert not is_transient(UserError("x"))

    def test_transient_failure_retries_and_recovers(self, db):
        dt = make_dt(db)
        dt.retry_policy = RetryPolicy(max_retries=2)
        db.execute("INSERT INTO src VALUES (4, 'a', 5)")
        registry().arm("refresh.execute", nth_hit(1),
                       match=lambda d: d.get("dt") == "d")
        record = refresh_once(db, dt)
        assert record.error is None
        assert record.retries == 1
        assert record.backoff_total == dt.retry_policy.delay(1)
        assert record.action == RefreshAction.INCREMENTAL
        assert dt.consecutive_failures == 0
        assert sorted(db.query("SELECT * FROM d").rows) == [
            ("a", 45), ("b", 20)]

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_retries=5, backoff_base=8 * SECOND,
                             backoff_factor=2, backoff_cap=20 * SECOND)
        assert policy.delay(1) == 8 * SECOND
        assert policy.delay(2) == 16 * SECOND
        assert policy.delay(3) == 20 * SECOND  # capped

    def test_retry_budget_exhaustion_records_the_error(self, db):
        dt = make_dt(db)
        dt.retry_policy = RetryPolicy(max_retries=1)
        registry().arm("refresh.execute", every(1), times=2,
                       match=lambda d: d.get("dt") == "d")
        record = refresh_once(db, dt)
        assert record.retries == 1
        assert record.error is not None and "InjectedFault" in record.error
        assert dt.consecutive_failures == 1

    def test_permanent_error_is_not_retried(self, db):
        dt = make_dt(db)
        dt.retry_policy = RetryPolicy(max_retries=3)
        registry().arm("refresh.execute", nth_hit(1),
                       error=lambda: UserError("division by zero"),
                       match=lambda d: d.get("dt") == "d")
        record = refresh_once(db, dt)
        assert record.retries == 0
        assert "division by zero" in record.error

    def test_scheduler_folds_backoff_into_modeled_duration(self, db):
        dt = make_dt(db)
        dt.retry_policy = RetryPolicy(max_retries=1)
        registry().arm("refresh.execute", nth_hit(1), times=None,
                       match=lambda d: d.get("dt") == "d")
        db.run_for(2 * MINUTE)
        retried = [r for r in dt.refresh_history if r.retries]
        assert retried
        record = retried[0]
        assert record.end_wall - record.start_wall >= record.backoff_total


class TestAutoSuspend:
    def test_threshold_failures_auto_suspend(self, db):
        dt = make_dt(db)
        dt.error_threshold = 3
        registry().arm("refresh.execute", every(1), times=None,
                       match=lambda d: d.get("dt") == "d")
        for __ in range(3):
            refresh_once(db, dt)
        assert dt.suspended
        assert "3 consecutive refresh failures" in dt.suspended_reason
        # Refreshing a suspended DT raises; its last version stays
        # readable (graceful degradation).
        with pytest.raises(SuspendedError):
            db.refresh_dynamic_table("d")
        assert sorted(db.query("SELECT * FROM d").rows) == [
            ("a", 40), ("b", 20)]

    def test_resume_clears_counter_and_reason(self, db):
        dt = make_dt(db)
        dt.error_threshold = 1
        registry().arm("refresh.execute", nth_hit(1),
                       match=lambda d: d.get("dt") == "d")
        refresh_once(db, dt)
        assert dt.suspended and dt.consecutive_failures == 1
        dt.resume()
        assert not dt.suspended
        assert dt.suspended_reason is None
        assert dt.consecutive_failures == 0
        record = refresh_once(db, dt)
        assert record.error is None

    def test_success_resets_consecutive_failures(self, db):
        dt = make_dt(db)
        dt.error_threshold = 3
        registry().arm("refresh.execute", nth_hit(1), times=2,
                       match=lambda d: d.get("dt") == "d")
        refresh_once(db, dt)
        assert dt.consecutive_failures == 1
        registry().clear()
        refresh_once(db, dt)
        assert dt.consecutive_failures == 0
        assert not dt.suspended


class TestPolicySurface:
    def test_alter_set_updates_policy(self, db):
        dt = make_dt(db)
        db.execute("ALTER DYNAMIC TABLE d SET retries = 2, "
                   "backoff = '10 seconds', backoff_factor = 3, "
                   "error_threshold = 7")
        assert dt.retry_policy.max_retries == 2
        assert dt.retry_policy.backoff_base == 10 * SECOND
        assert dt.retry_policy.backoff_factor == 3
        assert dt.error_threshold == 7

    def test_alter_set_unknown_key_rejected(self, db):
        make_dt(db)
        with pytest.raises(UserError, match="unknown dynamic table option"):
            db.execute("ALTER DYNAMIC TABLE d SET nonsense = 1")

    def test_alter_set_validates_values(self, db):
        make_dt(db)
        with pytest.raises(UserError, match="must be >= 1"):
            db.execute("ALTER DYNAMIC TABLE d SET error_threshold = 0")

    def test_create_with_options(self, db):
        dt = make_dt(db, options={"retries": 4, "backoff": "2 seconds"})
        assert dt.retry_policy.max_retries == 4
        assert dt.retry_policy.backoff_base == 2 * SECOND

    def test_option_detail_round_trips(self):
        options = {"retries": 2, "backoff": "10 seconds"}
        detail = encode_option_detail(options)
        assert detail == "set retries=2, backoff=10 seconds"
        assert decode_option_detail(detail) == {
            "retries": "2", "backoff": "10 seconds"}
        assert decode_option_detail("suspend") is None


class TestUpstreamFailurePropagation:
    def _chain(self, db):
        a = make_dt(db, name="a")
        b = db.create_dynamic_table("b", "SELECT grp, s FROM a",
                                    "1 minute", "wh")
        return a, b

    def test_downstream_skips_with_upstream_failed_action(self, db):
        a, b = self._chain(db)
        a.error_threshold = 100
        registry().arm("refresh.execute", every(1), times=None,
                       match=lambda d: d.get("dt") == "a")
        db.execute("INSERT INTO src VALUES (9, 'c', 1)")
        db.run_for(3 * MINUTE)
        skips = [r for r in b.refresh_history
                 if r.action == RefreshAction.SKIPPED_UPSTREAM_FAILED]
        assert skips, [
            (r.action, r.skipped, r.error) for r in b.refresh_history]
        # b keeps serving its creation-time data (graceful degradation).
        assert sorted(db.query("SELECT * FROM b").rows) == [
            ("a", 40), ("b", 20)]

    def test_benign_skip_is_not_flagged_upstream_failed(self, db):
        """A skip behind a *suspended manually-healthy* upstream is
        flagged, but a skip with no upstream failure at all (previous
        refresh still running) stays a plain skip."""
        dt = make_dt(db)
        from repro.scheduler.cost import CostModel

        db.scheduler.cost_model = CostModel(fixed_cost=10 * MINUTE,
                                            no_data_cost=10 * MINUTE)
        db.run_for(4 * BASE_PERIOD)
        plain = [r for r in dt.refresh_history if r.skipped]
        assert plain
        assert all(r.action is not RefreshAction.SKIPPED_UPSTREAM_FAILED
                   for r in plain)

    def test_staleness_report_and_explain(self, db):
        a, b = self._chain(db)
        a.error_threshold = 2
        registry().arm("refresh.execute", every(1), times=None,
                       match=lambda d: d.get("dt") == "a")
        db.run_for(4 * MINUTE)
        assert a.suspended
        entries = {e.dt_name: e for e in
                   staleness_report([a, b], db.clock.now())}
        assert entries["a"].cause == "suspended"
        assert entries["b"].cause == "upstream-failed"
        assert entries["b"].serving is not None
        plan = db.session().explain("SELECT * FROM b")
        assert "-- staleness b: upstream-failed" in plan
        plan_a = db.session().explain("SELECT * FROM a")
        assert "-- staleness a: suspended" in plan_a

    def test_upstream_probe_error_is_recorded_not_swallowed(self, db):
        """Satellite 1: a non-VersionNotFound error out of the skip
        gate's upstream probe lands on a RefreshRecord."""
        a, b = self._chain(db)

        def boom(time):
            raise RuntimeError("catalog corruption")

        a.table.version_for_refresh = boom
        # a itself must not refresh this tick or the probe is skipped.
        a.suspend()
        db.run_for(2 * MINUTE)
        errors = [r for r in b.refresh_history if r.error is not None]
        assert errors
        assert "RuntimeError" in errors[0].error
        assert "catalog corruption" in errors[0].error
        assert db.scheduler.report.refreshes_failed >= 1


class TestWaveIsolation:
    def test_crashed_worker_task_fails_only_its_job(self, db):
        db.set_parallelism(2)
        d1 = make_dt(db, name="d1", sql="SELECT grp FROM src")
        d2 = make_dt(db, name="d2", sql="SELECT val FROM src")
        # Independent DTs share wave 0; exactly one task crashes at
        # startup (before engine.refresh), whichever arrives first.
        registry().arm("worker.task", nth_hit(1),
                       match=lambda d: d.get("pool") == "repro-refresh")
        db.execute("INSERT INTO src VALUES (7, 'z', 70)")
        db.run_for(2 * MINUTE)
        errored = [dt for dt in (d1, d2)
                   if any(r.error is not None and "InjectedFault" in r.error
                          for r in dt.refresh_history)]
        assert len(errored) == 1
        survivor = d2 if errored == [d1] else d1
        assert any(r.action == RefreshAction.INCREMENTAL
                   for r in survivor.refresh_history)
        # The failed DT catches up once the fault is spent.
        assert all(db.check_dvs(name) for name in ("d1", "d2"))

    def test_agg_state_invalidated_not_corrupted(self, db):
        """A fault inside the refresh (after agg-state began) aborts the
        state cleanly; the next refresh rebuilds and stays correct."""
        dt = make_dt(db)
        assert refresh_once(db, dt).error is None
        registry().arm("storage.apply", nth_hit(1),
                       match=lambda d: d.get("table") == "d")
        db.execute("INSERT INTO src VALUES (5, 'b', 7)")
        record = refresh_once(db, dt)
        assert record.error is not None
        record = refresh_once(db, dt)
        assert record.error is None
        assert sorted(db.query("SELECT * FROM d").rows) == [
            ("a", 40), ("b", 27)]
        assert db.check_dvs("d")
