"""Tests for canonical refresh periods (section 5.2)."""

from hypothesis import given, strategies as st

from repro.scheduler.periods import (BASE_PERIOD, canonical_periods,
                                     choose_period, clamp_to_upstream,
                                     is_tick, next_tick)
from repro.util.timeutil import MINUTE, SECOND, hours, minutes


class TestCanonicalSet:
    def test_base_is_48s(self):
        assert BASE_PERIOD == 48 * SECOND

    def test_powers_of_two(self):
        periods = canonical_periods()
        assert periods[0] == 48 * SECOND
        assert all(b == 2 * a for a, b in zip(periods, periods[1:]))

    def test_mutual_divisibility(self):
        periods = canonical_periods()
        for small in periods:
            for large in periods:
                if large >= small:
                    assert large % small == 0


class TestChoosePeriod:
    def test_one_minute_lag_gets_base(self):
        assert choose_period(MINUTE) == BASE_PERIOD

    def test_larger_lags_get_larger_periods(self):
        assert choose_period(minutes(10)) > choose_period(MINUTE)

    def test_period_leaves_headroom(self):
        for lag in (MINUTE, minutes(5), minutes(30), hours(1), hours(16)):
            assert choose_period(lag) <= max(lag // 2, BASE_PERIOD)

    def test_period_smaller_than_lag_surprise(self):
        """The paper: users are surprised that the chosen period 'can be
        substantially smaller than the provided target lag'."""
        assert choose_period(hours(16)) <= hours(8)

    @given(st.integers(min_value=MINUTE, max_value=hours(48)))
    def test_always_canonical(self, lag):
        assert choose_period(lag) in canonical_periods()


class TestUpstreamConstraint:
    def test_clamps_up(self):
        assert clamp_to_upstream(BASE_PERIOD, [4 * BASE_PERIOD]) == \
               4 * BASE_PERIOD

    def test_no_upstream_keeps_choice(self):
        assert clamp_to_upstream(2 * BASE_PERIOD, []) == 2 * BASE_PERIOD

    def test_larger_choice_kept(self):
        assert clamp_to_upstream(8 * BASE_PERIOD, [2 * BASE_PERIOD]) == \
               8 * BASE_PERIOD


class TestTicks:
    def test_is_tick(self):
        assert is_tick(96 * SECOND, BASE_PERIOD)
        assert not is_tick(50 * SECOND, BASE_PERIOD)

    def test_phase_shifts_grid(self):
        phase = 7 * SECOND
        assert is_tick(BASE_PERIOD + phase, BASE_PERIOD, phase)
        assert not is_tick(BASE_PERIOD, BASE_PERIOD, phase)

    def test_next_tick(self):
        assert next_tick(0, BASE_PERIOD) == BASE_PERIOD
        assert next_tick(BASE_PERIOD, BASE_PERIOD) == 2 * BASE_PERIOD
        assert next_tick(50 * SECOND, BASE_PERIOD) == 96 * SECOND

    @given(st.integers(0, 10**6), st.sampled_from(canonical_periods()[:6]))
    def test_alignment_property(self, time, period):
        """A tick of a larger period is always a tick of every smaller
        canonical period — the data-timestamp alignment guarantee."""
        if is_tick(time, period):
            for smaller in canonical_periods():
                if smaller <= period:
                    assert is_tick(time, smaller)
