"""Tests for liveness monitoring and SLO attribution (section 6.2)."""

import pytest

from repro import Database
from repro.scheduler.cost import CostModel
from repro.scheduler.liveness import (LivenessMonitor, RefreshState,
                                      slo_report)
from repro.util.timeutil import MINUTE, SECOND, minutes


class TestHeartbeats:
    def test_executing_with_fresh_heartbeat_is_healthy(self):
        monitor = LivenessMonitor()
        monitor.begin("d", data_timestamp=0, started_at=0)
        monitor.heartbeat("d", 25 * SECOND)
        assert monitor.check(now=40 * SECOND) == []

    def test_stale_heartbeat_flagged(self):
        monitor = LivenessMonitor()
        monitor.begin("d", data_timestamp=0, started_at=0)
        violations = monitor.check(now=60 * SECOND)
        assert len(violations) == 1
        assert violations[0].dt_name == "d"

    def test_ended_refresh_not_flagged(self):
        monitor = LivenessMonitor()
        monitor.begin("d", 0, 0)
        monitor.end("d", 5 * SECOND, succeeded=True)
        assert monitor.check(now=10 * MINUTE) == []
        assert monitor.history[-1].state == RefreshState.SUCCEEDED

    def test_failed_state_recorded(self):
        monitor = LivenessMonitor()
        monitor.begin("d", 0, 0)
        monitor.end("d", 5 * SECOND, succeeded=False)
        assert monitor.history[-1].state == RefreshState.FAILED

    def test_simulated_heartbeats_cover_interval(self):
        monitor = LivenessMonitor()
        monitor.begin("d", 0, 0)
        monitor.simulate_heartbeats("d", 0, 2 * MINUTE)
        # Last heartbeat within one interval of the end.
        trace = monitor.executing()[0]
        assert 2 * MINUTE - trace.last_heartbeat <= \
               LivenessMonitor.HEARTBEAT_INTERVAL

    def test_heartbeats_monotonic(self):
        monitor = LivenessMonitor()
        monitor.begin("d", 0, 0)
        monitor.heartbeat("d", 30 * SECOND)
        monitor.heartbeat("d", 10 * SECOND)  # late arrival, ignored
        assert monitor.executing()[0].last_heartbeat == 30 * SECOND


class TestSchedulerIntegration:
    def test_scheduler_emits_heartbeats(self):
        db = Database()
        db.create_warehouse("wh")
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1)")
        db.create_dynamic_table("d", "SELECT a FROM t", "1 minute", "wh")
        db.at(MINUTE, lambda: db.execute("INSERT INTO t VALUES (2)"))
        db.run_for(3 * MINUTE)
        monitor = db.scheduler.liveness
        assert monitor.history  # refreshes were traced
        assert all(trace.state in (RefreshState.SUCCEEDED,
                                   RefreshState.FAILED)
                   for trace in monitor.history)
        assert monitor.check(db.now) == []  # nothing stuck


class TestSloReport:
    def make_db(self, cost_model=None):
        db = Database(cost_model=cost_model)
        db.create_warehouse("wh")
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (1)")
        return db

    def test_healthy_dt_within_lag(self):
        db = self.make_db()
        db.create_dynamic_table("d", "SELECT a FROM t", "2 minutes", "wh")
        for step in range(6):
            db.at((step + 1) * MINUTE,
                  lambda s=step: db.execute(f"INSERT INTO t VALUES ({s})"))
        db.run_for(8 * MINUTE)
        (entry,) = slo_report([db.dynamic_table("d")])
        assert entry.within_lag
        assert entry.responsibility is None
        assert entry.refreshes > 0

    def test_slow_refreshes_attributed_to_customer(self):
        # Refreshes take longer than the 1-minute target allows.
        db = self.make_db(cost_model=CostModel(fixed_cost=90 * SECOND))
        db.create_dynamic_table("d", "SELECT a FROM t", "1 minute", "wh")
        for step in range(10):
            db.at((step + 1) * 30 * SECOND,
                  lambda s=step: db.execute(f"INSERT INTO t VALUES ({s})"))
        db.run_for(8 * MINUTE)
        (entry,) = slo_report([db.dynamic_table("d")])
        assert not entry.within_lag
        assert entry.responsibility == "customer"
        assert entry.skips > 0  # the overload showed up as skips too

    def test_downstream_lag_has_no_target(self):
        db = self.make_db()
        db.create_dynamic_table("up", "SELECT a FROM t",
                                "downstream", "wh")
        db.create_dynamic_table("down", "SELECT a FROM up",
                                "2 minutes", "wh")
        entries = {entry.dt_name: entry
                   for entry in slo_report(db.dynamic_tables())}
        assert entries["up"].target_lag is None
        assert entries["up"].within_lag
