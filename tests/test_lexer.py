"""Tests for the SQL lexer."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import Token, TokenType, tokenize


def kinds(sql):
    return [(token.type, token.text) for token in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_lowercased(self):
        assert kinds("SELECT From")[0] == (TokenType.KEYWORD, "select")
        assert kinds("SELECT From")[1] == (TokenType.KEYWORD, "from")

    def test_identifiers_lowercased(self):
        assert kinds("MyTable") == [(TokenType.IDENT, "mytable")]

    def test_quoted_identifier_preserves_case(self):
        assert kinds('"MyTable"') == [(TokenType.IDENT, "MyTable")]

    def test_eof_token(self):
        assert tokenize("")[-1].type == TokenType.EOF

    def test_numbers(self):
        assert kinds("1 2.5") == [(TokenType.NUMBER, "1"),
                                  (TokenType.NUMBER, "2.5")]

    def test_integer_dot_not_decimal_without_digits(self):
        # "1." followed by an identifier must not merge into a decimal.
        tokens = kinds("1.a")
        assert tokens[0] == (TokenType.NUMBER, "1")
        assert tokens[1] == (TokenType.OPERATOR, ".")


class TestStrings:
    def test_simple(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_unterminated(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_string_keeps_case(self):
        assert kinds("'MiXeD'") == [(TokenType.STRING, "MiXeD")]


class TestOperators:
    def test_double_colon_beats_single(self):
        assert kinds("a::int")[1] == (TokenType.OPERATOR, "::")

    def test_variant_colon(self):
        tokens = kinds("payload:time")
        assert tokens[1] == (TokenType.OPERATOR, ":")

    def test_comparison_operators(self):
        texts = [text for __, text in kinds("< <= > >= != <> =")]
        assert texts == ["<", "<=", ">", ">=", "!=", "<>", "="]

    def test_arrow(self):
        assert (TokenType.OPERATOR, "=>") in kinds("input => x")

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            tokenize("a ~ b")


class TestComments:
    def test_line_comment(self):
        assert kinds("select -- comment\n 1") == [
            (TokenType.KEYWORD, "select"), (TokenType.NUMBER, "1")]

    def test_block_comment(self):
        assert kinds("select /* x\ny */ 1") == [
            (TokenType.KEYWORD, "select"), (TokenType.NUMBER, "1")]

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            tokenize("select /* oops")


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("select\n  foo")
        foo = tokens[1]
        assert foo.line == 2
        assert foo.column == 3

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            tokenize("a\n  ~")
        assert "line 2" in str(info.value)
