"""Property-based tests of Theorem 1 over random histories.

Theorem 1 (Transaction Invariance) claims DSG-equality for *any* history;
Hypothesis generates random mixes of writes, derivations, and reads, then
moves each derivation into every other committed transaction and checks
the dependency sets match.
"""

from hypothesis import given, settings, strategies as st

from repro.isolation import Derive, History, Read, Version, Write
from repro.isolation.dsg import DirectSerializationGraph
from repro.isolation.levels import classify
from repro.isolation.phenomena import detect_phenomena
from repro.isolation.theorems import check_transaction_invariance

OBJECTS = ("x", "y")
DERIVED = ("u", "v")


@st.composite
def histories(draw):
    """Random histories: a few base writes, derivations over committed
    versions, and reads of anything installed."""
    events = []
    installed: list[Version] = []
    base_writes = draw(st.integers(1, 4))
    txn = 0
    for __ in range(base_writes):
        txn += 1
        obj = draw(st.sampled_from(OBJECTS))
        version = Version(obj, txn)
        events.append(Write(txn, version))
        installed.append(version)

    derivations = draw(st.integers(0, 3))
    for index in range(derivations):
        if not installed:
            break
        txn += 1
        obj = DERIVED[index % len(DERIVED)]
        source_count = draw(st.integers(1, min(2, len(installed))))
        sources = tuple(draw(st.sampled_from(installed))
                        for __ in range(source_count))
        version = Version(obj, txn)
        events.append(Derive(txn, version, sources))
        installed.append(version)

    reads = draw(st.integers(0, 4))
    for __ in range(reads):
        if not installed:
            break
        txn += 1
        events.append(Read(txn, draw(st.sampled_from(installed))))

    return History(events)


@settings(max_examples=80, deadline=None)
@given(history=histories())
def test_transaction_invariance_holds(history):
    derivations = [event for event in history.events
                   if isinstance(event, Derive)]
    committed = sorted(history.committed)
    installs: dict[str, set[int]] = {}
    for event in history.events:
        if isinstance(event, (Write, Derive)):
            installs.setdefault(event.version.obj, set()).add(event.txn)
    for derivation in derivations:
        obj = derivation.version.obj
        for target in committed:
            if target != derivation.txn and target in installs.get(obj, set()):
                continue  # would collide with an existing version name
            assert check_transaction_invariance(history, derivation, target)


@settings(max_examples=80, deadline=None)
@given(history=histories())
def test_phenomena_detection_is_deterministic(history):
    first = detect_phenomena(history).exhibited()
    second = detect_phenomena(history).exhibited()
    assert first == second


@settings(max_examples=80, deadline=None)
@given(history=histories())
def test_classification_monotone_with_phenomena(history):
    """A history with no phenomena must classify PL-3; any G2 caps it
    below PL-2+."""
    report = detect_phenomena(history)
    level = classify(history)
    if not report.exhibited():
        assert level.value == "PL-3"
    if report.g_single:
        assert level.value in ("PL-0", "PL-1", "PL-2")


@settings(max_examples=50, deadline=None)
@given(history=histories())
def test_dsg_nodes_are_committed_transactions(history):
    dsg = DirectSerializationGraph(history)
    assert dsg.nodes == history.committed
    for edge in dsg.edges:
        assert edge.source in history.committed
        assert edge.target in history.committed
        assert edge.source != edge.target
