"""Table locks.

Section 5.3 of the paper: "Conflicts are managed using locks. Each Dynamic
Table is locked when a refresh operation begins, and unlocked after it
commits." Originally the simulation was single-threaded and these were
purely *logical* locks — held-by-another simply raised
:class:`~repro.errors.LockConflict` (the scheduler's skip logic in section
3.3.3 depends on that surface: "the current implementation of Dynamic
Tables does not permit concurrent refreshes of the same DT").

The multi-session server front end (:mod:`repro.server`) executes sessions
on real threads, so the lock table is now a genuine concurrency primitive:
every operation runs under one condition variable, and :meth:`acquire` can
*block* for up to ``timeout`` seconds before surfacing
:class:`LockConflict`. The default timeout of zero preserves the original
fail-fast behaviour everywhere the scheduler relies on it; the server
raises the transaction manager's ``lock_timeout`` so commit critical
sections queue behind each other instead of spuriously failing.
"""

from __future__ import annotations

import threading
import time

from repro.errors import LockConflict


class LockManager:
    """Exclusive per-table locks keyed by holder id (thread-safe)."""

    def __init__(self):
        self._holders: dict[str, int] = {}
        self._condition = threading.Condition()

    def acquire(self, table: str, holder: int, timeout: float = 0.0) -> None:
        """Acquire the lock on ``table`` for ``holder``.

        Re-entrant for the same holder. When the lock is held by another
        holder: with ``timeout <= 0`` raise :class:`LockConflict`
        immediately (the scheduler's skip surface); otherwise block until
        the lock frees, raising :class:`LockConflict` only after
        ``timeout`` seconds.
        """
        # Cross-thread blocking needs a real monotonic deadline; the
        # simulated clock cannot advance while this thread waits.
        deadline = (time.monotonic() + timeout  # lint: allow-wall-clock
                    ) if timeout > 0 else None
        with self._condition:
            while True:
                current = self._holders.get(table)
                if current is None or current == holder:
                    self._holders[table] = holder
                    return
                if deadline is None:
                    raise LockConflict(
                        f"table {table!r} is locked by transaction {current}")
                remaining = deadline - time.monotonic()  # lint: allow-wall-clock
                if remaining <= 0:
                    raise LockConflict(
                        f"timed out after {timeout:.1f}s waiting for lock on "
                        f"{table!r} (held by transaction {current})")
                self._condition.wait(remaining)

    def release(self, table: str, holder: int) -> None:
        with self._condition:
            if self._holders.get(table) == holder:
                del self._holders[table]
                self._condition.notify_all()

    def release_all(self, holder: int) -> None:
        with self._condition:
            released = False
            for table in [name for name, who in self._holders.items()
                          if who == holder]:
                del self._holders[table]
                released = True
            if released:
                self._condition.notify_all()

    def holder_of(self, table: str) -> int | None:
        with self._condition:
            return self._holders.get(table)

    def is_locked(self, table: str) -> bool:
        with self._condition:
            return table in self._holders

    def held_tables(self) -> list[str]:
        """The currently locked table names (diagnostics / tests)."""
        with self._condition:
            return sorted(self._holders)
