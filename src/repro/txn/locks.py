"""Table locks.

Section 5.3 of the paper: "Conflicts are managed using locks. Each Dynamic
Table is locked when a refresh operation begins, and unlocked after it
commits." The simulation is single-threaded, so these are *logical* locks:
they serialize refreshes against each other (the scheduler's skip logic in
section 3.3.3 exists precisely because "the current implementation of
Dynamic Tables does not permit concurrent refreshes of the same DT") and
surface conflicts as :class:`~repro.errors.LockConflict` instead of
blocking.
"""

from __future__ import annotations

from repro.errors import LockConflict


class LockManager:
    """Exclusive per-table locks keyed by holder id."""

    def __init__(self):
        self._holders: dict[str, int] = {}

    def acquire(self, table: str, holder: int) -> None:
        """Acquire the lock on ``table`` for ``holder``; re-entrant for the
        same holder; raises :class:`LockConflict` if held by another."""
        current = self._holders.get(table)
        if current is not None and current != holder:
            raise LockConflict(
                f"table {table!r} is locked by transaction {current}")
        self._holders[table] = holder

    def release(self, table: str, holder: int) -> None:
        if self._holders.get(table) == holder:
            del self._holders[table]

    def release_all(self, holder: int) -> None:
        for table in [name for name, who in self._holders.items()
                      if who == holder]:
            del self._holders[table]

    def holder_of(self, table: str) -> int | None:
        return self._holders.get(table)

    def is_locked(self, table: str) -> bool:
        return table in self._holders
