"""The transaction manager.

Section 5.1: "The transaction manager handles versioning of table
metadata, manages locks, tracks uncommitted changes, and atomically
commits transactions."

Model:

* a transaction gets a **snapshot** at begin; every read resolves the
  table version with the largest commit timestamp ≤ that snapshot
  (snapshot reads). The snapshot is either a plain wall time (the
  original single-threaded behaviour: every commit at that wall clock is
  visible) or — for multi-statement session transactions, via
  :meth:`TransactionManager.begin_at_latest` — a full HLC timestamp,
  which discriminates between commits sharing a wall clock. The HLC form
  is what makes snapshot isolation meaningful under the concurrent
  server front end, where many transactions run inside one simulated
  instant;
* reads inside a transaction additionally see the transaction's **own
  staged writes** (read-your-writes): staged inserts appear under
  provisional row ids, staged deletes vanish, staged updates replace the
  snapshot row. Nothing is visible to any other transaction until
  commit;
* writes are staged per table (:class:`~repro.storage.table.StagedWrite`)
  and applied atomically at commit under a single HLC commit timestamp;
* **savepoints** capture the staged-write state and can be restored
  without abandoning the transaction (``SAVEPOINT`` / ``ROLLBACK TO``);
* first-committer-wins: committing a write to a table that someone else
  committed to after our snapshot raises
  :class:`~repro.errors.LockConflict` (a write-write conflict under
  snapshot isolation);
* locks serialize dynamic-table refreshes (section 5.3) **and** the
  commit critical section: commit acquires the lock of every written
  table (in sorted order, so concurrent commits cannot deadlock) before
  validating and applying. Under the server's thread pool the lock
  manager blocks up to :attr:`TransactionManager.lock_timeout` seconds,
  so contended commits queue instead of failing spuriously.

Dynamic-table refreshes use a transaction like any DML, but resolve their
*source* versions through a refresh-specific resolver built in
:mod:`repro.core.refresh` (regular tables as-of the data timestamp,
upstream DTs by exact refresh-timestamp match).
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Optional, Union

from repro.engine.relation import Relation
from repro.errors import LockConflict, NotInitializedError, TransactionError
from repro.faults import inject
from repro.ivm.changes import ChangeSet
from repro.storage.catalog import Catalog
from repro.storage.table import StagedWrite, TableVersion, VersionedTable
from repro.txn.hlc import HlcTimestamp, HybridLogicalClock
from repro.util.timeutil import Timestamp

#: A transaction snapshot: a bare wall time (all commits at that wall are
#: visible) or a full HLC point (commits after it, even at the same wall,
#: are invisible).
Snapshot = Union[Timestamp, HlcTimestamp]


class _OverlayPartition:
    """A partition view with a transaction's deletes/updates applied.

    Zone-map pruning stays sound for pure deletions (removing rows can
    never make a skipped partition match), so ``might_match`` delegates
    to the base partition then; a partition containing an *updated* row
    voids its zone maps and always reports a possible match.
    """

    __slots__ = ("rows", "_base", "_updated")

    def __init__(self, rows, base, updated: bool):
        self.rows = rows
        self._base = base
        self._updated = updated

    def might_match(self, bounds) -> bool:
        return True if self._updated else self._base.might_match(bounds)


class _StagedPartition:
    """A transaction's staged inserts as one synthetic partition."""

    __slots__ = ("rows",)

    def __init__(self, rows):
        self.rows = rows

    def might_match(self, bounds) -> bool:
        return True  # no zone maps for uncommitted rows


def _overlay_partition_stream(partitions, deletes, updates, staged):
    for partition in partitions:
        rows = []
        changed = False
        updated = False
        for row_id, row in partition.rows:
            if row_id in deletes:
                changed = True
                continue
            new_row = updates.get(row_id)
            if new_row is not None:
                changed = updated = True
                rows.append((row_id, new_row))
            else:
                rows.append((row_id, row))
        if not changed:
            yield partition
        elif rows:
            yield _OverlayPartition(rows, partition, updated)
    if staged:
        yield _StagedPartition(staged)


class Transaction:
    """A single transaction: snapshot reads + staged writes.

    Implements the executor's SnapshotResolver protocol, so a plan can be
    evaluated directly "inside" a transaction — and, because :meth:`scan`
    overlays the transaction's own staged writes, a statement sequence
    like INSERT → SELECT → UPDATE inside one open transaction observes
    its earlier statements (read-your-writes).
    """

    def __init__(self, manager: "TransactionManager", txn_id: int,
                 snapshot: Snapshot):
        self._manager = manager
        self.id = txn_id
        self.snapshot = snapshot
        self._writes: dict[str, StagedWrite] = {}
        #: Provisional row ids of staged inserts, parallel to each
        #: StagedWrite's ``inserts`` list. Real ids are allocated at
        #: apply time; these exist only so reads inside the transaction
        #: (and DML matching against them) have a stable identity.
        self._insert_ids: dict[str, list[str]] = {}
        self._provisional_seq = 0
        self._locked: list[str] = []
        #: (name, captured-state) pairs, oldest first.
        self._savepoints: list[tuple[str, dict]] = []
        self.committed: Optional[HlcTimestamp] = None
        self.aborted = False
        #: Per-table version overrides (used by refreshes to pin sources).
        self._version_overrides: dict[str, TableVersion] = {}
        #: Refresh metadata riding on this transaction's WAL commit
        #: record (set by the refresh engine before commit): the frontier
        #: advance that recovery must replay alongside the data changes.
        #: A NO_DATA refresh commits no writes but still must be logged —
        #: its frontier advance is durable state.
        self.wal_meta: Optional[dict] = None

    @property
    def snapshot_wall(self) -> Timestamp:
        """The wall component of the snapshot (context-function time)."""
        if isinstance(self.snapshot, HlcTimestamp):
            return self.snapshot.wall
        return self.snapshot

    # -- reads (SnapshotResolver) ----------------------------------------------

    def _version_of(self, table: str,
                    versioned: VersionedTable) -> TableVersion:
        version = self._version_overrides.get(table)
        if version is None:
            version = versioned.version_at(self.snapshot)
        return version

    def scan(self, table: str) -> Relation:
        versioned = self._resolve_table(table)
        version = self._version_of(table, versioned)
        base = versioned.relation(version)
        write = self._writes.get(table)
        if write is None or not self._overlays(write):
            return base
        overlaid = Relation(base.schema)
        if not write.overwrite:
            for row_id, row in base.pairs():
                if row_id in write.deletes:
                    continue
                overlaid.append(row_id, write.updates.get(row_id, row))
        for row_id, row in zip(self._insert_ids.get(table, ()),
                               write.inserts):
            overlaid.append(row_id, row)
        return overlaid

    def scan_pruned(self, table: str, bounds) -> Relation:
        """Zone-map pruned scan. With no staged writes on the table this
        is exactly the snapshot reader's pruned read; with an overlay the
        full (unpruned) overlaid relation is returned — a superset is
        always sound, since the caller re-applies its predicate."""
        versioned = self._resolve_table(table)
        write = self._writes.get(table)
        if write is None or not self._overlays(write):
            return versioned.relation_pruned(
                self._version_of(table, versioned), bounds)
        return self.scan(table)

    def scan_partitions(self, table: str):
        """Partition-granular reads (streaming cursors) inside a
        transaction. Tables the transaction has not written stream their
        snapshot partitions directly; written tables stream the base
        partitions with deletes/updates applied, then one synthetic
        partition of the staged inserts — the same rows, ids, and order
        as :meth:`scan`. The staged state is copied now, so a stream
        serves the overlay as of its creation even if later statements
        stage more writes.
        """
        versioned = self._resolve_table(table)
        version = self._version_of(table, versioned)
        write = self._writes.get(table)
        if write is None or not self._overlays(write):
            return iter(versioned.partitions_of(version))
        deletes = frozenset(write.deletes)
        updates = dict(write.updates)
        staged = list(zip(self._insert_ids.get(table, ()),
                          list(write.inserts)))
        partitions = ([] if write.overwrite
                      else versioned.partitions_of(version))
        return _overlay_partition_stream(partitions, deletes, updates,
                                         staged)

    @staticmethod
    def _overlays(write: StagedWrite) -> bool:
        """Whether a staged write participates in read-your-writes.

        Consolidated change sets (the refresh-merge path) are staged
        *after* the refresh finished reading its sources, so they never
        need to be — and are not — overlaid.
        """
        return bool(write.inserts or write.deletes or write.updates
                    or write.overwrite)

    def pin_version(self, table: str, version: TableVersion) -> None:
        """Pin reads of ``table`` to a specific version (refresh source
        resolution, section 5.3)."""
        self._version_overrides[table] = version

    def _resolve_table(self, name: str) -> VersionedTable:
        catalog = self._manager.catalog
        entry = catalog.get(name)
        if entry.kind == "dynamic table":
            payload = entry.payload
            ensure = getattr(payload, "ensure_readable", None)
            if ensure is not None:
                ensure()  # raises NotInitializedError before first refresh
        return catalog.versioned_table(name)

    # -- writes ------------------------------------------------------------------

    def _staged(self, table: str) -> StagedWrite:
        self._check_open()
        # Validate the entity exists (and is not dropped) at staging time.
        self._manager.catalog.versioned_table(table)
        return self._writes.setdefault(table, StagedWrite())

    def is_provisional(self, table: str, row_id: str) -> bool:
        """Whether ``row_id`` names a row this transaction staged (not yet
        committed, so invisible to everyone else)."""
        return row_id in self._insert_ids.get(table, ())

    def insert_rows(self, table: str, rows: list[tuple]) -> None:
        staged = self._staged(table)
        ids = self._insert_ids.setdefault(table, [])
        for row in rows:
            staged.inserts.append(row)
            ids.append(f"txn:{self.id}:{self._provisional_seq}")
            self._provisional_seq += 1

    def delete_rows(self, table: str, row_ids: list[str]) -> None:
        staged = self._staged(table)
        provisional = self._insert_ids.get(table, [])
        known = set(provisional)
        doomed: set[str] = set()
        for row_id in row_ids:
            if row_id in known:
                # Deleting a row this transaction inserted: unstage it.
                doomed.add(row_id)
                continue
            staged.deletes.add(row_id)
            # A delete supersedes any earlier staged update of the row.
            staged.updates.pop(row_id, None)
        if doomed:
            kept = [(row_id, row)
                    for row_id, row in zip(provisional, staged.inserts)
                    if row_id not in doomed]
            provisional[:] = [row_id for row_id, __ in kept]
            staged.inserts[:] = [row for __, row in kept]

    def update_rows(self, table: str, updates: dict[str, tuple]) -> None:
        staged = self._staged(table)
        provisional = self._insert_ids.get(table, [])
        position = ({row_id: index
                     for index, row_id in enumerate(provisional)}
                    if provisional else {})
        for row_id, new_row in updates.items():
            index = position.get(row_id)
            if index is not None:
                staged.inserts[index] = new_row
            else:
                staged.updates[row_id] = new_row

    def overwrite(self, table: str, rows: list[tuple]) -> None:
        staged = self._staged(table)
        staged.overwrite = True
        staged.inserts = list(rows)
        ids = self._insert_ids[table] = []
        for __ in rows:
            ids.append(f"txn:{self.id}:{self._provisional_seq}")
            self._provisional_seq += 1

    def stage_changeset(self, table: str, changes: ChangeSet,
                        overwrite: bool = False) -> None:
        staged = self._staged(table)
        if staged.changeset is not None or staged.inserts or staged.deletes:
            raise TransactionError(
                f"conflicting staged writes on {table!r} in one transaction")
        staged.changeset = changes
        staged.overwrite = overwrite

    # -- savepoints --------------------------------------------------------------

    def savepoint(self, name: str) -> None:
        """Capture the staged-write state under ``name``. Re-using a name
        replaces the earlier savepoint (SQL's destructive re-bind)."""
        self._check_open()
        self._savepoints = [(sp_name, state)
                            for sp_name, state in self._savepoints
                            if sp_name != name]
        self._savepoints.append((name, self._capture()))

    def rollback_to(self, name: str) -> None:
        """Restore the staged-write state captured by ``SAVEPOINT name``,
        discarding savepoints established after it (the savepoint itself
        survives and may be rolled back to again)."""
        self._check_open()
        for index in range(len(self._savepoints) - 1, -1, -1):
            sp_name, state = self._savepoints[index]
            if sp_name == name:
                self._restore(state)
                del self._savepoints[index + 1:]
                return
        raise TransactionError(f"no such savepoint: {name!r}")

    def _capture(self) -> dict:
        writes = {}
        for table, write in self._writes.items():
            writes[table] = StagedWrite(
                inserts=list(write.inserts), deletes=set(write.deletes),
                updates=dict(write.updates), changeset=write.changeset,
                overwrite=write.overwrite)
        return {
            "writes": writes,
            "insert_ids": {table: list(ids)
                           for table, ids in self._insert_ids.items()},
            "provisional_seq": self._provisional_seq,
        }

    def _restore(self, state: dict) -> None:
        self._writes = {table: StagedWrite(
            inserts=list(write.inserts), deletes=set(write.deletes),
            updates=dict(write.updates), changeset=write.changeset,
            overwrite=write.overwrite)
            for table, write in state["writes"].items()}
        self._insert_ids = {table: list(ids)
                            for table, ids in state["insert_ids"].items()}
        self._provisional_seq = state["provisional_seq"]

    # -- locks ---------------------------------------------------------------------

    def lock(self, table: str) -> None:
        self._manager.locks.acquire(table, self.id,
                                    timeout=self._manager.lock_timeout)
        self._locked.append(table)

    # -- lifecycle -----------------------------------------------------------------

    def _check_open(self) -> None:
        if self.committed is not None:
            raise TransactionError("transaction already committed")
        if self.aborted:
            raise TransactionError("transaction already aborted")

    def _conflicts(self, head: TableVersion) -> bool:
        """First-committer-wins: did ``head`` commit after our snapshot?"""
        if isinstance(self.snapshot, HlcTimestamp):
            return head.commit_ts > self.snapshot
        return head.commit_ts.wall > self.snapshot

    def _row_conflict(self, name: str,
                      table: VersionedTable) -> Optional[str]:
        """Row-level first-committer-wins: describe the conflict between
        our staged write on ``name`` and the versions committed after our
        snapshot, or return ``None`` if every intervening commit touched
        disjoint rows (in which case both writers may keep their commits
        — the generalization of the blind-append exemption).

        Runs inside the commit critical section, where the head cannot
        move. Data-equivalent versions (reclustering) are skipped like
        the differ skips them; an overwrite — ours or theirs — conflicts
        with everything, since it touches every row of the table.
        """
        ours = self._writes[name].written_row_ids
        snap_index = table.version_at(self.snapshot).index
        for index in range(snap_index + 1, table.version_count):
            version = table.version(index)
            if version.data_equivalent:
                continue
            if version.overwrote or ours is None:
                return (f"write-write conflict on {name!r}: committed at "
                        f"{version.commit_ts} after snapshot "
                        f"{self.snapshot}")
            overlap = version.written_ids & ours
            if overlap:
                sample = ", ".join(sorted(overlap)[:3])
                return (f"write-write conflict on {name!r}: row(s) "
                        f"{sample} committed at {version.commit_ts} "
                        f"after snapshot {self.snapshot}")
        return None

    def commit(self) -> HlcTimestamp:
        """Atomically apply all staged writes under one commit timestamp.

        The commit critical section — first-committer-wins validation
        plus version installation — runs while holding the lock of every
        written table, acquired in sorted name order so concurrent
        commits queue (or conflict) instead of deadlocking or interleaving.
        """
        self._check_open()
        catalog = self._manager.catalog
        written = sorted(name for name, write in self._writes.items()
                         if not write.is_empty)
        durability = self._manager.durability
        if written or self.wal_meta is not None:
            if durability is not None:
                # Degraded read-only mode (a WAL write failed earlier):
                # refuse the write before any lock or state change; reads
                # keep serving the last consistent versions.
                durability.check_writable()
            inject("txn.commit", tables=tuple(written))
        try:
            # Queue on the written tables' locks first (sorted order, so
            # concurrent commits cannot deadlock) — possibly blocking, so
            # this must happen *outside* the commit mutex.
            for name in written:
                self.lock(name)

            # The commit point proper — validation, timestamp issuance,
            # and version installation — is atomic with respect to
            # ``begin_at_latest``: a snapshot can never observe a commit
            # timestamp whose table versions are not all installed yet
            # (which would tear multi-table commits and repeatable reads).
            with self._manager.commit_mutex:
                # First-committer-wins validation, at row granularity.
                # Blind appends are exempt outright (an insert-only write
                # cannot lose an update); other writers conflict only
                # when their row footprint overlaps a version committed
                # after the snapshot — disjoint-row writers on one table
                # all commit. Refreshes pin their source versions and
                # hold the DT lock for the whole refresh, so overrides
                # stay exempt.
                for name in written:
                    table = catalog.versioned_table(name)
                    if (self._conflicts(table.current_version)
                            and not self._writes[name].is_blind_append
                            and name not in self._version_overrides):
                        conflict = self._row_conflict(name, table)
                        if conflict is not None:
                            raise LockConflict(conflict)

                commit_ts = self._manager.hlc.now()
                # WAL append inside the commit mutex, *before* any version
                # is installed (redo-log ordering): log order equals
                # commit order, the record hits stable storage before the
                # commit returns, and a WAL failure fails the commit with
                # zero in-memory mutation — memory never runs ahead of
                # the log. Empty transactions with no refresh metadata
                # are non-events and are not logged.
                if durability is not None and (written
                                               or self.wal_meta is not None):
                    durability.log_commit(
                        commit_ts,
                        {name: self._writes[name] for name in written},
                        self.wal_meta)
                for name in written:
                    catalog.versioned_table(name).apply(self._writes[name],
                                                        commit_ts)
        finally:
            self._release_locks()
        self.committed = commit_ts
        return commit_ts

    def abort(self) -> None:
        self._check_open()
        self._writes.clear()
        self._insert_ids.clear()
        self._savepoints.clear()
        self._release_locks()
        self.aborted = True

    def _release_locks(self) -> None:
        self._manager.locks.release_all(self.id)
        self._locked.clear()


class SnapshotReader:
    """A read-only resolver at a fixed snapshot (no transaction state).

    The snapshot is a wall time (time-travel reads: every commit at that
    wall is visible) or a full HLC point (the consistent-read form
    :meth:`TransactionManager.reader` hands out by default).
    """

    def __init__(self, catalog: Catalog, wall: Snapshot):
        self._catalog = catalog
        self._wall = wall

    def _resolve(self, table: str) -> VersionedTable:
        entry = self._catalog.get(table)
        if entry.kind == "dynamic table":
            ensure = getattr(entry.payload, "ensure_readable", None)
            if ensure is not None:
                ensure()
        return self._catalog.versioned_table(table)

    def scan(self, table: str) -> Relation:
        versioned = self._resolve(table)
        return versioned.relation(versioned.version_at(self._wall))

    def scan_pruned(self, table: str, bounds) -> Relation:
        """Zone-map pruned scan (filters pushed down by the executor)."""
        versioned = self._resolve(table)
        return versioned.relation_pruned(versioned.version_at(self._wall),
                                         bounds)

    def scan_partitions(self, table: str):
        """The micro-partitions of the snapshot's version — the
        partition-granular read behind streaming cursors.

        The version is resolved *now*, not at first pull: a streaming
        cursor must serve exactly the snapshot of its execute() call even
        when later commits land at the same wall clock. Partitions are
        immutable, so iterating the pinned set lazily afterwards is safe.
        """
        versioned = self._resolve(table)
        version = versioned.version_at(self._wall)
        return iter(versioned.partitions_of(version))


class TransactionManager:
    """Creates transactions and owns the HLC and lock table."""

    def __init__(self, catalog: Catalog,
                 physical_clock: Callable[[], Timestamp] = lambda: 0):
        from repro.txn.locks import LockManager

        self.catalog = catalog
        self.hlc = HybridLogicalClock(physical_clock)
        self.locks = LockManager()
        #: How long lock acquisition may block before raising
        #: :class:`LockConflict`. Zero (the default) preserves fail-fast
        #: logical locking; the server front end raises it so commit
        #: critical sections queue under contention.
        self.lock_timeout: float = 0.0
        #: Makes (timestamp issuance + version installation) atomic
        #: against snapshot acquisition: ``begin_at_latest`` must never
        #: see an HLC point whose versions are still being installed.
        self.commit_mutex = threading.Lock()
        #: Durability hook (:class:`repro.durability.DurabilityManager`);
        #: attached by Database *after* recovery, so replayed commits are
        #: never re-logged.
        self.durability = None
        self._physical_clock = physical_clock
        self._txn_ids = itertools.count(1)
        # Lock-timeout leasing (see lease_lock_timeout).
        self._lease_mutex = threading.Lock()
        self._lease_count = 0
        self._pre_lease_timeout = 0.0

    def lease_lock_timeout(self, timeout: float) -> None:
        """Raise :attr:`lock_timeout` for the lifetime of a lease.

        The server front end leases a blocking timeout so contended
        commits queue; the pre-lease value (the fail-fast surface the
        scheduler's skip logic relies on) returns when the *last* lease
        is released, so overlapping servers cannot clobber each other.
        """
        with self._lease_mutex:
            if self._lease_count == 0:
                self._pre_lease_timeout = self.lock_timeout
            self._lease_count += 1
            self.lock_timeout = timeout

    def release_lock_timeout(self) -> None:
        with self._lease_mutex:
            if self._lease_count == 0:
                return  # unbalanced release: nothing to restore
            self._lease_count -= 1
            if self._lease_count == 0:
                self.lock_timeout = self._pre_lease_timeout

    def begin(self, snapshot_wall: Timestamp | None = None) -> Transaction:
        """Begin a transaction; reads see data committed at or before
        ``snapshot_wall`` (defaults to the current physical time)."""
        if snapshot_wall is None:
            snapshot_wall = self._physical_clock()
        return Transaction(self, next(self._txn_ids), snapshot_wall)

    def begin_at_latest(self) -> Transaction:
        """Begin a transaction whose snapshot is the latest HLC point.

        Everything committed so far is visible; every later commit —
        including commits sharing the current wall clock, which is how
        *all* concurrent commits look under the simulated clock — is not.
        Session transactions use this form so snapshot isolation (and its
        first-committer-wins conflicts) behaves correctly under the
        multi-threaded server front end.
        """
        # Under the commit mutex: an in-flight commit has either fully
        # installed its versions (its timestamp is safe to include) or
        # not yet issued its timestamp (it is entirely after us).
        with self.commit_mutex:
            snapshot = self.hlc.last
        return Transaction(self, next(self._txn_ids), snapshot)

    def reader(self, wall: Timestamp | None = None) -> SnapshotReader:
        """A read-only snapshot resolver.

        With an explicit ``wall`` (time travel / AS-OF), visibility is
        wall-granular: every commit at that wall clock is included. With
        no argument, the snapshot is the latest HLC point taken under the
        commit mutex — so a concurrent multi-table commit is either
        entirely visible or entirely invisible, never torn, even for
        plain auto-commit reads under the server front end.
        """
        if wall is not None:
            return SnapshotReader(self.catalog, wall)
        with self.commit_mutex:
            return SnapshotReader(self.catalog, self.hlc.last)
