"""The transaction manager.

Section 5.1: "The transaction manager handles versioning of table
metadata, manages locks, tracks uncommitted changes, and atomically
commits transactions."

Model:

* a transaction gets a **snapshot wall time** at begin; every read
  resolves the table version with the largest commit timestamp ≤ that
  wall time (snapshot reads);
* writes are staged per table (:class:`~repro.storage.table.StagedWrite`)
  and applied atomically at commit under a single HLC commit timestamp;
* first-committer-wins: committing a write to a table that someone else
  committed to after our snapshot raises
  :class:`~repro.errors.LockConflict` (a write-write conflict under
  snapshot isolation);
* locks serialize dynamic-table refreshes (section 5.3).

Dynamic-table refreshes use a transaction like any DML, but resolve their
*source* versions through a refresh-specific resolver built in
:mod:`repro.core.refresh` (regular tables as-of the data timestamp,
upstream DTs by exact refresh-timestamp match).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.engine.relation import Relation
from repro.errors import LockConflict, NotInitializedError, TransactionError
from repro.ivm.changes import ChangeSet
from repro.storage.catalog import Catalog
from repro.storage.table import StagedWrite, TableVersion, VersionedTable
from repro.txn.hlc import HlcTimestamp, HybridLogicalClock
from repro.util.timeutil import Timestamp


class Transaction:
    """A single transaction: snapshot reads + staged writes.

    Implements the executor's SnapshotResolver protocol, so a plan can be
    evaluated directly "inside" a transaction.
    """

    def __init__(self, manager: "TransactionManager", txn_id: int,
                 snapshot_wall: Timestamp):
        self._manager = manager
        self.id = txn_id
        self.snapshot_wall = snapshot_wall
        self._writes: dict[str, StagedWrite] = {}
        self._locked: list[str] = []
        self.committed: Optional[HlcTimestamp] = None
        self.aborted = False
        #: Per-table version overrides (used by refreshes to pin sources).
        self._version_overrides: dict[str, TableVersion] = {}

    # -- reads (SnapshotResolver) ----------------------------------------------

    def scan(self, table: str) -> Relation:
        versioned = self._resolve_table(table)
        version = self._version_overrides.get(table)
        if version is None:
            version = versioned.version_at(self.snapshot_wall)
        return versioned.relation(version)

    def pin_version(self, table: str, version: TableVersion) -> None:
        """Pin reads of ``table`` to a specific version (refresh source
        resolution, section 5.3)."""
        self._version_overrides[table] = version

    def _resolve_table(self, name: str) -> VersionedTable:
        catalog = self._manager.catalog
        entry = catalog.get(name)
        if entry.kind == "dynamic table":
            payload = entry.payload
            ensure = getattr(payload, "ensure_readable", None)
            if ensure is not None:
                ensure()  # raises NotInitializedError before first refresh
        return catalog.versioned_table(name)

    # -- writes ------------------------------------------------------------------

    def _staged(self, table: str) -> StagedWrite:
        self._check_open()
        # Validate the entity exists (and is not dropped) at staging time.
        self._manager.catalog.versioned_table(table)
        return self._writes.setdefault(table, StagedWrite())

    def insert_rows(self, table: str, rows: list[tuple]) -> None:
        self._staged(table).inserts.extend(rows)

    def delete_rows(self, table: str, row_ids: list[str]) -> None:
        self._staged(table).deletes.update(row_ids)

    def update_rows(self, table: str, updates: dict[str, tuple]) -> None:
        self._staged(table).updates.update(updates)

    def overwrite(self, table: str, rows: list[tuple]) -> None:
        staged = self._staged(table)
        staged.overwrite = True
        staged.inserts = list(rows)

    def stage_changeset(self, table: str, changes: ChangeSet,
                        overwrite: bool = False) -> None:
        staged = self._staged(table)
        if staged.changeset is not None or staged.inserts or staged.deletes:
            raise TransactionError(
                f"conflicting staged writes on {table!r} in one transaction")
        staged.changeset = changes
        staged.overwrite = overwrite

    # -- locks ---------------------------------------------------------------------

    def lock(self, table: str) -> None:
        self._manager.locks.acquire(table, self.id)
        self._locked.append(table)

    # -- lifecycle -----------------------------------------------------------------

    def _check_open(self) -> None:
        if self.committed is not None:
            raise TransactionError("transaction already committed")
        if self.aborted:
            raise TransactionError("transaction already aborted")

    def commit(self) -> HlcTimestamp:
        """Atomically apply all staged writes under one commit timestamp."""
        self._check_open()
        catalog = self._manager.catalog

        # First-committer-wins validation.
        for name in self._writes:
            table = catalog.versioned_table(name)
            head = table.current_version
            if (head.commit_ts.wall > self.snapshot_wall
                    and not self._writes[name].is_empty
                    and name not in self._version_overrides):
                raise LockConflict(
                    f"write-write conflict on {name!r}: committed at "
                    f"{head.commit_ts} after snapshot {self.snapshot_wall}")

        commit_ts = self._manager.hlc.now()
        try:
            for name, write in self._writes.items():
                if write.is_empty:
                    continue
                catalog.versioned_table(name).apply(write, commit_ts)
        finally:
            self._release_locks()
        self.committed = commit_ts
        return commit_ts

    def abort(self) -> None:
        self._check_open()
        self._writes.clear()
        self._release_locks()
        self.aborted = True

    def _release_locks(self) -> None:
        self._manager.locks.release_all(self.id)
        self._locked.clear()


class SnapshotReader:
    """A read-only resolver at a fixed wall time (no transaction state)."""

    def __init__(self, catalog: Catalog, wall: Timestamp):
        self._catalog = catalog
        self._wall = wall

    def _resolve(self, table: str) -> VersionedTable:
        entry = self._catalog.get(table)
        if entry.kind == "dynamic table":
            ensure = getattr(entry.payload, "ensure_readable", None)
            if ensure is not None:
                ensure()
        return self._catalog.versioned_table(table)

    def scan(self, table: str) -> Relation:
        versioned = self._resolve(table)
        return versioned.relation(versioned.version_at(self._wall))

    def scan_pruned(self, table: str, bounds) -> Relation:
        """Zone-map pruned scan (filters pushed down by the executor)."""
        versioned = self._resolve(table)
        return versioned.relation_pruned(versioned.version_at(self._wall),
                                         bounds)

    def scan_partitions(self, table: str):
        """The micro-partitions of the snapshot's version — the
        partition-granular read behind streaming cursors.

        The version is resolved *now*, not at first pull: a streaming
        cursor must serve exactly the snapshot of its execute() call even
        when later commits land at the same wall clock. Partitions are
        immutable, so iterating the pinned set lazily afterwards is safe.
        """
        versioned = self._resolve(table)
        version = versioned.version_at(self._wall)
        return iter(versioned.partitions_of(version))


class TransactionManager:
    """Creates transactions and owns the HLC and lock table."""

    def __init__(self, catalog: Catalog,
                 physical_clock: Callable[[], Timestamp] = lambda: 0):
        from repro.txn.locks import LockManager

        self.catalog = catalog
        self.hlc = HybridLogicalClock(physical_clock)
        self.locks = LockManager()
        self._physical_clock = physical_clock
        self._txn_ids = itertools.count(1)

    def begin(self, snapshot_wall: Timestamp | None = None) -> Transaction:
        """Begin a transaction; reads see data committed at or before
        ``snapshot_wall`` (defaults to the current physical time)."""
        if snapshot_wall is None:
            snapshot_wall = self._physical_clock()
        return Transaction(self, next(self._txn_ids), snapshot_wall)

    def reader(self, wall: Timestamp | None = None) -> SnapshotReader:
        if wall is None:
            wall = self._physical_clock()
        return SnapshotReader(self.catalog, wall)
