"""Transactions: the hybrid logical clock, snapshot reads, and locks."""

from repro.txn.hlc import HLC_ZERO, HlcTimestamp, HybridLogicalClock
from repro.txn.manager import Transaction, TransactionManager

__all__ = ["HLC_ZERO", "HlcTimestamp", "HybridLogicalClock", "Transaction",
           "TransactionManager"]
