"""Hybrid Logical Clock (HLC).

Section 5.3 of the paper: "This timestamp is read from a Hybrid Logical
Clock (HLC), and is totally ordered relative to the commits of all other
transactions in the account."

The implementation follows Kulkarni et al., "Logical Physical Clocks"
(reference [22] of the paper). An HLC timestamp is a pair ``(wall, logical)``
where ``wall`` tracks the largest physical time observed and ``logical``
breaks ties among events sharing the same ``wall``. The clock guarantees:

* **monotonicity** — successive calls to :meth:`HybridLogicalClock.now`
  return strictly increasing timestamps, even if the physical clock stalls
  or moves backwards;
* **causality** — :meth:`HybridLogicalClock.update` merges a remote
  timestamp so that subsequent local timestamps dominate it;
* **bounded drift** — ``wall`` never lags the physical clock.

In this repository the "physical clock" is the simulation clock
(:class:`repro.scheduler.clock.SimClock`), supplied via a callable so the
transaction manager stays decoupled from the scheduler.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.util.timeutil import Timestamp


@dataclass(frozen=True, order=True)
class HlcTimestamp:
    """A totally ordered hybrid logical timestamp.

    Ordering is lexicographic on ``(wall, logical)``, which is exactly the
    total order the transaction manager relies on for version visibility.
    """

    wall: Timestamp
    logical: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"hlc({self.wall},{self.logical})"

    def next(self) -> "HlcTimestamp":
        """The smallest timestamp strictly greater than this one."""
        return HlcTimestamp(self.wall, self.logical + 1)


#: The smallest possible HLC timestamp; predates every commit.
HLC_ZERO = HlcTimestamp(0, 0)


class HybridLogicalClock:
    """A single-node hybrid logical clock.

    Parameters
    ----------
    physical:
        Zero-argument callable returning the current physical time in
        nanoseconds. Defaults to a constant 0 so that a bare clock behaves
        like a Lamport clock; the database wires in the simulation clock.
    """

    def __init__(self, physical: Callable[[], Timestamp] | None = None):
        self._physical = physical if physical is not None else (lambda: 0)
        self._last = HLC_ZERO
        # Issuing a timestamp is a read-modify-write of ``_last``; the
        # multi-session server commits from many threads, and monotonicity
        # is the one property everything downstream leans on.
        self._mutex = threading.Lock()

    @property
    def last(self) -> HlcTimestamp:
        """The most recent timestamp issued or observed."""
        return self._last

    def now(self) -> HlcTimestamp:
        """Issue a new timestamp strictly greater than any issued before.

        If physical time has advanced past the last issued ``wall``, the
        logical component resets to zero; otherwise it increments.
        """
        with self._mutex:
            physical_now = self._physical()
            if physical_now > self._last.wall:
                issued = HlcTimestamp(physical_now, 0)
            else:
                issued = HlcTimestamp(self._last.wall, self._last.logical + 1)
            self._last = issued
            return issued

    def update(self, remote: HlcTimestamp) -> HlcTimestamp:
        """Merge a timestamp received from elsewhere and issue a timestamp
        greater than both it and all previously issued local timestamps.

        This is the receive rule of the HLC algorithm; it is used when
        replaying externally ordered events into the transaction manager.
        """
        with self._mutex:
            physical_now = self._physical()
            wall = max(physical_now, self._last.wall, remote.wall)
            if wall == self._last.wall and wall == remote.wall:
                logical = max(self._last.logical, remote.logical) + 1
            elif wall == self._last.wall:
                logical = self._last.logical + 1
            elif wall == remote.wall:
                logical = remote.logical + 1
            else:
                logical = 0
            issued = HlcTimestamp(wall, logical)
            self._last = issued
            return issued

    def observe(self, remote: HlcTimestamp) -> None:
        """Advance ``last`` to ``remote`` without issuing a timestamp.

        Unlike :meth:`update` (the HLC receive rule, which bumps the
        logical component), observation restores the clock to an *exact*
        previously issued value — WAL replay re-applies each commit with
        its recorded timestamp and must leave the clock precisely where
        the crashed process had it, so post-recovery commits continue the
        same sequence instead of forking one logical tick above it.
        """
        with self._mutex:
            if remote > self._last:
                self._last = remote
