"""A synthetic population of dynamic tables, calibrated to section 6.3.

The paper's Figures 5 and 6 are measurements over Snowflake's production
fleet (≈1M active DTs) — data we cannot access. Per the substitution rule,
we model the fleet as a generative distribution whose *parameters* encode
the marginals the paper reports, then **measure** the generated population
the same way the paper measures production:

* Figure 5 (target-lag distribution): "More than 25% of DTs have a target
  lag of at least 16 hours ... nearly 20% of DTs have a target lag less
  than 5 minutes. The 55% of DTs between these ..."
* Figure 6 (operator frequency): joins, aggregates, and window functions
  are common in incremental DT definitions; the measured frequencies come
  from running :func:`repro.plan.properties.operator_inventory` over each
  generated DT's *actual bound plan*, not from the sampling weights.
* §6.3 adoption stats: "almost 70% of active DTs have an incremental
  refresh mode"; "More than 20% of active DTs were cloned from another,
  and 20% are in a shared database."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.plan.builder import DictSchemaProvider, build_plan
from repro.plan.properties import (incrementalizability, operator_inventory,
                                   OPERATOR_CATEGORIES)
from repro.sql.parser import parse_query
from repro.engine.schema import schema_of
from repro.engine.types import SqlType
from repro.util.timeutil import Duration, HOUR, MINUTE, hours, minutes
from repro.workload.generator import QueryGenerator

#: Figure 5 target-lag buckets: (label, lag, probability). Calibrated so
#: P(lag < 5 min) ≈ 0.20, P(lag ≥ 16 h) ≈ 0.26, middle ≈ 0.54.
TARGET_LAG_BUCKETS: list[tuple[str, Duration, float]] = [
    ("1m", minutes(1), 0.10),
    ("2m", minutes(2), 0.05),
    ("4m", minutes(4), 0.05),
    ("5m", minutes(5), 0.06),
    ("15m", minutes(15), 0.08),
    ("30m", minutes(30), 0.07),
    ("1h", hours(1), 0.12),
    ("2h", hours(2), 0.06),
    ("4h", hours(4), 0.08),
    ("8h", hours(8), 0.07),
    ("16h", hours(16), 0.10),
    ("24h", hours(24), 0.12),
    ("48h", hours(48), 0.04),
]

#: §6.3: fraction of DTs with an incremental refresh mode.
INCREMENTAL_FRACTION = 0.70
#: §6.3: fraction of DTs cloned from another / in a shared database.
CLONED_FRACTION = 0.20
SHARED_FRACTION = 0.20


@dataclass
class SyntheticDt:
    """One synthetic DT: a real (bound) plan plus fleet attributes."""

    name: str
    target_lag: Duration
    query_sql: str
    refresh_mode: str          # "incremental" | "full"
    cloned: bool
    shared: bool
    operators: dict[str, int]


@dataclass
class PopulationSummary:
    """Measured marginals of a generated population."""

    size: int
    lag_histogram: dict[str, int]
    fraction_below_5m: float
    fraction_at_least_16h: float
    fraction_between: float
    incremental_fraction: float
    cloned_fraction: float
    shared_fraction: float
    operator_frequency: dict[str, float] = field(default_factory=dict)


def _schema_provider() -> DictSchemaProvider:
    facts = schema_of(("id", SqlType.INT), ("dim_id", SqlType.INT),
                      ("category", SqlType.TEXT), ("amount", SqlType.INT),
                      ("score", SqlType.INT), table="facts")
    dims = schema_of(("id", SqlType.INT), ("label", SqlType.TEXT),
                     ("region", SqlType.TEXT), table="dims")
    return DictSchemaProvider({"facts": facts, "dims": dims})


def generate_population(size: int, seed: int = 0) -> list[SyntheticDt]:
    """Generate ``size`` synthetic DTs with calibrated attributes."""
    rng = random.Random(seed)
    generator = QueryGenerator(rng=rng)
    provider = _schema_provider()
    labels = [label for label, __, __ in TARGET_LAG_BUCKETS]
    lags = [lag for __, lag, __ in TARGET_LAG_BUCKETS]
    weights = [weight for __, __, weight in TARGET_LAG_BUCKETS]

    population: list[SyntheticDt] = []
    for index in range(size):
        bucket = rng.choices(range(len(lags)), weights=weights)[0]
        sql = generator.query()
        plan = build_plan(parse_query(sql), provider)
        supported = incrementalizability(plan).supported
        wants_incremental = rng.random() < INCREMENTAL_FRACTION
        mode = "incremental" if (supported and wants_incremental) else "full"
        population.append(SyntheticDt(
            name=f"dt_{index}",
            target_lag=lags[bucket],
            query_sql=sql,
            refresh_mode=mode,
            cloned=rng.random() < CLONED_FRACTION,
            shared=rng.random() < SHARED_FRACTION,
            operators=operator_inventory(plan)))
    return population


def summarize(population: list[SyntheticDt]) -> PopulationSummary:
    """Measure the marginals the paper reports over a population."""
    size = len(population)
    histogram = {label: 0 for label, __, __ in TARGET_LAG_BUCKETS}
    lag_of_label = {lag: label for label, lag, __ in TARGET_LAG_BUCKETS}
    below = middle = above = 0
    incremental = cloned = shared = 0

    operator_presence = {category: 0 for category in OPERATOR_CATEGORIES}
    for dt in population:
        histogram[lag_of_label[dt.target_lag]] += 1
        if dt.target_lag < 5 * MINUTE:
            below += 1
        elif dt.target_lag >= 16 * HOUR:
            above += 1
        else:
            middle += 1
        if dt.refresh_mode == "incremental":
            incremental += 1
        if dt.cloned:
            cloned += 1
        if dt.shared:
            shared += 1
        for category, count in dt.operators.items():
            if count > 0:
                operator_presence[category] += 1

    incremental_dts = [dt for dt in population
                       if dt.refresh_mode == "incremental"]
    frequency: dict[str, float] = {}
    if incremental_dts:
        for category in OPERATOR_CATEGORIES:
            present = sum(1 for dt in incremental_dts
                          if dt.operators.get(category, 0) > 0)
            frequency[category] = present / len(incremental_dts)

    return PopulationSummary(
        size=size,
        lag_histogram=histogram,
        fraction_below_5m=below / size,
        fraction_at_least_16h=above / size,
        fraction_between=middle / size,
        incremental_fraction=incremental / size,
        cloned_fraction=cloned / size,
        shared_fraction=shared / size,
        operator_frequency=frequency)
