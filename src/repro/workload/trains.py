"""The paper's Listing 1 scenario: late-arriving trains.

Reproduces the running example of section 3 — two stacked dynamic tables
over a stream of train events:

* ``train_arrivals`` (TARGET_LAG = DOWNSTREAM) extracts arrival events by
  joining the raw event stream (VARIANT payloads) against the ``trains``
  dimension;
* ``delayed_trains`` (TARGET_LAG = '1 minute') counts arrivals more than
  10 minutes late per train and hour, via GROUP BY ALL.

The module seeds the schema, emits synthetic event traffic, and exposes
the exact DDL of Listing 1 (modulo our dialect's identical syntax).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.api import Database
from repro.engine.types import canonical_json
from repro.util.timeutil import MINUTE, Timestamp, minutes

TRAIN_NAMES = ("aurora", "borealis", "cascade", "dynamo", "express",
               "flyer", "glacier", "horizon")

#: Listing 1, verbatim structure (TARGET_LAG = DOWNSTREAM upstream,
#: '1 minute' downstream).
TRAIN_ARRIVALS_DDL = """
CREATE DYNAMIC TABLE train_arrivals
TARGET_LAG = DOWNSTREAM
WAREHOUSE = trains_wh
AS SELECT
    t.id train_id,
    e.payload:time::timestamp arrival_time,
    e.payload:schedule_id::int schedule_id
FROM train_events e
JOIN trains t ON e.payload:train_id::int = t.id
WHERE e.type = 'ARRIVAL'
"""

DELAYED_TRAINS_DDL = """
CREATE DYNAMIC TABLE delayed_trains
TARGET_LAG = '1 minute'
WAREHOUSE = trains_wh
AS SELECT a.train_id train_id,
    date_trunc(hour, s.expected_arrival_time) hour,
    count_if(arrival_time - s.expected_arrival_time > 600000000000)
        num_delays
FROM train_arrivals a
JOIN schedule s ON a.schedule_id = s.id
GROUP BY ALL
"""


@dataclass
class TrainWorkload:
    """Seeds the Listing 1 schema and generates event traffic."""

    rng: random.Random = field(default_factory=lambda: random.Random(42))
    _next_event: int = 1
    _next_schedule: int = 1

    def setup(self, db: Database, trains: int = 6,
              schedules_per_train: int = 4) -> None:
        """Create base tables, the warehouse, and both dynamic tables."""
        if not db.warehouses.exists("trains_wh"):
            db.create_warehouse("trains_wh", size=1)
        db.execute("CREATE TABLE trains (id int, name text)")
        db.execute("CREATE TABLE train_events (id int, type text,"
                   " payload variant)")
        db.execute("CREATE TABLE schedule (id int, train_id int,"
                   " expected_arrival_time timestamp)")
        for train_id in range(1, trains + 1):
            name = TRAIN_NAMES[(train_id - 1) % len(TRAIN_NAMES)]
            db.execute(f"INSERT INTO trains VALUES ({train_id}, '{name}')")
        for train_id in range(1, trains + 1):
            for slot in range(schedules_per_train):
                expected = (slot + 1) * 3_600_000_000_000  # hourly slots
                db.execute(
                    "INSERT INTO schedule VALUES "
                    f"({self._next_schedule}, {train_id}, {expected})")
                self._next_schedule += 1
        db.execute(TRAIN_ARRIVALS_DDL)
        db.execute(DELAYED_TRAINS_DDL)

    def emit_arrivals(self, db: Database, count: int,
                      late_fraction: float = 0.3) -> int:
        """Insert ``count`` ARRIVAL events (and a few non-arrival noise
        events); returns how many were late by more than 10 minutes."""
        late = 0
        statements = []
        schedule_rows = db.query("SELECT id, train_id, expected_arrival_time"
                                 " FROM schedule").rows
        for __ in range(count):
            schedule_id, train_id, expected = self.rng.choice(schedule_rows)
            if self.rng.random() < late_fraction:
                delay = self.rng.randint(11, 90) * MINUTE
                late += 1
            else:
                delay = self.rng.randint(-5, 9) * MINUTE
            payload = canonical_json({
                "train_id": train_id,
                "schedule_id": schedule_id,
                "time": expected + delay,
            }).replace("'", "''")
            statements.append(
                f"({self._next_event}, 'ARRIVAL', "
                f"cast('{payload}' as variant))")
            self._next_event += 1
            if self.rng.random() < 0.2:
                noise = canonical_json({"train_id": train_id})
                statements.append(
                    f"({self._next_event}, 'DEPARTURE', "
                    f"cast('{noise}' as variant))")
                self._next_event += 1
        db.execute("INSERT INTO train_events VALUES " + ", ".join(statements))
        return late
