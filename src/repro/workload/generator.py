"""Randomized query and update generation.

Section 6.1 of the paper (the fourth testing level): "Because of
delayed-view semantics with snapshot isolation, we have an extremely
strong assertion we can make for most DTs: if you run the defining query
as of the data timestamp, you should get the same result as in the DT.
Checking this assertion within a framework that generates random SQL
queries allows us to test the correctness of hundreds of thousands of
different DTs in a matter of hours."

This module is that framework's generator: random defining queries over a
fixed star schema (covering every incrementally supported operator class)
and random DML workloads to drive the refreshes. The DVS oracle itself is
:meth:`repro.api.Database.check_dvs`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.api import Database
from repro.util.timeutil import Timestamp

#: The star schema random queries are generated over.
SCHEMA_DDL = [
    "CREATE TABLE facts (id int, dim_id int, category text, amount int,"
    " score int)",
    "CREATE TABLE dims (id int, label text, region text)",
]

CATEGORIES = ("alpha", "beta", "gamma", "delta")
REGIONS = ("west", "east", "north")
LABELS = ("red", "green", "blue", "amber", "violet")


def create_workload_schema(db: Database) -> None:
    for ddl in SCHEMA_DDL:
        db.execute(ddl)


@dataclass
class QueryGenerator:
    """Generates random defining queries over the star schema.

    ``operator_weights`` adjusts the shape mix; each generated query is
    guaranteed to parse, bind, and be incrementally maintainable unless
    ``allow_full_only`` is set (then ORDER BY/LIMIT may appear,
    exercising the FULL refresh path).
    """

    rng: random.Random = field(default_factory=lambda: random.Random(0))
    allow_full_only: bool = False

    def query(self) -> str:
        shape = self.rng.random()
        if shape < 0.25:
            sql = self._filter_project()
        elif shape < 0.45:
            sql = self._join()
        elif shape < 0.65:
            sql = self._aggregate()
        elif shape < 0.75:
            sql = self._window()
        elif shape < 0.85:
            sql = self._union()
        else:
            sql = self._distinct()
        if self.allow_full_only and self.rng.random() < 0.25:
            sql += f" ORDER BY 1 LIMIT {self.rng.randint(1, 20)}"
        return sql

    # -- shapes -------------------------------------------------------------------

    def _predicate(self, alias: str = "") -> str:
        prefix = f"{alias}." if alias else ""
        choices = [
            f"{prefix}amount > {self.rng.randint(0, 50)}",
            f"{prefix}score <= {self.rng.randint(10, 90)}",
            f"{prefix}category = '{self.rng.choice(CATEGORIES)}'",
            f"{prefix}category IN ('{self.rng.choice(CATEGORIES)}',"
            f" '{self.rng.choice(CATEGORIES)}')",
            f"{prefix}amount + {prefix}score < {self.rng.randint(40, 120)}",
        ]
        return self.rng.choice(choices)

    def _filter_project(self) -> str:
        predicate = self._predicate()
        return ("SELECT id, category, amount * 2 doubled, "
                f"amount + score total FROM facts WHERE {predicate}")

    def _join(self) -> str:
        kind = self.rng.choice(["JOIN", "LEFT JOIN", "FULL JOIN"])
        predicate = self._predicate("f")
        return (f"SELECT f.id, f.amount, d.region FROM facts f {kind} dims d "
                f"ON f.dim_id = d.id WHERE {predicate}")

    def _aggregate(self) -> str:
        agg = self.rng.choice([
            "count(*) n", "sum(amount) total", "min(score) lo",
            "max(score) hi", "avg(amount) mean",
            "count_if(amount > 20) big"])
        if self.rng.random() < 0.5:
            return (f"SELECT category, {agg} FROM facts GROUP BY category")
        return (f"SELECT d.region, {agg} FROM facts f JOIN dims d "
                "ON f.dim_id = d.id GROUP BY ALL")

    def _window(self) -> str:
        call = self.rng.choice([
            "row_number() over (partition by category order by amount desc)",
            "rank() over (partition by category order by score)",
            "sum(amount) over (partition by category order by id)",
            "count(*) over (partition by category)",
        ])
        return f"SELECT id, category, amount, {call} w FROM facts"

    def _union(self) -> str:
        low = self.rng.randint(0, 30)
        return ("SELECT id, amount FROM facts WHERE amount < "
                f"{low} UNION ALL SELECT id, score FROM facts "
                f"WHERE score >= {low}")

    def _distinct(self) -> str:
        if self.rng.random() < 0.5:
            return "SELECT DISTINCT category FROM facts"
        return ("SELECT DISTINCT d.region, f.category FROM facts f "
                "JOIN dims d ON f.dim_id = d.id")


@dataclass
class UpdateWorkload:
    """Random DML against the star schema: inserts, deletes, updates.

    ``churn`` controls the fraction of existing rows touched per step
    (the paper's 67%-of-refreshes-change-<1% statistic corresponds to
    small churn relative to table size).
    """

    rng: random.Random = field(default_factory=lambda: random.Random(0))
    insert_rate: int = 5
    churn: float = 0.05
    _next_id: int = 1

    def seed(self, db: Database, facts: int = 100, dims: int = 10) -> None:
        for __ in range(dims):
            db.execute(
                f"INSERT INTO dims VALUES ({self.rng.randint(1, 20)}, "
                f"'{self.rng.choice(LABELS)}', '{self.rng.choice(REGIONS)}')")
        rows = []
        for __ in range(facts):
            rows.append(self._fact_row())
        values = ", ".join(rows)
        db.execute(f"INSERT INTO facts VALUES {values}")

    def _fact_row(self) -> str:
        row = (f"({self._next_id}, {self.rng.randint(1, 20)}, "
               f"'{self.rng.choice(CATEGORIES)}', {self.rng.randint(0, 60)}, "
               f"{self.rng.randint(0, 100)})")
        self._next_id += 1
        return row

    def step(self, db: Database) -> None:
        """One burst of random DML."""
        inserts = self.rng.randint(0, self.insert_rate)
        if inserts:
            values = ", ".join(self._fact_row() for __ in range(inserts))
            db.execute(f"INSERT INTO facts VALUES {values}")
        if self.rng.random() < self.churn * 4:
            threshold = self.rng.randint(0, 8)
            db.execute(f"DELETE FROM facts WHERE amount < {threshold}")
        if self.rng.random() < self.churn * 4:
            bump = self.rng.randint(1, 5)
            category = self.rng.choice(CATEGORIES)
            db.execute(f"UPDATE facts SET score = score + {bump} "
                       f"WHERE category = '{category}'")
