"""Workload generation: random queries/updates, the synthetic fleet, and
the paper's Listing 1 (trains) scenario."""

from repro.workload.generator import QueryGenerator, UpdateWorkload
from repro.workload.population import generate_population, summarize
from repro.workload.trains import TrainWorkload

__all__ = ["QueryGenerator", "TrainWorkload", "UpdateWorkload",
           "generate_population", "summarize"]
