"""The refresh scheduler: the discrete-event control loop.

Section 5.1 of the paper: "The catalog generates a timestamped,
linearizable log of DDL operations to all DTs and related entities. This
DDL log is consumed by a job in the scheduler that renders the dependency
graph of DTs and issues refresh commands as required to meet the target
lag of each."

The loop reproduces the heuristic of section 5.2:

* each DT gets a **canonical refresh period** (48·2^n s) derived from its
  effective target lag, clamped to be ≥ its upstream DTs' periods;
* all periods share one account-constant **phase**, so the refresh ticks
  of a downstream DT are a subset of its upstream's ticks and data
  timestamps align across a connected component;
* at each tick, due DTs refresh in topological order; a refresh's start
  waits for its upstream refreshes at the same data timestamp
  (w_i ≥ max(w_j + d_j), section 5.2) and for a free warehouse slot;
* **skips** (section 3.3.3): if a DT's previous refresh is still running
  at its next tick, the tick is skipped — "relying on the subsequent
  refresh to bring the DT's data timestamp up to date"; the following
  refresh widens its change interval automatically because it
  differentiates from the frontier. Skips also cascade: a DT whose
  upstream has no data at the tick's timestamp skips rather than violate
  snapshot isolation.

Workload events (DML against base tables, DDL, manual refreshes) are
injected with :meth:`Scheduler.at` and interleave with ticks in time
order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.dynamic_table import (DynamicTable, RefreshAction,
                                      RefreshRecord)
from repro.core.graph import DependencyGraph
from repro.errors import VersionNotFound
from repro.core.refresh import RefreshEngine
from repro.scheduler.clock import SimClock
from repro.scheduler.cost import CostModel
from repro.scheduler.executor import (ParallelRefreshCoordinator,
                                      dependency_waves)
from repro.scheduler.periods import (BASE_PERIOD, choose_period,
                                     clamp_to_upstream, is_tick)
from repro.scheduler.warehouse import WarehousePool
from repro.storage.catalog import Catalog
from repro.util.timeutil import Duration, Timestamp


@dataclass
class SchedulerReport:
    """Counters accumulated over a run (used by the benchmarks)."""

    ticks: int = 0
    refreshes_attempted: int = 0
    refreshes_succeeded: int = 0
    refreshes_failed: int = 0
    refreshes_skipped: int = 0
    no_data_refreshes: int = 0
    actions: dict[str, int] = field(default_factory=dict)

    def record(self, record: RefreshRecord) -> None:
        self.refreshes_attempted += 1
        if record.skipped:
            self.refreshes_skipped += 1
            return
        if record.error is not None:
            self.refreshes_failed += 1
            return
        self.refreshes_succeeded += 1
        if record.action is not None:
            name = record.action.value
            self.actions[name] = self.actions.get(name, 0) + 1
            if name == "no_data":
                self.no_data_refreshes += 1


class Scheduler:
    """Drives refreshes to meet target lags over simulated time."""

    def __init__(self, catalog: Catalog, engine: RefreshEngine,
                 warehouses: WarehousePool, clock: SimClock,
                 cost_model: CostModel | None = None, phase: Timestamp = 0,
                 parallelism: Optional[int] = None):
        self.catalog = catalog
        self.engine = engine
        self.warehouses = warehouses
        self.clock = clock
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.phase = phase
        self.report = SchedulerReport()
        # Liveness instrumentation (section 6.2): every executed refresh
        # registers with the monitor and emits simulated heartbeats.
        from repro.scheduler.liveness import LivenessMonitor

        self.liveness = LivenessMonitor()
        #: dt name -> simulated end time of its in-flight/most recent refresh.
        self._busy_until: dict[str, Timestamp] = {}
        self._events: list[tuple[Timestamp, int, Callable[[], None]]] = []
        self._event_seq = itertools.count()
        #: DAG-parallel mode (None = the exact serial legacy behavior).
        self.parallelism: Optional[int] = None
        self._coordinator: Optional[ParallelRefreshCoordinator] = None
        #: Modeled dispatch capacity: next-free times of ``parallelism``
        #: scheduler slots, persisting across ticks like warehouse slots.
        self._dispatch_slots: list[Timestamp] = []
        if parallelism is not None:
            self.set_parallelism(parallelism)

    def set_parallelism(self, workers: Optional[int]) -> None:
        """Switch between the serial tick loop (``None``, the exact
        historical behavior — no dispatch slots, no pool) and DAG-parallel
        mode: each tick's due DTs partition into dependency waves whose
        independent refreshes execute concurrently, and modeled durations
        queue on ``workers`` dispatch slots so modeled makespans overlap
        for independent DTs (``workers=1`` models a fully serialized
        executor — the paper's one-refresh-at-a-time baseline)."""
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None
        self.parallelism = workers
        self._dispatch_slots = [] if workers is None else [0] * workers
        if workers is not None:
            self._coordinator = ParallelRefreshCoordinator(self.engine,
                                                           workers)

    # -- workload injection ---------------------------------------------------------

    def at(self, time: Timestamp, callback: Callable[[], None]) -> None:
        """Schedule a workload callback (DML/DDL) at a simulated time."""
        heapq.heappush(self._events, (time, next(self._event_seq), callback))

    # -- the loop ----------------------------------------------------------------------

    def run_until(self, end_time: Timestamp) -> SchedulerReport:
        """Advance simulated time to ``end_time``, firing workload events
        and refresh ticks in order. Events at a given time run before the
        tick at that time."""
        while True:
            next_tick_time = self._next_tick_after(self.clock.now())
            next_event_time = self._events[0][0] if self._events else None

            candidates = [time for time in (next_tick_time, next_event_time)
                          if time is not None and time <= end_time]
            if not candidates:
                break
            time = min(candidates)
            self.clock.advance_to(time)
            # Drain events at this instant first.
            while self._events and self._events[0][0] <= time:
                __, __, callback = heapq.heappop(self._events)
                callback()
            if is_tick(time, BASE_PERIOD, self.phase):
                self._tick(time)
        self.clock.advance_to(end_time)
        return self.report

    def _next_tick_after(self, time: Timestamp) -> Timestamp:
        elapsed = (time - self.phase) % BASE_PERIOD
        if elapsed == 0 and time > self.phase:
            return time + BASE_PERIOD
        if elapsed == 0:
            return time if time > 0 else BASE_PERIOD + self.phase
        return time + (BASE_PERIOD - elapsed)

    # -- periods ----------------------------------------------------------------------

    def assign_periods(self, graph: DependencyGraph,
                       ) -> dict[str, Optional[Duration]]:
        """Choose a canonical refresh period per DT (section 5.2).

        DOWNSTREAM DTs with no concrete downstream lag get None — they
        refresh only when a downstream refresh demands them or manually.
        """
        periods: dict[str, Optional[Duration]] = {}
        for dt in graph.topological_order():
            effective = graph.effective_lag(dt.name)
            if effective is None:
                periods[dt.name] = None
                continue
            period = choose_period(effective)
            upstream_periods = [
                periods[upstream.name]
                for upstream in graph.upstream_dts(dt.name)
                if periods.get(upstream.name) is not None]
            periods[dt.name] = clamp_to_upstream(period, upstream_periods)
        return periods

    # -- one tick ---------------------------------------------------------------------

    def _tick(self, time: Timestamp) -> None:
        self.report.ticks += 1
        graph = DependencyGraph(self.catalog)
        periods = self.assign_periods(graph)

        due: list[DynamicTable] = []
        for dt in graph.topological_order():
            period = periods.get(dt.name)
            if period is None or not is_tick(time, period, self.phase):
                continue
            if dt.suspended:
                continue
            due.append(dt)

        #: end-wall of refreshes committed *at this tick's data timestamp*.
        completed_at_tick: dict[str, Timestamp] = {}
        if self._coordinator is None:
            for dt in due:
                self._refresh_one(dt, time, graph, completed_at_tick)
        else:
            self._tick_parallel(due, time, graph, completed_at_tick)

    def _refresh_one(self, dt: DynamicTable, time: Timestamp,
                     graph: DependencyGraph,
                     completed_at_tick: dict[str, Timestamp]) -> None:
        upstream_ends = self._skip_or_upstream_ends(dt, time, graph,
                                                    completed_at_tick)
        if upstream_ends is None:
            return
        record = self.engine.refresh(dt, time)
        self._account(dt, time, record, upstream_ends, completed_at_tick)

    def _tick_parallel(self, due: list[DynamicTable], time: Timestamp,
                       graph: DependencyGraph,
                       completed_at_tick: dict[str, Timestamp]) -> None:
        """One tick in DAG-parallel mode: the due DTs partition into
        dependency waves, each wave's non-skipped refreshes execute
        concurrently on the coordinator pool, and all bookkeeping —
        modeled timing, dispatch slots, liveness, report — happens here
        on the driving thread in deterministic (wave, topological)
        order. Skip checks run before each wave is submitted: every
        upstream of a wave member sits in an earlier wave (if due) or
        holds still this tick (if not), so ``completed_at_tick`` is
        already complete for it."""
        waves = dependency_waves(due, graph)
        for wave_index, wave in enumerate(waves):
            runnable: list[DynamicTable] = []
            ends: list[list[Timestamp]] = []
            for dt in wave:
                upstream_ends = self._skip_or_upstream_ends(
                    dt, time, graph, completed_at_tick)
                if upstream_ends is None:
                    continue
                runnable.append(dt)
                ends.append(upstream_ends)
            if not runnable:
                continue
            records = self._coordinator.refresh_wave(
                [(dt, time) for dt in runnable])
            for dt, upstream_ends, record in zip(runnable, ends, records):
                info = dict(record.parallel or {})
                info.update({"wave": wave_index + 1, "waves": len(waves),
                             "workers": self.parallelism})
                record.parallel = info
                self._account(dt, time, record, upstream_ends,
                              completed_at_tick)

    def _skip_or_upstream_ends(self, dt: DynamicTable, time: Timestamp,
                               graph: DependencyGraph,
                               completed_at_tick: dict[str, Timestamp],
                               ) -> Optional[list[Timestamp]]:
        """The skip gate of one due DT: records and returns None when the
        tick must be skipped, else the end-walls of its upstream
        refreshes at this data timestamp."""
        # Skip: previous refresh still running (section 3.3.3).
        if self._busy_until.get(dt.name, 0) > time:
            self._record_skip(dt, time)
            return None

        # Cascade skip: an upstream DT has no data at this timestamp
        # (it was skipped, failed, suspended, or is on a larger period).
        upstream_ends: list[Timestamp] = []
        for upstream in graph.upstream_dts(dt.name):
            if upstream.name in completed_at_tick:
                upstream_ends.append(completed_at_tick[upstream.name])
                continue
            try:
                upstream.table.version_for_refresh(time)
            except VersionNotFound:
                self._record_skip(
                    dt, time,
                    upstream_failed=self._upstream_failed(upstream, time))
                return None
            except Exception as exc:
                # Anything else is a real error, not a missing version.
                # It must never be swallowed as a silent skip: record it
                # on the DT as a failed attempt (visible in history,
                # counted toward auto-suspension) and skip this tick.
                record = RefreshRecord(
                    data_timestamp=time,
                    error=(f"upstream probe of {upstream.name!r} failed: "
                           f"{type(exc).__name__}: {exc}"))
                dt.record_refresh(record)
                self.report.record(record)
                return None
        return upstream_ends

    @staticmethod
    def _upstream_failed(upstream: DynamicTable, time: Timestamp) -> bool:
        """Whether an upstream's missing version at ``time`` is due to
        *failure* (suspended, or its attempt at this timestamp errored)
        rather than benign scheduling (larger period, still running)."""
        if upstream.suspended:
            return True
        for record in reversed(upstream.refresh_history):
            if record.data_timestamp < time:
                break
            if record.data_timestamp == time and record.error is not None:
                return True
        return False

    def _record_skip(self, dt: DynamicTable, time: Timestamp,
                     upstream_failed: bool = False) -> None:
        record = RefreshRecord(data_timestamp=time, skipped=True)
        if upstream_failed:
            # Section 3.3.3 graceful degradation: the DT keeps serving
            # its last version while its upstream is failing, and the
            # skip is distinguishable (staleness reports, EXPLAIN).
            record.action = RefreshAction.SKIPPED_UPSTREAM_FAILED
        dt.record_refresh(record)
        self.report.record(record)

    def _account(self, dt: DynamicTable, time: Timestamp,
                 record: RefreshRecord, upstream_ends: list[Timestamp],
                 completed_at_tick: dict[str, Timestamp]) -> None:
        # Simulated timing: wait for upstream completion at this data
        # timestamp, then for a warehouse slot; run for the modeled cost.
        # In DAG-parallel mode the refresh additionally queues on one of
        # ``parallelism`` dispatch slots — the modeled analogue of the
        # coordinator's worker count.
        arrival = max([time] + upstream_ends)
        duration = self.cost_model.duration_of(
            record, self.warehouses.get(dt.warehouse).size
            if self.warehouses.exists(dt.warehouse) else 1)
        if record.error is not None:
            # Failed refreshes burn only the fixed cost.
            duration = self.cost_model.fixed_cost
        # Retried attempts waited out their exponential backoff on the
        # simulated clock: fold it into the modeled duration so liveness
        # and warehouse occupancy see the retries (never a wall sleep).
        duration += record.backoff_total
        slot_index: Optional[int] = None
        if self._dispatch_slots:
            slot_index = min(range(len(self._dispatch_slots)),
                             key=self._dispatch_slots.__getitem__)
            arrival = max(arrival, self._dispatch_slots[slot_index])
        if self.cost_model.uses_warehouse(record) and self.warehouses.exists(
                dt.warehouse):
            start, end = self.warehouses.get(dt.warehouse).submit(
                arrival, duration)
        else:
            start, end = arrival, arrival + duration
        if slot_index is not None:
            self._dispatch_slots[slot_index] = end
        record.start_wall = start
        record.end_wall = end
        self._busy_until[dt.name] = end
        self.liveness.begin(dt.name, time, start)
        self.liveness.simulate_heartbeats(dt.name, start, end)
        self.liveness.end(dt.name, end, record.succeeded)
        if record.succeeded:
            completed_at_tick[dt.name] = end
        self.report.record(record)
