"""Liveness monitoring: heartbeats and SLOs (section 6.2 of the paper).

"We define internal SLOs that make a distinction between Snowflake's
responsibilities and customer responsibilities. For example, we cannot
simply assert that all DTs stay within their target lag some fraction of
the time: customers control the query, the data, and the resources
available. Instead, we instrumented the system so that we can always
determine which state a DT is expected to be in. For example, every DT
refresh emits heartbeats as long as it is running, and we have a
background service that confirms that every DT that is in the EXECUTING
state sent a heartbeat recently."

Two pieces:

* :class:`LivenessMonitor` — tracks refresh execution states, collects
  heartbeats, and flags EXECUTING refreshes whose last heartbeat is stale
  (the "background service");
* :func:`slo_report` — splits observed lag violations between the
  **system's** responsibility (a refresh was never scheduled when due) and
  the **customer's** (refreshes ran but the query/data/warehouse made
  them too slow — the paper: "Users must ensure that the target lag
  requirement is achievable").
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.core.dynamic_table import DynamicTable, RefreshAction
from repro.scheduler.metrics import peak_lags, successful_refreshes
from repro.util.timeutil import Duration, SECOND, Timestamp


class RefreshState(enum.Enum):
    SCHEDULED = "scheduled"
    EXECUTING = "executing"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    SKIPPED = "skipped"


@dataclass
class ExecutionTrace:
    """The monitor's view of one refresh execution."""

    dt_name: str
    data_timestamp: Timestamp
    state: RefreshState = RefreshState.SCHEDULED
    started_at: Timestamp = 0
    last_heartbeat: Timestamp = 0
    ended_at: Timestamp = 0


@dataclass(frozen=True)
class LivenessViolation:
    """An EXECUTING refresh without a recent heartbeat — the signal that
    pages the on-call in the paper's operation."""

    dt_name: str
    data_timestamp: Timestamp
    last_heartbeat: Timestamp
    detected_at: Timestamp

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        silent = (self.detected_at - self.last_heartbeat) / SECOND
        return (f"LivenessViolation({self.dt_name!r}, silent for "
                f"{silent:.0f}s)")


class LivenessMonitor:
    """Heartbeat collection plus the background staleness check.

    Thread-safe: under DAG-parallel refresh, heartbeats arrive from
    coordinator workers while the background :meth:`check` iterates the
    EXECUTING set from another thread — unguarded, the iteration would
    race the begin/end mutations (``RuntimeError: dictionary changed
    size during iteration``) or observe half-updated traces. One mutex
    covers every access to the executing map and the history list.
    """

    #: How often an executing refresh emits heartbeats.
    HEARTBEAT_INTERVAL: Duration = 10 * SECOND
    #: How stale a heartbeat may be before the refresh counts as stuck.
    STALENESS_THRESHOLD: Duration = 30 * SECOND

    def __init__(self):
        self._executing: dict[str, ExecutionTrace] = {}
        self.history: list[ExecutionTrace] = []
        self._mutex = threading.Lock()

    # -- lifecycle hooks -----------------------------------------------------------

    def begin(self, dt_name: str, data_timestamp: Timestamp,
              started_at: Timestamp) -> ExecutionTrace:
        trace = ExecutionTrace(dt_name, data_timestamp,
                               RefreshState.EXECUTING, started_at,
                               last_heartbeat=started_at)
        with self._mutex:
            self._executing[dt_name] = trace
            self.history.append(trace)
        return trace

    def heartbeat(self, dt_name: str, time: Timestamp) -> None:
        with self._mutex:
            trace = self._executing.get(dt_name)
            if trace is not None:
                trace.last_heartbeat = max(trace.last_heartbeat, time)

    def end(self, dt_name: str, time: Timestamp, succeeded: bool) -> None:
        with self._mutex:
            trace = self._executing.pop(dt_name, None)
            if trace is None:
                return
            trace.state = (RefreshState.SUCCEEDED if succeeded
                           else RefreshState.FAILED)
            trace.ended_at = time

    def simulate_heartbeats(self, dt_name: str, start: Timestamp,
                            end: Timestamp) -> None:
        """Emit the heartbeats a refresh occupying [start, end] would have
        sent (used by the discrete-event scheduler, which computes the
        whole interval at once)."""
        time = start
        while time <= end:
            self.heartbeat(dt_name, time)
            time += self.HEARTBEAT_INTERVAL

    # -- the background check --------------------------------------------------------

    def executing(self) -> list[ExecutionTrace]:
        with self._mutex:
            return list(self._executing.values())

    def check(self, now: Timestamp) -> list[LivenessViolation]:
        """The background service: every EXECUTING refresh must have sent
        a heartbeat within the staleness threshold."""
        violations = []
        with self._mutex:
            for trace in self._executing.values():
                if now - trace.last_heartbeat > self.STALENESS_THRESHOLD:
                    violations.append(LivenessViolation(
                        trace.dt_name, trace.data_timestamp,
                        trace.last_heartbeat, now))
        return violations


@dataclass
class SloEntry:
    """One DT's SLO accounting over an observation window."""

    dt_name: str
    target_lag: Duration | None
    refreshes: int
    failures: int
    skips: int
    max_peak_lag: Duration | None
    within_lag: bool
    #: Who owns the violation, if any: "system" when refreshes were not
    #: attempted when due; "customer" when they ran but were too slow or
    #: failed on user errors; None when within the target.
    responsibility: str | None


@dataclass(frozen=True)
class StalenessEntry:
    """One DT that is (or risks going) stale because of failures —
    its own, or a failing upstream it is skipping behind. Graceful
    degradation per section 3.3.3: the DT keeps serving ``serving``
    (its last refreshed data timestamp); ``lag`` is how far behind
    ``now`` that leaves readers."""

    dt_name: str
    #: "suspended", "failing", or "upstream-failed".
    cause: str
    #: Last data timestamp with readable data (None: never refreshed).
    serving: Timestamp | None
    #: now - serving (None when never refreshed).
    lag: Duration | None
    detail: str


def staleness_report(dts: list[DynamicTable],
                     now: Timestamp) -> list[StalenessEntry]:
    """Which DTs are serving stale data because of failures, and why.

    Covers the three §3.3.3 degradation states: auto-/manually suspended
    DTs, DTs whose most recent attempt failed (mid-retry-window), and
    DTs skipping behind a failed upstream (``SKIPPED_UPSTREAM_FAILED``).
    Healthy DTs produce no entry.
    """
    entries: list[StalenessEntry] = []
    for dt in dts:
        serving = dt.data_timestamp
        lag = (now - serving) if serving is not None else None
        last = dt.refresh_history[-1] if dt.refresh_history else None
        if dt.suspended:
            entries.append(StalenessEntry(
                dt.name, "suspended", serving, lag,
                dt.suspended_reason or "suspended"))
        elif last is not None and last.error is not None:
            entries.append(StalenessEntry(
                dt.name, "failing", serving, lag,
                f"{dt.consecutive_failures} consecutive failure(s); "
                f"last: {last.error}"))
        elif (last is not None
              and last.action is RefreshAction.SKIPPED_UPSTREAM_FAILED):
            entries.append(StalenessEntry(
                dt.name, "upstream-failed", serving, lag,
                "skipping behind a failed upstream"))
    return entries


def slo_report(dts: list[DynamicTable]) -> list[SloEntry]:
    """Attribute lag compliance per DT (section 6.2's split)."""
    entries = []
    for dt in dts:
        target = (dt.target_lag.duration
                  if not dt.target_lag.is_downstream else None)
        refreshes = successful_refreshes(dt)
        failures = [r for r in dt.refresh_history if r.error is not None]
        skips = [r for r in dt.refresh_history if r.skipped]
        peaks = peak_lags(dt)
        max_peak = max(peaks) if peaks else None

        within = bool(target is None or max_peak is None
                      or max_peak <= target)
        responsibility: str | None = None
        if not within:
            # Refreshes were attempted at every due tick (skips count as
            # attempts): the lag violation traces to refresh duration or
            # user errors — customer-controlled inputs. A complete absence
            # of attempts would be the system's fault.
            attempted = len(refreshes) + len(failures) + len(skips)
            responsibility = "customer" if attempted > 0 else "system"
        entries.append(SloEntry(
            dt_name=dt.name, target_lag=target, refreshes=len(refreshes),
            failures=len(failures), skips=len(skips),
            max_peak_lag=max_peak, within_lag=within,
            responsibility=responsibility))
    return entries
