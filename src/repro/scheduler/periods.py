"""Canonical refresh periods (section 5.2 of the paper).

"We define a set of canonical refresh periods as 48·2^n seconds, for
integers n. When deciding upon the refresh period for a DT, we choose from
this set of canonical periods to try to keep each DT within its target
lag. We also ensure that the choice of refresh period for each DT is
greater than or equal to those upstream. Because powers of two are all
multiples of each other and we choose a constant phase for each customer,
the data timestamps of different DTs are guaranteed to align, even if they
have different target lags."

The safety margin built into :func:`choose_period` reflects the lag
algebra of Figure 4: staying under target lag ``t`` requires
``p + w + d < t``, so the period must leave headroom for the waiting time
``w`` and refresh duration ``d``. We budget half the target lag for
``w + d``, i.e. pick the largest canonical period ≤ t/2 — which also
reproduces the user-visible surprise the paper mentions ("the refresh
period Snowflake chooses can be substantially smaller than the provided
target lag").
"""

from __future__ import annotations

from repro.util.timeutil import Duration, SECOND

#: The canonical base: 48 seconds.
BASE_PERIOD: Duration = 48 * SECOND

#: Largest exponent we will ever choose (48·2^14 s ≈ 9.1 days).
MAX_EXPONENT = 14


def canonical_periods() -> list[Duration]:
    """All canonical periods, ascending: 48, 96, 192, ... seconds."""
    return [BASE_PERIOD * (1 << exponent)
            for exponent in range(MAX_EXPONENT + 1)]


def choose_period(target_lag: Duration,
                  headroom_fraction: float = 0.5) -> Duration:
    """The refresh period for a target lag: the largest canonical period
    ≤ ``target_lag × headroom_fraction`` (at least the base period)."""
    budget = int(target_lag * headroom_fraction)
    period = BASE_PERIOD
    for candidate in canonical_periods():
        if candidate <= budget:
            period = candidate
        else:
            break
    return period


def clamp_to_upstream(period: Duration, upstream_periods: list[Duration],
                      ) -> Duration:
    """Enforce the upstream constraint: a DT's period must be ≥ every
    upstream DT's period (so downstream ticks are a subset of upstream
    ticks and data timestamps align)."""
    if not upstream_periods:
        return period
    return max(period, max(upstream_periods))


def is_tick(time: int, period: Duration, phase: int = 0) -> bool:
    """Whether ``time`` is a refresh tick for ``period`` under the
    account's constant ``phase``."""
    return (time - phase) % period == 0


def next_tick(time: int, period: Duration, phase: int = 0) -> int:
    """The first tick strictly after ``time``."""
    elapsed = (time - phase) % period
    return time + (period - elapsed)
