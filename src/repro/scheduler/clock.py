"""The simulation clock.

The paper's system runs against wall-clock time; the reproduction runs
against a :class:`SimClock` — a monotone nanosecond counter advanced by the
discrete-event scheduler. Everything that needs "now" (the HLC, the
catalog's DDL log, lag measurement) takes the clock's ``now`` callable, so
tests can drive time explicitly.
"""

from __future__ import annotations

from repro.errors import InternalError
from repro.util.timeutil import Duration, Timestamp, format_timestamp


class SimClock:
    """A manually advanced monotone clock."""

    def __init__(self, start: Timestamp = 0):
        self._now: Timestamp = start

    def now(self) -> Timestamp:
        return self._now

    def advance(self, duration: Duration) -> Timestamp:
        if duration < 0:
            raise InternalError("cannot advance the clock backwards")
        self._now += duration
        return self._now

    def advance_to(self, timestamp: Timestamp) -> Timestamp:
        if timestamp < self._now:
            raise InternalError(
                f"cannot move clock backwards: {format_timestamp(timestamp)} "
                f"< {format_timestamp(self._now)}")
        self._now = timestamp
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock({format_timestamp(self._now)})"
