"""The parallel refresh coordinator: DAG-concurrent refreshes in waves.

The scheduler's topological order over-serializes a tick: it constrains
*dependent* DTs only, yet the serial loop runs every due DT one after
another. This module supplies the concurrency the dependency graph
actually permits (section 5.2's w_i ≥ max(w_j + d_j) constrains nothing
between independent DTs):

* :func:`dependency_waves` partitions a tick's due DTs into **waves** —
  wave 0 holds due DTs with no due upstream, wave k holds DTs whose
  deepest due upstream sits in wave k-1. DTs within one wave are
  pairwise independent *for this tick*: no refresh in a wave reads a
  table another refresh in the same wave writes;
* :class:`ParallelRefreshCoordinator` executes one wave's refreshes
  concurrently on a real thread pool. Commits serialize behind the
  transaction manager's commit mutex and each refresh holds its DT's
  table lock for its whole duration, so concurrent refreshes are safe —
  and because every refresh pins its exact source versions, the
  resulting table states are byte-identical to the serial loop's.

The coordinator returns each wave's refresh records **in submission
order**; all scheduling bookkeeping (modeled timing, skip accounting,
liveness) stays on the driving thread.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.dynamic_table import DynamicTable, RefreshRecord
from repro.core.graph import DependencyGraph
from repro.core.refresh import RefreshEngine
from repro.util.parallel import WorkerPool
from repro.util.timeutil import Timestamp


def dependency_waves(due: Sequence[DynamicTable], graph: DependencyGraph,
                     ) -> list[list[DynamicTable]]:
    """Partition ``due`` (which must be in topological order) into
    dependency waves: ``wave(dt) = 1 + max(wave of its due upstreams)``,
    0 when none. Upstream DTs that are *not* due this tick impose no
    ordering — they do not refresh, so their versions are fixed for the
    whole tick."""
    wave_of: dict[str, int] = {}
    waves: list[list[DynamicTable]] = []
    for dt in due:
        wave = 0
        for upstream in graph.upstream_dts(dt.name):
            upstream_wave = wave_of.get(upstream.name)
            if upstream_wave is not None:
                wave = max(wave, upstream_wave + 1)
        wave_of[dt.name] = wave
        if wave == len(waves):
            waves.append([])
        waves[wave].append(dt)
    return waves


class ParallelRefreshCoordinator:
    """Runs one wave of independent refreshes concurrently.

    Owns the DAG-level :class:`WorkerPool` — deliberately distinct from
    the engine's partition pool, so a refresh running *on* a DAG worker
    that fans partition work out can never wait on the pool it occupies.
    """

    def __init__(self, engine: RefreshEngine, workers: int):
        self.engine = engine
        self.workers = workers
        self.pool = WorkerPool(workers, name="repro-refresh")

    def refresh_wave(self, jobs: Sequence[tuple[DynamicTable, Timestamp]],
                     ) -> list[RefreshRecord]:
        """Refresh every ``(dt, refresh_ts)`` job concurrently; records
        return in job order. ``engine.refresh`` never raises — failures
        come back as error records — but the worker *task itself* can
        still die (a crashed pool thread, an injected ``worker.task``
        fault). ``return_exceptions`` confines such a crash to its own
        job: the coordinator synthesizes an error record for it, counted
        against the DT like any refresh failure, and the rest of the
        wave completes normally."""
        results = self.pool.map_ordered(
            lambda job: self.engine.refresh(job[0], job[1]), jobs,
            return_exceptions=True)
        records: list[RefreshRecord] = []
        for (dt, refresh_ts), result in zip(jobs, results):
            if isinstance(result, BaseException):
                record = RefreshRecord(
                    data_timestamp=refresh_ts,
                    error=f"{type(result).__name__}: {result}")
                dt.record_refresh(record)
                records.append(record)
            else:
                records.append(result)
        return records

    def close(self) -> None:
        self.pool.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelRefreshCoordinator(workers={self.workers})"
