"""Lag measurement: the sawtooth of Figure 4.

Section 5.2 of the paper: "Given a sequence of refreshes, the lag is a
sawtooth that rises at a constant rate of 1 second per second. ... The lag
at a trough is the end time of that refresh minus its data timestamp. For
example, for refresh 1, the trough lag is e₁ − v₁. The lag at a peak is
the end time of that refresh minus the data timestamp of the preceding
refresh. For example, for refresh 1, the peak lag is e₁ − v₀."

This module converts a DT's refresh history into the sawtooth series, the
peak/trough statistics, and the peak-lag decomposition ``p + w + d``
(period + wait + duration) that drives the scheduling discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dynamic_table import DynamicTable, RefreshRecord
from repro.util.timeutil import Duration, Timestamp


@dataclass(frozen=True)
class SawtoothPoint:
    """One vertex of the lag-over-time sawtooth."""

    time: Timestamp
    lag: Duration
    kind: str  # "peak" | "trough" | "start"


@dataclass(frozen=True)
class PeakDecomposition:
    """The p + w + d split of one refresh's peak lag (section 5.2).

    ``p`` — the interval between adjacent data timestamps;
    ``w`` — waiting time between the data timestamp and the start;
    ``d`` — the refresh duration. Peak lag = p + w + d.
    """

    data_timestamp: Timestamp
    p: Duration
    w: Duration
    d: Duration

    @property
    def peak_lag(self) -> Duration:
        return self.p + self.w + self.d


def successful_refreshes(dt: DynamicTable) -> list[RefreshRecord]:
    return [record for record in dt.refresh_history if record.succeeded]


def sawtooth(dt: DynamicTable) -> list[SawtoothPoint]:
    """The lag sawtooth: at each refresh commit the lag drops from its
    peak (e_i − v_{i−1}) to its trough (e_i − v_i); between commits it
    rises at 1 s/s (so only the vertices are materialized)."""
    records = successful_refreshes(dt)
    points: list[SawtoothPoint] = []
    for index, record in enumerate(records):
        if index == 0:
            points.append(SawtoothPoint(
                record.end_wall, record.end_wall - record.data_timestamp,
                "start"))
            continue
        previous = records[index - 1]
        peak = record.end_wall - previous.data_timestamp
        trough = record.end_wall - record.data_timestamp
        points.append(SawtoothPoint(record.end_wall, peak, "peak"))
        points.append(SawtoothPoint(record.end_wall, trough, "trough"))
    return points


def peak_lags(dt: DynamicTable) -> list[Duration]:
    records = successful_refreshes(dt)
    return [record.end_wall - previous.data_timestamp
            for previous, record in zip(records, records[1:])]


def trough_lags(dt: DynamicTable) -> list[Duration]:
    return [record.end_wall - record.data_timestamp
            for record in successful_refreshes(dt)]


def decompose_peaks(dt: DynamicTable) -> list[PeakDecomposition]:
    """Split each peak lag into p + w + d (section 5.2)."""
    records = successful_refreshes(dt)
    decompositions: list[PeakDecomposition] = []
    for previous, record in zip(records, records[1:]):
        p = record.data_timestamp - previous.data_timestamp
        w = record.start_wall - record.data_timestamp
        d = record.end_wall - record.start_wall
        decompositions.append(PeakDecomposition(record.data_timestamp, p, w, d))
    return decompositions


def lag_at(dt: DynamicTable, time: Timestamp) -> Duration | None:
    """The DT's lag at an arbitrary time, from its refresh history: time
    minus the data timestamp of the latest refresh committed by then."""
    committed = [record for record in successful_refreshes(dt)
                 if record.end_wall <= time]
    if not committed:
        return None
    return time - committed[-1].data_timestamp


def fraction_within_target(dt: DynamicTable, target: Duration,
                           start: Timestamp, end: Timestamp,
                           samples: int = 1000) -> float:
    """Fraction of [start, end] during which the DT's lag ≤ target
    (sampled; used by the scheduling benchmark's SLO-style report)."""
    if end <= start:
        return 0.0
    within = 0
    total = 0
    step = max((end - start) // samples, 1)
    time = start
    while time <= end:
        lag = lag_at(dt, time)
        if lag is not None:
            total += 1
            if lag <= target:
                within += 1
        time += step
    if total == 0:
        return 0.0
    return within / total
