"""The refresh cost model.

Section 3.3.2 of the paper communicates refresh cost to users as "fixed
and variable costs. Generally, more complex queries have larger costs
(both fixed and variable), and variable costs scale linearly with the
amount of changed data in the sources." Full refreshes "behave in a
straightforward way, with cost similar to computing the result of the
defining query."

The simulation turns a completed :class:`RefreshRecord`'s work counters
into a duration:

* ``NO_DATA`` — control-plane-only constant; **zero** warehouse time
  (section 5.4: "This uses negligible resources and zero Virtual
  Warehouse compute");
* full-recompute actions (FULL / INITIAL / REINITIALIZE) — fixed cost +
  per-row scan cost over the sources + per-row write cost;
* ``INCREMENTAL`` — fixed cost + per-row costs over the *delta* and the
  endpoint rows the derivative rules had to materialize.

Durations divide by the warehouse size (bigger warehouses are faster),
capped at a parallel-efficiency floor. The benchmark harness uses this
model for the scheduling/skip/crossover experiments; the pure-algorithm
benchmarks (t2/t7/t8) measure actual Python runtime instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dynamic_table import RefreshAction, RefreshRecord
from repro.util.timeutil import Duration, MICROSECOND, MILLISECOND, SECOND


@dataclass(frozen=True)
class CostModel:
    """Tunable knobs of the refresh duration model."""

    #: Per-refresh fixed cost: compilation, version resolution, commit.
    fixed_cost: Duration = 2 * SECOND
    #: Cost to scan one source row during a full recompute.
    per_source_row: Duration = 50 * MICROSECOND
    #: Cost to process one delta row during an incremental refresh.
    per_delta_row: Duration = 100 * MICROSECOND
    #: Cost to materialize one endpoint row during an incremental refresh
    #: (the affected-key rules evaluate sub-plans at the endpoints).
    per_endpoint_row: Duration = 25 * MICROSECOND
    #: Cost to write one output row into the DT.
    per_output_row: Duration = 20 * MICROSECOND
    #: NO_DATA control-plane cost (no warehouse involvement).
    no_data_cost: Duration = 50 * MILLISECOND

    def duration_of(self, record: RefreshRecord,
                    warehouse_size: int = 1) -> Duration:
        """Simulated execution duration for a completed refresh record."""
        if record.action == RefreshAction.NO_DATA:
            return self.no_data_cost
        if record.action == RefreshAction.INCREMENTAL:
            stats = record.ivm_stats
            delta_rows = record.rows_changed
            endpoint_rows = stats.endpoint_rows if stats is not None else 0
            delta_in = stats.delta_rows_in if stats is not None else 0
            work = (self.per_delta_row * (delta_rows + delta_in)
                    + self.per_endpoint_row * endpoint_rows
                    + self.per_output_row * record.rows_inserted)
        else:
            work = (self.per_source_row * record.source_rows_scanned
                    + self.per_output_row * record.rows_inserted)
        scaled = work // max(warehouse_size, 1)
        return self.fixed_cost + scaled

    def uses_warehouse(self, record: RefreshRecord) -> bool:
        """NO_DATA refreshes consume zero virtual-warehouse compute."""
        return record.action != RefreshAction.NO_DATA
