"""Virtual warehouses (section 3.3.1 of the paper).

"Snowflake provides a catalog entity called a Virtual Warehouse, which
represents a cluster of nodes that can execute queries. Snowflake charges
for the time a virtual warehouse is active at a granularity of seconds.
Virtual warehouses can be started, suspended, and resized on demand, and
support automatic suspension when inactive."

The simulation models a warehouse as a bank of ``size`` execution slots:

* a job occupies one slot for its simulated duration; if all slots are
  busy, the job queues behind the earliest-finishing slot;
* the warehouse auto-resumes when work arrives and auto-suspends after
  ``auto_suspend`` of inactivity;
* **credits** accrue per active second × size, rounded up to whole
  seconds per activity burst — which is what makes co-locating related
  DTs in one warehouse cheaper than spreading them out (the pattern the
  paper calls out), and what the adoption benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CatalogError
from repro.util.timeutil import Duration, MINUTE, SECOND, Timestamp


@dataclass
class ActivityInterval:
    start: Timestamp
    end: Timestamp


class Warehouse:
    """A simulated virtual warehouse."""

    def __init__(self, name: str, size: int = 1,
                 auto_suspend: Optional[Duration] = MINUTE):
        if size < 1:
            raise CatalogError("warehouse size must be at least 1")
        self.name = name
        self.size = size
        self.auto_suspend = auto_suspend
        #: Next-free time per slot.
        self._slots: list[Timestamp] = [0] * size
        self._activity: list[ActivityInterval] = []

    # -- execution ----------------------------------------------------------------

    def submit(self, arrival: Timestamp, duration: Duration,
               ) -> tuple[Timestamp, Timestamp]:
        """Run a job arriving at ``arrival`` for ``duration``; returns the
        (start, end) it actually occupies, after queueing."""
        slot_index = min(range(self.size), key=lambda index: self._slots[index])
        start = max(arrival, self._slots[slot_index])
        end = start + duration
        self._slots[slot_index] = end
        self._record_activity(start, end)
        return start, end

    def next_free(self, arrival: Timestamp) -> Timestamp:
        """When a job arriving at ``arrival`` could start."""
        return max(arrival, min(self._slots))

    def _record_activity(self, start: Timestamp, end: Timestamp) -> None:
        # Merge with the previous burst when the gap is inside the
        # auto-suspend window (the warehouse never went to sleep).
        if self._activity:
            last = self._activity[-1]
            gap_limit = self.auto_suspend if self.auto_suspend is not None else None
            if start <= last.end or (
                    gap_limit is not None and start - last.end <= gap_limit):
                last.end = max(last.end, end)
                return
        self._activity.append(ActivityInterval(start, end))

    # -- accounting -----------------------------------------------------------------

    def active_time(self) -> Duration:
        """Total simulated time the warehouse was awake.

        When auto-suspend is configured, each activity burst is extended
        by the auto-suspend window (the warehouse idles before sleeping),
        matching how Snowflake bills trailing idle time.
        """
        idle_tail = self.auto_suspend if self.auto_suspend is not None else 0
        return sum(interval.end - interval.start + idle_tail
                   for interval in self._activity)

    def credits_used(self) -> float:
        """Credits: active warehouse-seconds × size (1 credit ≡ one node
        active for one second, billed per second as in section 3.3.1)."""
        return self.active_time() / SECOND * self.size

    def is_active_at(self, time: Timestamp) -> bool:
        idle_tail = self.auto_suspend if self.auto_suspend is not None else 0
        return any(interval.start <= time <= interval.end + idle_tail
                   for interval in self._activity)

    def utilization(self, horizon: Duration) -> float:
        """Busy slot-time / (size × horizon)."""
        if horizon <= 0:
            return 0.0
        busy = sum(interval.end - interval.start for interval in self._activity)
        return busy / (self.size * horizon)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Warehouse({self.name!r}, size={self.size})"


class WarehousePool:
    """The account's warehouses, by name."""

    def __init__(self):
        self._warehouses: dict[str, Warehouse] = {}

    def create(self, name: str, size: int = 1,
               auto_suspend: Optional[Duration] = MINUTE) -> Warehouse:
        if name in self._warehouses:
            raise CatalogError(f"warehouse {name!r} already exists")
        warehouse = Warehouse(name, size, auto_suspend)
        self._warehouses[name] = warehouse
        return warehouse

    def get(self, name: str) -> Warehouse:
        warehouse = self._warehouses.get(name)
        if warehouse is None:
            raise CatalogError(f"unknown warehouse: {name}")
        return warehouse

    def exists(self, name: str) -> bool:
        return name in self._warehouses

    def all(self) -> list[Warehouse]:
        return list(self._warehouses.values())
