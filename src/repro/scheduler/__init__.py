"""Scheduling: the sim clock, canonical periods, warehouses, metrics."""

from repro.scheduler.clock import SimClock
from repro.scheduler.cost import CostModel
from repro.scheduler.scheduler import Scheduler, SchedulerReport
from repro.scheduler.warehouse import Warehouse, WarehousePool

__all__ = ["CostModel", "Scheduler", "SchedulerReport", "SimClock",
           "Warehouse", "WarehousePool"]
