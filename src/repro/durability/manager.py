"""The durability manager: one object wiring WAL, checkpoints, and
recovery into a :class:`~repro.api.database.Database`.

Lifecycle: ``Database(path=...)`` constructs a manager and calls
:meth:`DurabilityManager.open`, which (1) runs crash recovery against
the directory — newest valid checkpoint, then WAL replay past it — and
(2) opens the WAL for append, continuing the pre-crash record sequence.
Only *after* ``open`` returns does the database attach the manager to
the catalog and transaction manager, so replayed operations are never
re-logged.

Logging discipline (enforced by ``tools/lint_engine.py``):

* commit records are appended by :meth:`log_commit` from inside the
  transaction manager's commit mutex — WAL order equals commit order;
* DDL records are appended from inside the catalog mutex (catalog
  hooks) or the commit mutex (database-level operations: clones,
  recluster), so WAL order equals DDL-log order.

Checkpoints take both mutexes (commit first, then catalog — the same
order the cloning path uses), write the snapshot to a temp file,
atomically install it, and truncate the WAL. A crash between install
and truncate is harmless: record sequence numbers survive truncation,
and replay skips records the checkpoint already covers.

Checkpointing must never be triggered from inside a catalog or commit
hook (the mutexes are not reentrant); the three triggers — explicit
``Database.checkpoint()``, the WAL-size threshold via
``maybe_checkpoint`` (the server calls it after each commit, outside
the mutex), and the background simulated-time tick — all run outside
the critical sections.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Optional

from repro.durability import checkpoint as ckpt
from repro.durability import codec
from repro.durability.recovery import (RecoveryReport, WAL_FILENAME,
                                       recover)
from repro.durability.wal import WriteAheadLog
from repro.errors import DurabilityError, InjectedFault, UserError
from repro.faults import inject

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.database import Database
    from repro.core.dynamic_table import DynamicTable
    from repro.core.frontier import Frontier
    from repro.storage.table import StagedWrite
    from repro.txn.hlc import HlcTimestamp

#: Checkpoint files kept after pruning (the newest plus one fallback).
KEEP_CHECKPOINTS = 2

_MISSING = object()


class DurabilityManager:
    """WAL + checkpoint + recovery coordination for one database."""

    def __init__(self, db: "Database", directory: str | os.PathLike,
                 fsync: bool = True,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_wal_bytes: Optional[int] = None,
                 keep_checkpoints: int = KEEP_CHECKPOINTS,
                 wal_failure_policy: str = "readonly"):
        if wal_failure_policy not in ("readonly", "continue"):
            raise UserError(
                f"unknown wal_failure_policy: {wal_failure_policy!r} "
                f"(expected 'readonly' or 'continue')")
        self.db = db
        self.directory = os.fspath(directory)
        self.fsync = fsync
        #: What a WAL write failure escalates to: ``"readonly"`` (the
        #: default) fails the commit and refuses every later write until
        #: :meth:`exit_degraded` — durability loss is never silent;
        #: ``"continue"`` logs the failure and keeps accepting writes,
        #: an explicit opt into running without durability.
        self.wal_failure_policy = wal_failure_policy
        #: Why the database is in degraded read-only mode (None = not).
        self.degraded: Optional[str] = None
        #: WAL write failures observed (both policies count them).
        self.wal_failures = 0
        #: Simulated-time interval of the background checkpointer
        #: (None = no background checkpoints).
        self.checkpoint_every = checkpoint_every
        #: WAL size (bytes) past which ``maybe_checkpoint`` checkpoints.
        self.checkpoint_wal_bytes = checkpoint_wal_bytes
        self.keep_checkpoints = keep_checkpoints
        self.wal: Optional[WriteAheadLog] = None
        self.recovery: Optional[RecoveryReport] = None
        self.last_checkpoint_seq = 0
        self.last_checkpoint_hlc: Optional["HlcTimestamp"] = None
        self.records_since_checkpoint = 0
        self.closed = False
        #: dt name -> aggregate-store interval token (``advanced_to``)
        #: whose accumulators the last checkpoint (or recovery) captured
        #: exactly. A live store that diverges from its token would be
        #: rebuilt if the engine restarted now — the RPR031 condition.
        self._checkpoint_agg: dict[str, object] = {}
        # Serializes explicit / threshold / background checkpoints.
        self._checkpoint_mutex = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def open(self) -> RecoveryReport:
        """Run recovery, then open the WAL for append."""
        os.makedirs(self.directory, exist_ok=True)
        report = recover(self.db, self.directory)
        self.recovery = report
        self.last_checkpoint_seq = report.checkpoint_seq
        self.last_checkpoint_hlc = report.checkpoint_hlc
        self.records_since_checkpoint = report.records_replayed
        self.wal = WriteAheadLog(os.path.join(self.directory, WAL_FILENAME),
                                 fsync=self.fsync,
                                 next_seq=report.next_wal_seq)
        self._note_agg_tokens()
        return report

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()
        self.closed = True

    # -- WAL records -------------------------------------------------------------

    def log_commit(self, ts: "HlcTimestamp",
                   writes: dict[str, "StagedWrite"],
                   refresh_meta: Optional[dict]) -> None:
        """Append one commit record. Called by ``Transaction.commit``
        *inside* the commit mutex, right after version installation, so
        the WAL orders commits exactly as they became visible."""
        assert self.wal is not None, "log_commit before open()"
        encoded_meta = None
        if refresh_meta is not None:
            encoded_meta = dict(refresh_meta,
                                action=refresh_meta["action"].value,
                                frontier=codec.encode(
                                    refresh_meta["frontier"]))
        self._append({
            "kind": "commit",
            "ts": codec.encode(ts),
            "writes": {name: codec.encode(write)
                       for name, write in sorted(writes.items())},
            "refresh": encoded_meta,
        })
        self.records_since_checkpoint += 1
        if encoded_meta is not None:
            name = encoded_meta["dt"]
            if encoded_meta["action"] == "no_data":
                # Replay re-runs note_no_data, which keeps checkpointed
                # accumulators valid — the token just moves with them.
                if name in self._checkpoint_agg:
                    self._checkpoint_agg[name] = encoded_meta["refresh_ts"]
            else:
                # A data-moving refresh after the checkpoint: replay
                # invalidates the store, so it is no longer covered.
                self._checkpoint_agg.pop(name, None)

    def log_ddl(self, ddl: str, data: dict, epoch: int) -> None:
        """Append one DDL record. Called from the catalog hooks (inside
        the catalog mutex) or database-level DDL (inside the commit
        mutex); ``epoch`` is the catalog epoch *after* the operation,
        which replay asserts to catch divergence early."""
        assert self.wal is not None, "log_ddl before open()"
        self._append({
            "kind": "ddl",
            "ddl": ddl,
            "wall": self.db.clock.now(),
            "epoch": epoch,
            "data": codec.encode(data),
        })
        # Advisory counter only (status reporting); the WAL mutex
        # serializes the appends themselves, and a lost increment can at
        # worst understate the status line.
        self.records_since_checkpoint += 1  # eng: allow-ENG104 (advisory)

    # -- WAL failure escalation ----------------------------------------------------

    def _append(self, payload: dict) -> None:
        """Append one record, escalating a write failure per the
        configured policy: ``"readonly"`` marks the database degraded
        and fails the caller (the in-flight commit/DDL raises before any
        in-memory state changed — the WAL is written *before* apply);
        ``"continue"`` records the loss and lets the caller proceed
        without durability for this record."""
        assert self.wal is not None
        try:
            self.wal.append(payload)
        except (OSError, InjectedFault) as exc:
            self.wal_failures += 1  # eng: allow-ENG104 (advisory)
            if self.wal_failure_policy == "readonly":
                # Written under the caller's serialization (commit mutex
                # for commits, catalog mutex for DDL); a racy unlocked
                # read in check_writable is fail-safe — it can only miss
                # the *newest* degradation for one in-flight commit,
                # whose own append then fails and re-marks it.
                self.degraded = (  # eng: allow-ENG104 (fail-safe flag)
                    f"{type(exc).__name__}: {exc}")
                raise DurabilityError(
                    f"WAL write failed ({exc}); the database is now in "
                    f"degraded read-only mode — reads keep serving the "
                    f"last durable state, writes are refused until "
                    f"exit_degraded()") from exc
            # "continue": an explicit opt into losing this record's
            # durability; status() reports the count.

    def check_writable(self) -> None:
        """Raise if the database is in degraded read-only mode. Called
        by ``Transaction.commit`` for write transactions (reads never
        pass through here)."""
        if self.degraded is not None:
            raise DurabilityError(
                f"database is in degraded read-only mode "
                f"({self.degraded}); writes are refused — call "
                f"exit_degraded() once the storage fault is resolved")

    def exit_degraded(self) -> None:
        """Leave degraded read-only mode (the operator action after the
        underlying storage fault is fixed)."""
        self.degraded = None

    # -- checkpoints ---------------------------------------------------------------

    def checkpoint(self) -> str:
        """Snapshot the database, install the checkpoint file, truncate
        the WAL behind it. Returns the checkpoint file's path."""
        assert self.wal is not None, "checkpoint before open()"
        with self._checkpoint_mutex:
            # Lock order matches the cloning path: commit mutex first,
            # then the catalog mutex.
            with self.db.txns.commit_mutex:
                with self.db.catalog._mutex:
                    seq = self.last_checkpoint_seq + 1
                    last_wal_seq = self.wal.next_seq - 1
                    snapshot = ckpt.snapshot_database(self.db, seq,
                                                      last_wal_seq)
                    # A failure here (real or injected) aborts the
                    # checkpoint *before* the WAL reset: the previous
                    # checkpoint and the full WAL stay intact, so no
                    # durable state is lost — the checkpoint simply
                    # didn't happen.
                    inject("checkpoint.write", seq=seq)
                    path = ckpt.write_checkpoint(self.directory, snapshot)
                    self.wal.reset()
                    self.last_checkpoint_seq = seq
                    self.last_checkpoint_hlc = self.db.txns.hlc.last
                    self.records_since_checkpoint = 0
                    self._note_agg_tokens()
            ckpt.prune_checkpoints(self.directory, self.keep_checkpoints)
            return path

    def maybe_checkpoint(self) -> bool:
        """Checkpoint iff the WAL has outgrown the configured threshold
        (the server calls this after every commit, outside the commit
        mutex)."""
        if (self.wal is None or self.closed
                or self.checkpoint_wal_bytes is None):
            return False
        if self.wal.position() < self.checkpoint_wal_bytes:
            return False
        self.checkpoint()
        return True

    # -- reporting -----------------------------------------------------------------

    def _note_agg_tokens(self) -> None:
        """Record, per DT, the interval token whose accumulator state is
        exactly captured on disk (just checkpointed) or parked for lazy
        restore (just recovered)."""
        tokens: dict[str, object] = {}
        for dt in self.db.dynamic_tables(include_hidden=True):
            store = dt.agg_state
            if store is None or store._dirty:
                continue
            if store._nodes and not ckpt.agg_store_serializable(store):
                continue
            if store._nodes or store._restored:
                tokens[dt.name] = store.advanced_to
        self._checkpoint_agg = tokens

    def agg_recovery_status(self, dt: "DynamicTable") -> Optional[str]:
        """``"intact"`` when a restart would restore the DT's aggregate
        accumulators exactly; ``"rebuild"`` when the next incremental
        refresh after a restart would reinitialize them; None when the
        DT carries no aggregate state at all."""
        store = dt.agg_state
        if store is None:
            return None
        token = self._checkpoint_agg.get(dt.name, _MISSING)
        if token is _MISSING or store._dirty or store.advanced_to != token:
            return "rebuild"
        return "intact"

    def status(self) -> dict:
        """Durability state for ``Database.durability_status`` and the
        EXPLAIN durability section."""
        report = self.recovery
        return {
            "directory": self.directory,
            "fsync": self.fsync,
            "degraded": self.degraded,
            "wal_failures": self.wal_failures,
            "wal_failure_policy": self.wal_failure_policy,
            "wal_bytes": self.wal.position() if self.wal is not None else 0,
            "next_wal_seq": (self.wal.next_seq
                             if self.wal is not None else 1),
            "records_since_checkpoint": self.records_since_checkpoint,
            "last_checkpoint_seq": self.last_checkpoint_seq,
            "last_checkpoint_hlc": self.last_checkpoint_hlc,
            "recovery": None if report is None else {
                "checkpoint_seq": report.checkpoint_seq,
                "records_replayed": report.records_replayed,
                "records_skipped": report.records_skipped,
                "torn_bytes": report.torn_bytes,
                "invalid_checkpoints": list(report.invalid_checkpoints),
            },
        }
