"""Checkpoints: point-in-time snapshots of the whole database.

A checkpoint file serializes, under the commit and catalog mutexes (so
it is a transactionally consistent cut):

* the micro-partitions — pooled by partition id across tables, so
  zero-copy clones that share partitions by reference keep sharing them
  after a restore (one stored copy, many referencing tables);
* every catalog entry (tables, views, dynamic tables) with its grants,
  entity id, generation, and dropped flag, plus the DDL log and the
  three catalog counters (ddl seq / table seq / entity id) whose
  continuity keeps row-id namespaces and query evolution's
  REINITIALIZE detection correct across a restart;
* per-DT state: defining query AST, frontier, refresh marker, and the
  aggregate accumulator store (:mod:`repro.ivm.aggstate`) — group keys,
  counts, and per-accumulator internals, restored lazily when the next
  refresh claims the node with a matching structural signature;
* the HLC and the simulated clock.

File layout (format version 1): one header line ``RPRCKPT1 <crc32>\\n``
followed by the JSON body; the CRC covers the body bytes, so a torn or
corrupted checkpoint is detected on load and recovery falls back to the
previous one. Files are written to a temp name and :func:`os.replace`d
into ``checkpoint-<seq>.ckpt``, so a crash mid-write never destroys an
older checkpoint. The compatibility rule matches the WAL's: format
version N files are read only by engines at format version N.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.dynamic_table import (DynamicTable, RefreshAction,
                                      RefreshRecord, apply_policy_options,
                                      policy_options)
from repro.durability import codec
from repro.engine.aggregates import (AvgAccumulator, CountAccumulator,
                                     CountIfAccumulator, CountStarAccumulator,
                                     DistinctAccumulator, ExtremeAccumulator,
                                     SumAccumulator, _extreme)
from repro.engine import types as t
from repro.errors import DurabilityError
from repro.ivm.aggstate import (AggregateNodeState, AggStateStore,
                                DistinctNodeState, _Group)
from repro.storage.catalog import Catalog, CatalogEntry
from repro.storage.partition import Partition
from repro.storage.table import VersionedTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.database import Database

CHECKPOINT_MAGIC = "RPRCKPT1"
FORMAT_VERSION = 1

#: Exact accumulator classes the checkpoint can serialize, with their
#: on-disk tags. ``make_accumulator`` must produce the same class for the
#: plan's call at restore time, or the node falls back to lazy
#: reinitialization.
_ACC_TAGS = {
    CountStarAccumulator: "count_star",
    CountAccumulator: "count",
    CountIfAccumulator: "count_if",
    SumAccumulator: "sum",
    AvgAccumulator: "avg",
    ExtremeAccumulator: "extreme",
    DistinctAccumulator: "distinct",
}


# ---------------------------------------------------------------------------
# Aggregate state
# ---------------------------------------------------------------------------

def _snapshot_accumulator(acc: Any) -> Optional[dict]:
    tag = _ACC_TAGS.get(type(acc))
    if tag is None:
        return None
    if tag in ("count_star", "count", "count_if"):
        return {"t": tag, "count": acc.count}
    if tag in ("sum", "avg"):
        return {"t": tag, "total": codec.encode(acc.total),
                "count": acc.count}
    if tag == "extreme":
        return {"t": tag, "want_max": acc.want_max,
                "counts": codec.encode(acc.counts)}
    return {"t": tag, "function": acc.function, "total": codec.encode(acc.total),
            "counts": codec.encode(acc.counts)}


def _restore_accumulator(acc: Any, snap: dict) -> bool:
    """Fill a freshly made accumulator from its snapshot; False when the
    snapshot does not match the accumulator the live plan asks for."""
    if _ACC_TAGS.get(type(acc)) != snap["t"]:
        return False
    tag = snap["t"]
    if tag in ("count_star", "count", "count_if"):
        acc.count = snap["count"]
    elif tag in ("sum", "avg"):
        acc.total = codec.decode(snap["total"])
        acc.count = snap["count"]
    elif tag == "extreme":
        if acc.want_max != snap["want_max"]:
            return False
        acc.counts = codec.decode(snap["counts"])
        acc.best = (_extreme(list(acc.counts), acc.want_max)
                    if acc.counts else None)
    else:  # distinct
        if acc.function != snap["function"]:
            return False
        acc.counts = codec.decode(snap["counts"])
        acc.total = codec.decode(snap["total"])
    return True


def _snapshot_node(kind: str, state: object) -> Optional[dict]:
    if kind == "Aggregate":
        assert isinstance(state, AggregateNodeState)
        groups = []
        for group in state.groups.values():
            accs = [_snapshot_accumulator(acc) for acc in group.accumulators]
            if any(acc is None for acc in accs):
                return None
            groups.append({"kv": codec.encode(tuple(group.key_values)),
                           "count": group.count, "accs": accs})
        return {"initialized": state.initialized, "groups": groups}
    assert isinstance(state, DistinctNodeState)
    return {"initialized": state.initialized,
            "rows": [[entry[0], codec.encode(tuple(entry[1]))]
                     for entry in state.rows.values()]}


def snapshot_agg_store(store: Optional[AggStateStore]) -> Optional[dict]:
    """Serialize a DT's aggregate state store; ``nodes`` is None when any
    node holds an accumulator shape the checkpoint cannot serialize (the
    store then restores metadata-only and nodes reinitialize lazily)."""
    if store is None:
        return None
    nodes: Optional[list] = []
    for (kind, sequence), state in store._nodes.items():
        snap = _snapshot_node(kind, state)
        if snap is None:
            nodes = None
            break
        assert isinstance(state, (AggregateNodeState, DistinctNodeState))
        nodes.append({"kind": kind, "sequence": sequence,
                      "signature": state.signature, "state": snap})
    return {"fingerprint": codec.encode(store.fingerprint),
            "advanced_to": codec.encode(store.advanced_to),
            "dirty": store._dirty,
            "invalidations": list(store.invalidations),
            "nodes": nodes}


def _hydrate_aggregate(snap: dict) -> Callable:
    def hydrate(plan: Any) -> Optional[AggregateNodeState]:
        state = AggregateNodeState(plan)
        for stored in snap["groups"]:
            if len(stored["accs"]) != len(plan.aggregates):
                return None
            accumulators = []
            from repro.engine.aggregates import make_accumulator
            for call, acc_snap in zip(plan.aggregates, stored["accs"]):
                acc = make_accumulator(call)
                if not _restore_accumulator(acc, acc_snap):
                    return None
                accumulators.append(acc)
            key_values = codec.decode(stored["kv"])
            group = _Group(key_values, accumulators)
            group.count = stored["count"]
            state.groups[t.group_key(key_values)] = group
        state.initialized = snap["initialized"]
        return state
    return hydrate


def _hydrate_distinct(snap: dict) -> Callable:
    def hydrate(plan: Any) -> Optional[DistinctNodeState]:
        state = DistinctNodeState(plan)
        for count, row in snap["rows"]:
            decoded = codec.decode(row)
            state.rows[t.group_key(decoded)] = [count, decoded]
        state.initialized = snap["initialized"]
        return state
    return hydrate


def restore_agg_store(snap: Optional[dict]) -> Optional[AggStateStore]:
    if snap is None:
        return None
    store = AggStateStore()
    store.fingerprint = codec.decode(snap["fingerprint"])
    store.advanced_to = codec.decode(snap["advanced_to"])
    store._dirty = snap["dirty"]
    store.invalidations = list(snap["invalidations"])
    if snap["nodes"] is None:
        store.invalidations.append(
            "checkpoint could not serialize accumulator state")
    else:
        for node in snap["nodes"]:
            hydrate = (_hydrate_aggregate(node["state"])
                       if node["kind"] == "Aggregate"
                       else _hydrate_distinct(node["state"]))
            store._restored[(node["kind"], node["sequence"])] = (
                node["signature"], hydrate)
    return store


def agg_store_serializable(store: Optional[AggStateStore]) -> bool:
    """Whether a checkpoint taken now would capture the store's
    accumulators exactly (vs. metadata-only)."""
    if store is None:
        return False
    return all(_snapshot_node(key[0], state) is not None
               for key, state in store._nodes.items())


# ---------------------------------------------------------------------------
# Catalog entries
# ---------------------------------------------------------------------------

def _snapshot_dt(dt: DynamicTable) -> dict:
    marker = None
    for record in reversed(dt.refresh_history):
        if record.succeeded:
            marker = {"data_timestamp": record.data_timestamp,
                      "action": record.action.value if record.action else None,
                      "table_rows_after": record.table_rows_after,
                      "frontier": codec.encode(record.frontier)}
            break
    return {
        "name": dt.name,
        "query_text": dt.query_text,
        "query": codec.encode(dt.query),
        "target_lag": codec.encode(dt.target_lag),
        "warehouse": dt.warehouse,
        "refresh_mode": dt.refresh_mode.value,
        "dependencies": codec.encode(dt.dependencies),
        "incremental_supported": dt.incremental_supported,
        "incremental_reasons": list(dt.incremental_reasons),
        "initialized": dt.initialized,
        "suspended": dt.suspended,
        "suspended_reason": dt.suspended_reason,
        "hidden": dt.hidden,
        "consecutive_failures": dt.consecutive_failures,
        "options": policy_options(dt),
        "frontier": codec.encode(dt.frontier),
        "table": codec.encode(dt.table.snapshot_state()),
        "last_refresh": marker,
        "agg_state": snapshot_agg_store(dt.agg_state),
    }


def _restore_dt(snap: dict, partitions: dict[int, Partition]) -> DynamicTable:
    from repro.core.dynamic_table import RefreshMode

    table = VersionedTable.from_snapshot(codec.decode(snap["table"]),
                                         partitions)
    dt = DynamicTable(
        snap["name"], snap["query_text"], codec.decode(snap["query"]),
        codec.decode(snap["target_lag"]), snap["warehouse"],
        RefreshMode(snap["refresh_mode"]), table,
        codec.decode(snap["dependencies"]),
        snap["incremental_supported"], list(snap["incremental_reasons"]))
    dt.initialized = snap["initialized"]
    dt.suspended = snap["suspended"]
    dt.suspended_reason = snap.get("suspended_reason")
    dt.hidden = snap["hidden"]
    dt.consecutive_failures = snap["consecutive_failures"]
    # ``.get``: checkpoints written before the failure-policy options
    # existed restore with the defaults.
    options = snap.get("options")
    if options:
        apply_policy_options(dt, options)
    dt.frontier = codec.decode(snap["frontier"])
    marker = snap["last_refresh"]
    if marker is not None:
        # One marker record stands in for the pre-crash history: the
        # manual-refresh fast path returns history[-1] when the frontier
        # already matches, and lag metrics read the latest record.
        action = (RefreshAction(marker["action"])
                  if marker["action"] is not None else None)
        dt.refresh_history.append(RefreshRecord(
            data_timestamp=marker["data_timestamp"], action=action,
            table_rows_after=marker["table_rows_after"],
            frontier=codec.decode(marker["frontier"])))
    dt.agg_state = restore_agg_store(snap["agg_state"])
    return dt


def _snapshot_entry(entry: CatalogEntry) -> dict:
    # ``CatalogEntry.payload`` is typed ``object`` (the union lives in a
    # comment); ``kind`` is the discriminant, so go through Any here.
    source: Any = entry.payload
    if entry.kind == "table":
        payload = {"type": "table",
                   "table": codec.encode(source.snapshot_state())}
    elif entry.kind == "view":
        payload = {"type": "view", "view": codec.encode(source)}
    else:
        payload = {"type": "dynamic table", "dt": _snapshot_dt(source)}
    return {
        "name": entry.name,
        "kind": entry.kind,
        "owner": entry.owner,
        "created_at": entry.created_at,
        "entity_id": entry.entity_id,
        "generation": entry.generation,
        "dropped": entry.dropped,
        "grants": [[privilege, sorted(roles)]
                   for privilege, roles in sorted(entry.grants.items())],
        "payload": payload,
    }


def _restore_entry(snap: dict, partitions: dict[int, Partition],
                   ) -> CatalogEntry:
    payload_snap = snap["payload"]
    payload: object
    if payload_snap["type"] == "table":
        payload = VersionedTable.from_snapshot(
            codec.decode(payload_snap["table"]), partitions)
    elif payload_snap["type"] == "view":
        payload = codec.decode(payload_snap["view"])
    else:
        payload = _restore_dt(payload_snap["dt"], partitions)
    return CatalogEntry(
        name=snap["name"], kind=snap["kind"], payload=payload,
        owner=snap["owner"], created_at=snap["created_at"],
        entity_id=snap["entity_id"], generation=snap["generation"],
        dropped=snap["dropped"],
        grants={privilege: set(roles) for privilege, roles in snap["grants"]})


# ---------------------------------------------------------------------------
# Whole-database snapshot
# ---------------------------------------------------------------------------

def snapshot_database(db: "Database", checkpoint_seq: int,
                      last_wal_seq: int) -> dict:
    """Serialize the database. Callers must hold the commit mutex and the
    catalog mutex — the snapshot must not interleave with a commit's
    version installation or a DDL operation."""
    catalog: Catalog = db.catalog
    # Pool partitions by id: clones share Partition objects, and the
    # shared id is exactly what snapshot_state records per table.
    pool: dict[int, Partition] = {}
    for entry in catalog.entries(include_dropped=True):
        if entry.kind == "view":
            continue
        source: Any = entry.payload
        table = (source.table if entry.kind == "dynamic table"
                 else source)
        pool.update(table._partitions)
    partitions = {
        str(partition_id): {
            "row_ids": list(partition.row_ids),
            "columns": [codec.encode(list(column))
                        for column in partition.columns],
        }
        for partition_id, partition in sorted(pool.items())
    }
    ddl_seq, table_seq, entity_seq = catalog.counters()
    return {
        "format": FORMAT_VERSION,
        "checkpoint_seq": checkpoint_seq,
        "last_wal_seq": last_wal_seq,
        "clock": db.clock.now(),
        "hlc": codec.encode(db.txns.hlc.last),
        "catalog": {
            "ddl_seq": ddl_seq,
            "table_seq": table_seq,
            "entity_seq": entity_seq,
            "ddl_log": codec.encode(catalog.ddl_log),
            "entries": [_snapshot_entry(entry)
                        for entry in catalog._entries.values()],
        },
        # Warehouse definitions only: usage accounting (slots, activity,
        # credits) is simulation bookkeeping and is not durable.
        "warehouses": [{"name": wh.name, "size": wh.size,
                        "auto_suspend": wh.auto_suspend}
                       for wh in db.warehouses.all()],
        "partitions": partitions,
    }


def restore_database(db: "Database", snapshot: dict) -> None:
    """Load a snapshot into a freshly constructed database."""
    catalog: Catalog = db.catalog
    partitions: dict[int, Partition] = {}
    # Restore in ascending original-id order so the fresh process-local
    # ids preserve the originals' relative order (scan order, and thus
    # row order of full refreshes, stays deterministic across recovery).
    for key in sorted(snapshot["partitions"], key=int):
        stored = snapshot["partitions"][key]
        partitions[int(key)] = Partition.from_columns(
            tuple(stored["row_ids"]),
            tuple(tuple(codec.decode(column)) for column in stored["columns"]))
    cat = snapshot["catalog"]
    catalog.restore_counters(cat["ddl_seq"], cat["table_seq"],
                             cat["entity_seq"])
    catalog._ddl_log = codec.decode(cat["ddl_log"])
    catalog._entries = {}
    for entry_snap in cat["entries"]:
        entry = _restore_entry(entry_snap, partitions)
        catalog._entries[entry.name] = entry
    for stored in snapshot["warehouses"]:
        if not db.warehouses.exists(stored["name"]):
            db.warehouses.create(stored["name"], stored["size"],
                                 stored["auto_suspend"])
    if snapshot["clock"] > db.clock.now():
        db.clock.advance_to(snapshot["clock"])
    db.txns.hlc.observe(codec.decode(snapshot["hlc"]))


# ---------------------------------------------------------------------------
# Checkpoint files
# ---------------------------------------------------------------------------

def checkpoint_path(directory: str, seq: int) -> str:
    return os.path.join(directory, f"checkpoint-{seq:08d}.ckpt")


def write_checkpoint(directory: str, snapshot: dict) -> str:
    """Serialize, checksum, and atomically install a checkpoint file."""
    body = json.dumps(snapshot, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    header = f"{CHECKPOINT_MAGIC} {zlib.crc32(body):08x}\n".encode("ascii")
    path = checkpoint_path(directory, snapshot["checkpoint_seq"])
    temp = path + ".tmp"
    with open(temp, "wb") as handle:
        handle.write(header)
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    directory_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)
    return path


def load_checkpoint(path: str) -> dict:
    """Read and validate a checkpoint file."""
    with open(path, "rb") as handle:
        header = handle.readline()
        body = handle.read()
    parts = header.decode("ascii", errors="replace").split()
    if len(parts) != 2 or parts[0] != CHECKPOINT_MAGIC:
        raise DurabilityError(f"{path!r} is not a checkpoint file of "
                              f"format version {FORMAT_VERSION}")
    if f"{zlib.crc32(body):08x}" != parts[1]:
        raise DurabilityError(f"checkpoint {path!r} failed its checksum")
    snapshot: dict = json.loads(body.decode("utf-8"))
    if snapshot.get("format") != FORMAT_VERSION:
        raise DurabilityError(
            f"checkpoint {path!r} has unsupported format "
            f"{snapshot.get('format')!r} (this engine reads only "
            f"{FORMAT_VERSION})")
    return snapshot


def list_checkpoints(directory: str) -> list[tuple[int, str]]:
    """(seq, path) of every checkpoint file, newest first."""
    found: list[tuple[int, str]] = []
    for name in os.listdir(directory):
        if name.startswith("checkpoint-") and name.endswith(".ckpt"):
            try:
                seq = int(name[len("checkpoint-"):-len(".ckpt")])
            except ValueError:
                continue
            found.append((seq, os.path.join(directory, name)))
    found.sort(reverse=True)
    return found


def prune_checkpoints(directory: str, keep: int) -> None:
    for _seq, path in list_checkpoints(directory)[keep:]:
        os.unlink(path)
