"""The write-ahead log: an append-only file of framed JSON records.

On-disk layout (format version 1)::

    +--------------------------+
    | magic  "RPRWAL" 0x00 0x01|   8 bytes; last byte = format version
    +--------------------------+
    | len (u32 BE) | crc (u32) |   per record: payload length + CRC32
    | payload (UTF-8 JSON)     |
    +--------------------------+
    | ... more records ...     |

Every record carries a monotonically increasing ``seq`` (which survives
WAL truncation at checkpoints, so replay can skip records a checkpoint
already covers) and a ``kind`` dispatched by recovery. Records are
appended under the transaction manager's commit mutex (commit records)
or the catalog mutex (DDL records), so file order equals commit order.

**Fsync semantics**: with ``fsync=True`` (the default) every append is
flushed and fsynced before the commit returns — one fsync per committed
transaction, batching all of the transaction's rows. With ``fsync=False``
appends are flushed to the OS but not forced to stable storage: a
process crash loses nothing, a machine crash may lose the unsynced
suffix (which recovery then discards as a torn tail).

**Torn tails**: :func:`scan_wal` stops at the first record whose length
prefix overruns the file, whose checksum mismatches, or whose payload is
not valid JSON, and reports the byte offset of the last good record.
Opening the WAL for append truncates the file back to that offset, so a
partially written record from a crash mid-append never survives.

Compatibility rule: a WAL (or checkpoint) written by format version N is
only read by engines whose format version equals N — there is no
cross-version migration; bump the version byte whenever the record
schema or the codec allowlist changes incompatibly.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from typing import NamedTuple, Optional

from repro.errors import DurabilityError
from repro.faults import inject

#: File magic; the final byte is the on-disk format version.
WAL_MAGIC = b"RPRWAL\x00\x01"
FORMAT_VERSION = 1

_FRAME = struct.Struct(">II")  # (payload length, CRC32 of payload)


class WalRecord(NamedTuple):
    """One decoded WAL record plus the file offset just past it."""

    seq: int
    payload: dict
    end_offset: int


class WalScan(NamedTuple):
    """Result of scanning a WAL file."""

    records: list[WalRecord]
    good_end: int    # offset just past the last intact record
    file_size: int   # actual file size; > good_end means a torn tail


def scan_wal(path: str | os.PathLike) -> WalScan:
    """Read every intact record of a WAL file, stopping at the torn tail.

    Raises :class:`~repro.errors.DurabilityError` when the file exists
    but its header is not a supported WAL header (corruption at the head
    of the log is not recoverable, unlike a torn tail).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < len(WAL_MAGIC) or data[:len(WAL_MAGIC)] != WAL_MAGIC:
        raise DurabilityError(
            f"{os.fspath(path)!r} is not a WAL file of format version "
            f"{FORMAT_VERSION}")
    records: list[WalRecord] = []
    offset = len(WAL_MAGIC)
    good_end = offset
    size = len(data)
    while offset + _FRAME.size <= size:
        length, crc = _FRAME.unpack_from(data, offset)
        body_start = offset + _FRAME.size
        body_end = body_start + length
        if body_end > size:
            break  # torn tail: length prefix overruns the file
        body = data[body_start:body_end]
        if zlib.crc32(body) != crc:
            break  # torn tail: checksum mismatch
        try:
            payload = json.loads(body.decode("utf-8"))
            seq = payload["seq"]
        except (ValueError, KeyError, UnicodeDecodeError):
            break  # torn tail: undecodable payload
        offset = body_end
        good_end = offset
        records.append(WalRecord(seq, payload, good_end))
    return WalScan(records, good_end, size)


class WriteAheadLog:
    """Append side of the WAL. Opening truncates any torn tail left by a
    crash, then positions at the end of the last intact record."""

    def __init__(self, path: str | os.PathLike, fsync: bool = True,
                 next_seq: Optional[int] = None):
        self.path = os.fspath(path)
        self.fsync = fsync
        self._mutex = threading.Lock()
        if os.path.exists(self.path):
            scan = scan_wal(self.path)
            derived = scan.records[-1].seq + 1 if scan.records else 1
            self._handle = open(self.path, "r+b")
            if scan.file_size != scan.good_end:
                self._handle.truncate(scan.good_end)
            self._handle.seek(scan.good_end)
            self._position = scan.good_end
        else:
            derived = 1
            self._handle = open(self.path, "w+b")
            self._handle.write(WAL_MAGIC)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._position = len(WAL_MAGIC)
        # A checkpoint may have truncated the log while seq keeps
        # counting: the caller (recovery) knows the true next seq.
        self._next_seq = max(derived, next_seq or 1)

    def append(self, payload: dict) -> WalRecord:
        """Frame, write, and (optionally) fsync one record. The ``seq``
        key is assigned here; callers pass the rest of the payload.

        Failure discipline: if anything goes wrong after bytes started
        hitting the file — a real I/O error or an injected ``wal.torn``
        / ``wal.fsync`` fault — the append rolls the file back to the
        last good record and re-raises, so a *live* WAL never carries a
        torn frame. The one exception is a fault flagged ``leave_torn``:
        it simulates a crash mid-write, so the partial frame is flushed
        and deliberately left for recovery's torn-tail truncation.
        """
        with self._mutex:
            inject("wal.append", path=self.path)
            seq = self._next_seq
            payload = dict(payload, seq=seq)
            body = json.dumps(payload, separators=(",", ":"),
                              sort_keys=True).encode("utf-8")
            try:
                self._handle.write(_FRAME.pack(len(body), zlib.crc32(body)))
                inject("wal.torn", path=self.path, seq=seq)
                self._handle.write(body)
                self._handle.flush()
                inject("wal.fsync", path=self.path, seq=seq)
                if self.fsync:
                    os.fsync(self._handle.fileno())
            except BaseException as exc:
                if getattr(exc, "leave_torn", False):
                    # Simulated crash mid-append: surface the partial
                    # frame to the file so recovery sees a torn tail.
                    self._handle.flush()
                else:
                    try:
                        self._handle.truncate(self._position)
                        self._handle.seek(self._position)
                    except OSError:  # pragma: no cover - double fault
                        pass
                raise
            self._next_seq += 1
            self._position += _FRAME.size + len(body)
            return WalRecord(seq, payload, self._position)

    def position(self) -> int:
        """Current end-of-log byte offset (grows monotonically between
        resets; the crash-recovery property test keys snapshots on it)."""
        with self._mutex:
            return self._position

    @property
    def next_seq(self) -> int:
        with self._mutex:
            return self._next_seq

    def reset(self) -> None:
        """Truncate the log back to its header (after a checkpoint).
        Record sequence numbers keep counting across resets — replay uses
        them to skip records a checkpoint already covers, which makes a
        crash *between* checkpoint write and WAL reset harmless."""
        with self._mutex:
            self._handle.truncate(len(WAL_MAGIC))
            self._handle.seek(len(WAL_MAGIC))
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self._position = len(WAL_MAGIC)

    def close(self) -> None:
        with self._mutex:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()
