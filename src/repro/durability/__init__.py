"""Durability: write-ahead logging, checkpoints, and crash recovery.

Everything the engine keeps in memory — micro-partitions, the catalog,
the HLC, table version histories, and the per-DT aggregate accumulator
stores — can be made to survive a process crash by opening the
:class:`~repro.api.database.Database` with a ``path``. The subsystem has
three layers:

* :mod:`repro.durability.wal` — an append-only, length-prefixed,
  CRC-checksummed log of committed transactions, DDL operations, and
  refresh-interval advances, each tagged with its HLC timestamp. Appends
  happen inside the commit mutex, so WAL order equals commit order.
* :mod:`repro.durability.checkpoint` — point-in-time snapshots of the
  whole database (partitions pooled so zero-copy clones stay shared),
  after which the WAL is truncated.
* :mod:`repro.durability.recovery` — on open: load the newest valid
  checkpoint, replay the WAL tail with the *recorded* commit timestamps,
  discard torn tail records, and reinitialize any aggregate state whose
  continuity token no longer matches (the self-healing invalidation path
  of :mod:`repro.ivm.aggstate`).

All file I/O for data lives in this package — ``tools/lint_engine.py``
enforces that nothing else in the engine opens data files directly.
"""

from repro.durability.manager import DurabilityManager
from repro.durability.wal import WriteAheadLog, WalRecord, scan_wal
from repro.errors import DurabilityError

__all__ = [
    "DurabilityManager",
    "DurabilityError",
    "WriteAheadLog",
    "WalRecord",
    "scan_wal",
]
