"""Crash recovery: checkpoint load + WAL replay.

Recovery brings a freshly constructed database to the last durable
state:

1. load the newest checkpoint that parses and passes its checksum
   (falling back to older ones — an interrupted checkpoint write is
   atomic thanks to ``os.replace``, but a corrupted file must not take
   the directory down with it);
2. scan the WAL, discarding the torn tail (a record cut short by a
   crash mid-append);
3. replay, in file order, every record whose ``seq`` is newer than the
   checkpoint's coverage — committed DML re-applies its staged writes at
   the *recorded* HLC timestamp, DDL re-runs the catalog operation and
   asserts the resulting catalog epoch matches the recorded one.

Replay is deterministic: the simulation clock is advanced to each
record's wall time before applying it (so ``created_at`` stamps and
version timestamps reproduce exactly), the HLC is restored with
:meth:`~repro.txn.hlc.HybridLogicalClock.observe` (exact value, not the
receive rule), and catalog counters continue the pre-crash sequences so
row ids and entity ids never fork.

Deliberately **not** durable (documented in the README): aggregate
state touched by replayed refreshes is reinitialized on the next
refresh (the WAL records the refresh outcome, not the accumulator
deltas), per-DT static-analysis reports (recomputable), grant changes
after the last checkpoint, and warehouse usage accounting.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.durability import checkpoint as ckpt
from repro.durability import codec
from repro.durability.wal import scan_wal
from repro.errors import DurabilityError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.database import Database
    from repro.core.dynamic_table import DynamicTable
    from repro.txn.hlc import HlcTimestamp

#: The WAL file name inside a durability directory.
WAL_FILENAME = "wal.log"


@dataclass
class RecoveryReport:
    """What recovery did, surfaced through ``Database.durability_status``
    and the EXPLAIN durability section."""

    checkpoint_seq: int = 0               # 0 = started from empty
    checkpoint_file: Optional[str] = None
    checkpoint_hlc: Optional["HlcTimestamp"] = None  # at the checkpoint cut
    last_wal_seq: int = 0                 # highest seq the checkpoint covers
    records_replayed: int = 0
    records_skipped: int = 0              # already covered by the checkpoint
    torn_bytes: int = 0                   # discarded torn-tail bytes
    next_wal_seq: int = 1
    invalid_checkpoints: list[str] = field(default_factory=list)


def recover(db: "Database", directory: str) -> RecoveryReport:
    """Restore ``db`` (freshly constructed, empty) from ``directory``."""
    report = RecoveryReport()
    snapshot = None
    for seq, path in ckpt.list_checkpoints(directory):
        try:
            snapshot = ckpt.load_checkpoint(path)
        except DurabilityError as error:
            report.invalid_checkpoints.append(f"{path}: {error}")
            continue
        report.checkpoint_seq = seq
        report.checkpoint_file = path
        break
    if snapshot is not None:
        ckpt.restore_database(db, snapshot)
        report.checkpoint_hlc = codec.decode(snapshot["hlc"])
        report.last_wal_seq = snapshot["last_wal_seq"]

    next_seq = report.last_wal_seq + 1
    wal_path = os.path.join(directory, WAL_FILENAME)
    if os.path.exists(wal_path):
        scan = scan_wal(wal_path)
        report.torn_bytes = scan.file_size - scan.good_end
        for record in scan.records:
            if record.seq <= report.last_wal_seq:
                report.records_skipped += 1
                continue
            _replay(db, record.payload)
            report.records_replayed += 1
        if scan.records:
            next_seq = max(next_seq, scan.records[-1].seq + 1)
    report.next_wal_seq = next_seq
    return report


# ---------------------------------------------------------------------------
# Record dispatch
# ---------------------------------------------------------------------------

def _replay(db: "Database", payload: dict) -> None:
    kind = payload.get("kind")
    if kind == "commit":
        _replay_commit(db, payload)
    elif kind == "ddl":
        _replay_ddl(db, payload)
    else:
        raise DurabilityError(
            f"WAL record {payload.get('seq')} has unknown kind {kind!r}")


def _advance_clock(db: "Database", wall: int) -> None:
    # Monotone within the log; only ever move forward (SimClock refuses
    # to run backwards, and an already-later clock means a record from
    # the same instant was replayed first).
    if wall > db.clock.now():
        db.clock.advance_to(wall)


def _dynamic_table(db: "Database", name: str) -> "DynamicTable":
    from repro.core.dynamic_table import DynamicTable

    payload = db.catalog.get(name).payload
    assert isinstance(payload, DynamicTable)
    return payload


# ---------------------------------------------------------------------------
# Committed DML (and the refresh transactions riding on it)
# ---------------------------------------------------------------------------

def _replay_commit(db: "Database", payload: dict) -> None:
    ts = codec.decode(payload["ts"])
    _advance_clock(db, ts.wall)
    # Writes were applied in sorted-table-name order at commit; the
    # logged mapping preserves that order, and re-applying at the
    # recorded timestamp reproduces the exact same versions.
    for name, encoded in payload["writes"].items():
        write = codec.decode(encoded)
        db.catalog.versioned_table(name).apply(write, ts)
    db.txns.hlc.observe(ts)
    meta = payload["refresh"]
    if meta is not None:
        _replay_refresh_meta(db, meta)


def _replay_refresh_meta(db: "Database", meta: dict) -> None:
    """Re-install the frontier/visibility metadata of a refresh whose
    data changes were just replayed as the enclosing commit."""
    from repro.core.dynamic_table import RefreshAction, RefreshRecord
    from repro.core.evolution import record_dependencies

    dt = _dynamic_table(db, meta["dt"])
    refresh_ts = meta["refresh_ts"]
    frontier = codec.decode(meta["frontier"])
    action = RefreshAction(meta["action"])
    dt.table.register_refresh(refresh_ts, dt.table.current_version)
    dt.advance_frontier(frontier)
    # One marker record per replayed refresh: the manual-refresh fast
    # path returns history[-1] when the frontier already matches.
    dt.record_refresh(RefreshRecord(
        data_timestamp=refresh_ts, action=action,
        table_rows_after=dt.table.row_count(), frontier=frontier))
    if dt.agg_state is not None:
        if action == RefreshAction.NO_DATA:
            dt.agg_state.note_no_data(refresh_ts)
        else:
            # The WAL logs refresh *outcomes*, not accumulator deltas:
            # a replayed data-moving refresh leaves any checkpointed
            # accumulator state behind the table, so it must rebuild.
            dt.agg_state.invalidate(
                "refresh replayed from the WAL after the last checkpoint")
    if meta["record_deps"]:
        dt.dependencies = record_dependencies(dt.query, db.catalog)


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------

def _replay_ddl(db: "Database", payload: dict) -> None:
    catalog = db.catalog
    _advance_clock(db, payload["wall"])
    ddl = payload["ddl"]
    data = codec.decode(payload["data"])

    if ddl == "create_table":
        catalog.create_table(data["name"], data["schema"],
                             owner=data["owner"],
                             or_replace=data["or_replace"])
    elif ddl == "create_view":
        catalog.create_view(data["name"], data["query_text"], data["query"],
                            owner=data["owner"],
                            or_replace=data["or_replace"])
    elif ddl == "create_dynamic_table":
        _replay_create_dynamic_table(db, data)
    elif ddl == "create_warehouse":
        db.warehouses.create(data["name"], data["size"],
                             data["auto_suspend"])
    elif ddl == "dt_hidden":
        _dynamic_table(db, data["name"]).hidden = True
    elif ddl == "drop":
        catalog.drop(data["name"], data["kind"])
    elif ddl == "undrop":
        catalog.undrop(data["name"], data["kind"])
    elif ddl == "rename":
        catalog.rename(data["name"], data["new_name"])
    elif ddl == "alter":
        _replay_alter(db, data)
    elif ddl == "clone_table":
        from repro.core.cloning import clone_table

        ts = data["ts"]
        clone_table(catalog, data["source"], data["name"], ts)
        db.txns.hlc.observe(ts)
    elif ddl == "clone_dt":
        from repro.core.cloning import clone_dynamic_table

        ts = data["ts"]
        clone_dynamic_table(catalog, data["source"], data["name"], ts)
        db.txns.hlc.observe(ts)
    elif ddl == "recluster":
        ts = data["ts"]
        catalog.versioned_table(data["name"]).recluster(ts)
        db.txns.hlc.observe(ts)
    else:
        raise DurabilityError(
            f"WAL record {payload.get('seq')} has unknown DDL {ddl!r}")

    if catalog.epoch != payload["epoch"]:
        raise DurabilityError(
            f"catalog epoch diverged replaying WAL record "
            f"{payload.get('seq')} ({ddl}): expected {payload['epoch']}, "
            f"got {catalog.epoch}")


def _replay_create_dynamic_table(db: "Database", data: dict) -> None:
    """Rebuild the DT entity exactly as ``Database.create_dynamic_table``
    does, *without* initializing — the initialization refresh was a
    normal transaction and replays from its own commit records."""
    from repro.core.dynamic_table import DynamicTable, RefreshMode
    from repro.core.evolution import record_dependencies
    from repro.plan.builder import build_plan
    from repro.plan.properties import incrementalizability
    from repro.storage.table import VersionedTable

    query = data["query"]
    plan = build_plan(query, db.catalog, db.registry)
    check = incrementalizability(plan)
    schema = plan.schema.requalified(None)
    table = VersionedTable(data["name"], schema,
                           db.catalog.allocate_table_seq())
    dependencies = record_dependencies(query, db.catalog)
    dt = DynamicTable(data["name"], data["query_text"], query,
                      data["target_lag"], data["warehouse"],
                      RefreshMode(data["refresh_mode"]), table, dependencies,
                      check.supported, check.reasons)
    options = data.get("options")
    if options:
        from repro.core.dynamic_table import apply_policy_options

        apply_policy_options(dt, options)
    db.catalog.create_dynamic_entry(data["name"], dt,
                                    or_replace=data["or_replace"])


def _replay_alter(db: "Database", data: dict) -> None:
    # Suspend/resume flip entity state beyond the DDL-log line; a manual
    # REFRESH's data effects replay from its own commit records; a SET
    # detail round-trips the failure-policy options.
    if data["kind"] == "dynamic table":
        from repro.core.dynamic_table import (apply_policy_options,
                                              decode_option_detail)

        detail = data["detail"]
        options = decode_option_detail(detail)
        if detail in ("suspend", "resume"):
            dt = _dynamic_table(db, data["name"])
            if detail == "suspend":
                dt.suspend()
            else:
                dt.resume()
        elif options is not None:
            apply_policy_options(_dynamic_table(db, data["name"]), options)
    db.catalog.log_alter(data["kind"], data["name"], data["detail"])
