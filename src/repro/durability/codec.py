"""Tagged-JSON codec for the durability subsystem.

WAL records and checkpoints are JSON (human-inspectable, no third-party
dependency), but the engine's state is built from frozen dataclasses
(AST nodes, frontiers, HLC timestamps), enums, tuples, sets, and dicts
with non-string keys — none of which plain JSON round-trips. The codec
encodes every such value as a small tagged object::

    {"$t": "tuple", "v": [...]}
    {"$t": "dc", "c": "HlcTimestamp", "f": {"wall": 3, "logical": 0}}
    {"$t": "enum", "c": "Action", "v": "insert"}

Only classes in the explicit allowlist (:data:`REGISTRY`) decode — the
decoder never instantiates an arbitrary class named by the file. The
allowlist is part of the on-disk format: renaming or removing a
registered class is a format-breaking change and requires bumping the
WAL/checkpoint format version.

Scalars (``None``/``bool``/``int``/``str``) pass through untagged;
``float`` is tagged so that integral floats (``1.0``) survive the trip
distinct from ints and NaN/inf round-trip portably.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Any

from repro.core import dynamic_table as _dyn
from repro.core.frontier import Frontier, SourceCursor
from repro.core.lag import TargetLag
from repro.engine.schema import Column, Schema
from repro.engine.types import SqlType
from repro.errors import DurabilityError
from repro.ivm.changes import Action, ChangeSet
from repro.sql import nodes as _nodes
from repro.storage import catalog as _catalog
from repro.storage.table import StagedWrite, TableVersion
from repro.txn.hlc import HlcTimestamp


def _registered_classes() -> dict[str, type]:
    """Build the class allowlist: every dataclass of the SQL AST module
    plus the engine-state classes that appear in WAL records and
    checkpoints."""
    registry: dict[str, type] = {}

    def register(cls: type) -> None:
        name = cls.__name__
        if registry.get(name, cls) is not cls:
            raise DurabilityError(f"codec class name collision: {name}")
        registry[name] = cls

    for value in vars(_nodes).values():
        if isinstance(value, type) and dataclasses.is_dataclass(value):
            register(value)
    for cls in (Column, SqlType, HlcTimestamp, Frontier, SourceCursor,
                TargetLag, _dyn.RefreshMode, _dyn.RefreshAction,
                _dyn.DependencyRecord, _catalog.DdlEvent,
                _catalog.ViewDefinition, Action, TableVersion, StagedWrite):
        register(cls)
    return registry


REGISTRY: dict[str, type] = _registered_classes()


def encode(value: Any) -> Any:
    """Encode ``value`` into a JSON-serializable structure."""
    if value is None or value is True or value is False:
        return value
    if isinstance(value, str):
        return value
    if isinstance(value, bool):  # pragma: no cover - caught above
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return {"$t": "f", "v": "nan"}
        if math.isinf(value):
            return {"$t": "f", "v": "inf" if value > 0 else "-inf"}
        return {"$t": "f", "v": value}
    if isinstance(value, tuple):
        return {"$t": "tuple", "v": [encode(item) for item in value]}
    if isinstance(value, list):
        return {"$t": "list", "v": [encode(item) for item in value]}
    if isinstance(value, frozenset):
        return {"$t": "frozenset", "v": [encode(item) for item in value]}
    if isinstance(value, set):
        return {"$t": "set", "v": [encode(item) for item in value]}
    if isinstance(value, dict):
        return {"$t": "dict",
                "v": [[encode(key), encode(item)]
                      for key, item in value.items()]}
    if isinstance(value, Schema):
        return {"$t": "schema", "v": [encode(column) for column in value]}
    if isinstance(value, ChangeSet):
        return {"$t": "changeset",
                "a": [action.value for action in value.actions],
                "i": list(value.row_ids),
                "r": [encode(row) for row in value.rows]}
    if isinstance(value, enum.Enum):
        cls = type(value)
        if REGISTRY.get(cls.__name__) is not cls:
            raise DurabilityError(f"unregistered enum: {cls.__name__}")
        return {"$t": "enum", "c": cls.__name__, "v": encode(value.value)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        if REGISTRY.get(cls.__name__) is not cls:
            raise DurabilityError(f"unregistered dataclass: {cls.__name__}")
        fields = {f.name: encode(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"$t": "dc", "c": cls.__name__, "f": fields}
    raise DurabilityError(
        f"cannot encode value of type {type(value).__name__}: {value!r}")


def decode(value: Any) -> Any:
    """Decode a structure produced by :func:`encode`."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, list):  # only appears inside tagged containers
        return [decode(item) for item in value]
    if not isinstance(value, dict):
        raise DurabilityError(f"undecodable value: {value!r}")
    tag = value.get("$t")
    if tag == "f":
        raw = value["v"]
        if raw == "nan":
            return math.nan
        if raw == "inf":
            return math.inf
        if raw == "-inf":
            return -math.inf
        return float(raw)
    if tag == "tuple":
        return tuple(decode(item) for item in value["v"])
    if tag == "list":
        return [decode(item) for item in value["v"]]
    if tag == "frozenset":
        return frozenset(decode(item) for item in value["v"])
    if tag == "set":
        return {decode(item) for item in value["v"]}
    if tag == "dict":
        return {decode(key): decode(item) for key, item in value["v"]}
    if tag == "schema":
        return Schema(decode(column) for column in value["v"])
    if tag == "changeset":
        return ChangeSet.from_arrays(
            [Action(action) for action in value["a"]],
            list(value["i"]),
            [decode(row) for row in value["r"]])
    if tag == "enum":
        cls = REGISTRY.get(value["c"])
        if cls is None or not issubclass(cls, enum.Enum):
            raise DurabilityError(f"unregistered enum: {value['c']}")
        return cls(decode(value["v"]))
    if tag == "dc":
        cls = REGISTRY.get(value["c"])
        if cls is None or not dataclasses.is_dataclass(cls):
            raise DurabilityError(f"unregistered dataclass: {value['c']}")
        fields = {name: decode(item) for name, item in value["f"].items()}
        return cls(**fields)
    raise DurabilityError(f"unknown codec tag: {tag!r}")
