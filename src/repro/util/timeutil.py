"""Time primitives shared across the package.

All points in time and durations are integer **nanoseconds**. Using a single
integer unit keeps arithmetic exact (no float drift in the scheduler), makes
ordering trivial, and matches the resolution of the hybrid logical clock.

Two light newtype aliases are exposed for documentation purposes:

* ``Timestamp`` — nanoseconds since the simulation epoch (t=0).
* ``Duration`` — a span of nanoseconds.

The module also implements the duration literals that appear in dynamic
table DDL, e.g. ``TARGET_LAG = '1 minute'`` (section 3.2 of the paper), and
formatting helpers used in reports.
"""

from __future__ import annotations

import re

from repro.errors import UserError

Timestamp = int
Duration = int

NANOSECOND: Duration = 1
MICROSECOND: Duration = 1_000
MILLISECOND: Duration = 1_000_000
SECOND: Duration = 1_000_000_000
MINUTE: Duration = 60 * SECOND
HOUR: Duration = 60 * MINUTE
DAY: Duration = 24 * HOUR

#: Unit-name -> nanoseconds. Singular and plural plus the usual
#: abbreviations are accepted, matching Snowflake's duration syntax.
_UNITS: dict[str, Duration] = {
    "ns": NANOSECOND,
    "nanosecond": NANOSECOND,
    "nanoseconds": NANOSECOND,
    "us": MICROSECOND,
    "microsecond": MICROSECOND,
    "microseconds": MICROSECOND,
    "ms": MILLISECOND,
    "millisecond": MILLISECOND,
    "milliseconds": MILLISECOND,
    "s": SECOND,
    "sec": SECOND,
    "secs": SECOND,
    "second": SECOND,
    "seconds": SECOND,
    "m": MINUTE,
    "min": MINUTE,
    "mins": MINUTE,
    "minute": MINUTE,
    "minutes": MINUTE,
    "h": HOUR,
    "hr": HOUR,
    "hrs": HOUR,
    "hour": HOUR,
    "hours": HOUR,
    "d": DAY,
    "day": DAY,
    "days": DAY,
}

_DURATION_RE = re.compile(r"^\s*(\d+)\s*([a-zA-Z]+)\s*$")


def seconds(n: float) -> Duration:
    """Return ``n`` seconds as a :data:`Duration` (nanoseconds)."""
    return int(n * SECOND)


def minutes(n: float) -> Duration:
    """Return ``n`` minutes as a :data:`Duration` (nanoseconds)."""
    return int(n * MINUTE)


def hours(n: float) -> Duration:
    """Return ``n`` hours as a :data:`Duration` (nanoseconds)."""
    return int(n * HOUR)


def days(n: float) -> Duration:
    """Return ``n`` days as a :data:`Duration` (nanoseconds)."""
    return int(n * DAY)


def parse_duration(text: str) -> Duration:
    """Parse a duration literal such as ``'1 minute'`` or ``'30 s'``.

    Raises :class:`~repro.errors.UserError` for malformed input or a zero /
    negative magnitude.

    >>> parse_duration('1 minute')
    60000000000
    >>> parse_duration('2 hours') == hours(2)
    True
    """
    match = _DURATION_RE.match(text)
    if match is None:
        raise UserError(f"invalid duration literal: {text!r}")
    magnitude = int(match.group(1))
    unit = match.group(2).lower()
    if unit not in _UNITS:
        raise UserError(f"unknown duration unit {unit!r} in {text!r}")
    if magnitude <= 0:
        raise UserError(f"duration must be positive: {text!r}")
    return magnitude * _UNITS[unit]


def format_duration(duration: Duration) -> str:
    """Render a duration with the largest unit that divides it exactly,
    falling back to seconds with decimals.

    >>> format_duration(MINUTE)
    '1 minute'
    >>> format_duration(90 * SECOND)
    '90 seconds'
    """
    if duration == 0:
        return "0 seconds"
    for unit_ns, singular, plural in (
        (DAY, "day", "days"),
        (HOUR, "hour", "hours"),
        (MINUTE, "minute", "minutes"),
        (SECOND, "second", "seconds"),
        (MILLISECOND, "millisecond", "milliseconds"),
    ):
        if duration % unit_ns == 0:
            count = duration // unit_ns
            return f"{count} {singular if count == 1 else plural}"
    return f"{duration} ns"


def format_timestamp(timestamp: Timestamp) -> str:
    """Render a timestamp as seconds-from-epoch with millisecond precision,
    e.g. ``'t=12.345s'``. Used by reports and ``__repr__`` methods."""
    return f"t={timestamp / SECOND:.3f}s"
