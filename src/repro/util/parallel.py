"""Worker pools and the partition fan-out context.

Two small primitives shared by the parallel refresh subsystem
(:mod:`repro.scheduler.executor`):

* :class:`WorkerPool` — a sized ``ThreadPoolExecutor`` wrapper whose
  :meth:`~WorkerPool.map_ordered` fans a function over items concurrently
  but returns results **in input order**, so every parallel consumer in
  the engine combines partial results deterministically;
* the **partition fan-out context** — a thread-local slot holding the
  pool that intra-refresh partition work (the partition diffs of
  :mod:`repro.streams.changes`, the aggregate-state scans of
  :mod:`repro.ivm.aggstate`) may fan out to. The refresh engine installs
  it around one refresh via :func:`partition_parallelism`; the fan-out
  sites read it with :func:`fanout_pool` and record their task counts on
  the context's :class:`FanoutStats`.

The slot is *thread-local* on purpose: under DAG-level parallelism each
refresh runs on its own coordinator worker, and the context it installs
must not leak into sibling refreshes. Pool worker threads never see the
slot either, so partition tasks cannot recursively fan out — which is
what makes sharing one bounded partition pool across concurrent
refreshes deadlock-free (tasks never block on the pool they run in).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, TypeVar, Union

from repro.faults import inject

T = TypeVar("T")
R = TypeVar("R")

#: Below this many rows a chunked scan is not worth the task overhead.
MIN_PARALLEL_ROWS = 256


class WorkerPool:
    """A bounded thread pool with deterministic ordered fan-out."""

    def __init__(self, workers: int, name: str = "repro-worker"):
        if workers < 1:
            raise ValueError("worker pool needs at least one worker")
        self.workers = workers
        #: Lazily created: a pool of one worker degenerates to inline
        #: execution and never spawns a thread.
        self._executor: Optional[ThreadPoolExecutor] = None
        self._name = name
        self._mutex = threading.Lock()
        self._closed = False

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._mutex:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix=self._name)
            return self._executor

    def map_ordered(self, fn: Callable[[T], R], items: Sequence[T],
                    return_exceptions: bool = False,
                    ) -> list[Union[R, BaseException]]:
        """Apply ``fn`` to every item concurrently; results come back in
        input order. By default a worker exception propagates to the
        caller; with ``return_exceptions=True`` each failing task yields
        its exception *as the result* instead, so one crashed task cannot
        take down its siblings (wave isolation in the DAG executor)."""
        def task(item: T) -> Union[R, BaseException]:
            if not return_exceptions:
                inject("worker.task", pool=self._name)
                return fn(item)
            try:
                # The injection point sits inside the guard: a fault here
                # models the worker crashing at task startup, and wave
                # isolation must contain that too.
                inject("worker.task", pool=self._name)
                return fn(item)
            except Exception as exc:
                return exc

        if self.workers == 1 or len(items) <= 1:
            return [task(item) for item in items]
        executor = self._ensure_executor()
        futures = [executor.submit(task, item) for item in items]
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._mutex:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkerPool(workers={self.workers})"


def chunk_spans(count: int, chunks: int,
                minimum: int = MIN_PARALLEL_ROWS) -> list[tuple[int, int]]:
    """Split ``range(count)`` into at most ``chunks`` contiguous
    ``(start, stop)`` spans of at least ``minimum`` rows each (except
    possibly the last). Deterministic in ``count``/``chunks`` alone."""
    if count <= 0:
        return []
    chunks = max(1, min(chunks, count // minimum))
    size = (count + chunks - 1) // chunks
    return [(start, min(start + size, count))
            for start in range(0, count, size)]


@dataclass
class FanoutStats:
    """What one refresh's partition fan-out actually did (observability:
    surfaces in the refresh record and EXPLAIN)."""

    pool: Optional[WorkerPool] = None
    #: Partition/chunk tasks dispatched to the pool.
    tasks: int = 0
    #: Fan-out sites that ran (``"diff"``, ``"agg-init"``, ...).
    sites: list[str] = field(default_factory=list)

    @property
    def workers(self) -> int:
        return self.pool.workers if self.pool is not None else 1

    def note(self, site: str, tasks: int) -> None:
        self.tasks += tasks
        self.sites.append(site)


_local = threading.local()


def fanout_context() -> Optional[FanoutStats]:
    """The calling thread's active partition fan-out context, if any."""
    return getattr(_local, "context", None)


def fanout_pool() -> Optional[WorkerPool]:
    """The pool partition work on this thread may fan out to, or None."""
    context = fanout_context()
    if context is None or context.pool is None:
        return None
    return context.pool


@contextmanager
def partition_parallelism(pool: Optional[WorkerPool]):
    """Install ``pool`` as this thread's partition fan-out target for the
    duration of one refresh; yields the :class:`FanoutStats` the fan-out
    sites will record into. ``pool=None`` still yields a (inert) context,
    so callers need no None-handling."""
    context = FanoutStats(pool=pool)
    previous = getattr(_local, "context", None)
    _local.context = context
    try:
        yield context
    finally:
        _local.context = previous


def fanout_map(site: str, fn: Callable[[T], R],
               items: Sequence[T]) -> list[R]:
    """Ordered map over ``items`` through the active partition pool —
    inline when no pool is installed or the fan-out would be a single
    task. Results are always in input order, so callers that combine
    them sequentially are byte-identical to the serial path."""
    context = fanout_context()
    if (context is None or context.pool is None
            or context.pool.workers <= 1 or len(items) <= 1):
        return [fn(item) for item in items]
    context.note(site, len(items))
    return context.pool.map_ordered(fn, items)
