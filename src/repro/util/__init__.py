"""Shared utilities (time primitives)."""
