"""The Direct Serialization Graph with derivation-extended dependencies.

Section 4 of the paper extends Adya's three dependency kinds so they trace
*through* derived values:

* **read-dependency** — "Tj directly item-read-depends on Ti if Ti installs
  some object version xi and Tj reads xi (prior definition), or if Ti
  installs yk, Tj reads xi, and xi derives from yk."
* **anti-dependency** — "... or if Ti reads some object version xk, xk
  derives from an object version ym, and Tj installs y's next version
  (after ym)."
* **write-dependency** — "... or if Ti installs xi, Tj installs yj, and
  there exist consecutive versions zk ≪ zm such that zk derives from xi
  and zm derives from yj."

Crucially, *installing a version by derivation creates no dependency on
the deriving transaction* (Theorem 1: dependencies are "agnostic to which
transaction contains the derivation operation"); the derivation acts as an
intermediary connecting readers with the transactions that **wrote** the
underlying values. This is what removes refresh transactions from the DSG
in the paper's Figure 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isolation.history import Derive, History, Version, Write


class DependencyKind(enum.Enum):
    WRITE = "ww"
    READ = "wr"
    ANTI = "rw"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Edge:
    """A DSG edge: ``target`` depends on ``source`` (source → target)."""

    source: int
    target: int
    kind: DependencyKind
    reason: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"T{self.source} -{self.kind.value}-> T{self.target}"


class DirectSerializationGraph:
    """The DSG of a history, over committed transactions."""

    def __init__(self, history: History):
        self.history = history
        self.edges: set[Edge] = set()
        self.nodes: set[int] = set(history.committed)
        self._build()

    # -- construction ----------------------------------------------------------------

    def _add(self, source: int, target: int, kind: DependencyKind,
             reason: str) -> None:
        if source == target:
            return
        if source not in self.history.committed:
            return
        if target not in self.history.committed:
            return
        self.edges.add(Edge(source, target, kind, reason))

    def _build(self) -> None:
        self._read_dependencies()
        self._anti_dependencies()
        self._write_dependencies()
        # Transactions whose only operations are derivations contribute no
        # edges; they remain isolated nodes ("this removes the refresh
        # transactions from the DSG", Figure 2 discussion).

    def _read_dependencies(self) -> None:
        for read in self.history.reads:
            if read.txn not in self.history.committed:
                continue
            installer = self.history.installer_of(read.version)
            if isinstance(installer, Write):
                self._add(installer.txn, read.txn, DependencyKind.READ,
                          f"T{read.txn} reads {read.version!r}")
            elif isinstance(installer, Derive):
                for base in self.history.base_versions_of(read.version):
                    writer = self.history.writer_of(base)
                    if writer is not None:
                        self._add(
                            writer, read.txn, DependencyKind.READ,
                            f"T{read.txn} reads {read.version!r} which "
                            f"derives from {base!r}")

    def _anti_dependencies(self) -> None:
        for read in self.history.reads:
            if read.txn not in self.history.committed:
                continue
            # Direct: the next version of the read object, if written.
            self._anti_for(read.txn, read.version, read.version)
            # Extended: next versions of every base version the read value
            # derives from.
            installer = self.history.installer_of(read.version)
            if isinstance(installer, Derive):
                for base in self.history.base_versions_of(read.version):
                    self._anti_for(read.txn, read.version, base)

    def _anti_for(self, reader: int, read_version: Version,
                  overwritten: Version) -> None:
        successor = self.history.next_version(overwritten)
        if successor is None:
            return
        writer = self.history.writer_of(successor)
        if writer is not None:
            self._add(reader, writer, DependencyKind.ANTI,
                      f"T{reader} read {read_version!r}; T{writer} "
                      f"installed {successor!r} overwriting {overwritten!r}")

    def _write_dependencies(self) -> None:
        for obj in self.history.version_order:
            for earlier, later in self.history.consecutive_pairs(obj):
                earlier_event = self.history.installer_of(earlier)
                later_event = self.history.installer_of(later)
                if isinstance(earlier_event, Write) and isinstance(
                        later_event, Write):
                    self._add(earlier_event.txn, later_event.txn,
                              DependencyKind.WRITE,
                              f"{earlier!r} << {later!r}")
                elif isinstance(earlier_event, Derive) or isinstance(
                        later_event, Derive):
                    # Extended rule: relate the writers behind consecutive
                    # derived versions.
                    for base_earlier in self.history.base_versions_of(earlier):
                        for base_later in self.history.base_versions_of(later):
                            source = self.history.writer_of(base_earlier)
                            target = self.history.writer_of(base_later)
                            if source is not None and target is not None:
                                self._add(
                                    source, target, DependencyKind.WRITE,
                                    f"{earlier!r} << {later!r} derive from "
                                    f"{base_earlier!r}, {base_later!r}")

    # -- analysis --------------------------------------------------------------------

    def edges_of_kinds(self, kinds: set[DependencyKind]) -> list[Edge]:
        return [edge for edge in self.edges if edge.kind in kinds]

    def cycles(self, kinds: set[DependencyKind] | None = None,
               ) -> list[list[int]]:
        """Elementary cycles in the subgraph restricted to ``kinds``
        (all kinds if None). Returns each cycle as a list of txn ids."""
        if kinds is None:
            kinds = set(DependencyKind)
        adjacency: dict[int, set[int]] = {node: set() for node in self.nodes}
        for edge in self.edges_of_kinds(kinds):
            adjacency[edge.source].add(edge.target)

        cycles: list[list[int]] = []
        seen_signatures: set[tuple[int, ...]] = set()

        def search(start: int, current: int, path: list[int],
                   on_path: set[int]) -> None:
            for successor in sorted(adjacency[current]):
                if successor == start and len(path) >= 1:
                    signature = tuple(sorted(path))
                    if signature not in seen_signatures:
                        seen_signatures.add(signature)
                        cycles.append(list(path))
                elif successor not in on_path and successor > start:
                    path.append(successor)
                    on_path.add(successor)
                    search(start, successor, path, on_path)
                    on_path.discard(successor)
                    path.pop()

        for node in sorted(self.nodes):
            search(node, node, [node], {node})
        return cycles

    def cycle_edges(self, cycle: list[int]) -> list[Edge]:
        """One witness edge per hop of a cycle."""
        witness: list[Edge] = []
        for position, source in enumerate(cycle):
            target = cycle[(position + 1) % len(cycle)]
            candidates = [edge for edge in self.edges
                          if edge.source == source and edge.target == target]
            # Prefer non-anti edges for readability; any edge witnesses.
            candidates.sort(key=lambda edge: edge.kind == DependencyKind.ANTI)
            if candidates:
                witness.append(candidates[0])
        return witness

    def has_cycle(self, kinds: set[DependencyKind] | None = None) -> bool:
        return bool(self.cycles(kinds))

    def pretty(self) -> str:
        lines = [f"nodes: {sorted(self.nodes)}"]
        for edge in sorted(self.edges,
                           key=lambda e: (e.source, e.target, e.kind.value)):
            lines.append(f"  {edge!r}  [{edge.reason}]")
        return "\n".join(lines)
