"""Isolation levels as proscribed phenomena (Adya [1, 2], section 4).

"Isolation levels are defined by proscribing specific phenomena from the
possible histories of a database":

============ ==========================================
PL-1          proscribes G0
PL-2          proscribes G0, G1a, G1b, G1c
PL-2+         proscribes G0, G1, G-single (basic consistency)
PL-3          proscribes G0, G1, G2 (full serializability)
============ ==========================================

The paper: "Dynamic Tables provides two isolation levels in different
contexts. If a transaction reads from a single DT (even if other DTs are
upstream) and no other table, that transaction is guaranteed to have
Snapshot Isolation (PL-SI). Otherwise, it is guaranteed Read Committed
(PL-2)." We classify histories with the DSG-based levels; PL-SI proper
requires start-ordered graphs, and for the repository's purposes PL-2+ is
the interesting boundary (the paper: "we expect that PL-2+ provides
basic-consistency, even if histories contain derivations").
"""

from __future__ import annotations

import enum

from repro.isolation.history import History
from repro.isolation.phenomena import PhenomenaReport, detect_phenomena


class IsolationLevel(enum.Enum):
    PL_0 = "PL-0"     # not even write cycles proscribed — anything goes
    PL_1 = "PL-1"
    PL_2 = "PL-2"
    PL_2_PLUS = "PL-2+"
    PL_3 = "PL-3"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def satisfies(report: PhenomenaReport, level: IsolationLevel) -> bool:
    """Whether a history (via its phenomena report) is allowed at
    ``level``."""
    if level == IsolationLevel.PL_0:
        return True
    if level == IsolationLevel.PL_1:
        return not report.g0
    if level == IsolationLevel.PL_2:
        return not report.g0 and not report.any_g1
    if level == IsolationLevel.PL_2_PLUS:
        return (not report.g0 and not report.any_g1
                and not report.g_single)
    if level == IsolationLevel.PL_3:
        return (not report.g0 and not report.any_g1 and not report.g2)
    raise ValueError(level)


def classify(history: History) -> IsolationLevel:
    """The strongest level whose proscribed phenomena are all absent."""
    report = detect_phenomena(history)
    strongest = IsolationLevel.PL_0
    for level in (IsolationLevel.PL_1, IsolationLevel.PL_2,
                  IsolationLevel.PL_2_PLUS, IsolationLevel.PL_3):
        if satisfies(report, level):
            strongest = level
        else:
            break
    return strongest
