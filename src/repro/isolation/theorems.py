"""Executable checks of the paper's Theorem 1 and Corollary 2.

**Theorem 1 (Transaction Invariance)**: "Given any history H containing a
transaction Ti and a derivation r = d_i(x_i | ...), define another history
H′ which moves r into another transaction Tj to create d_j(x_j | ...) and
replaces all reads from x_i in H with reads from x_j. H has exactly the
same dependencies as H′." — Pure computation can move between transactions
without affecting application invariants; this is the formal license for
running refreshes asynchronously.

**Corollary 2 (Encapsulation)**: "Every history H′ excluding an
encapsulated derivation from a history H has exactly the same dependencies
as H." — Derivations "have been implicit in transactions all along, but
always encapsulated".

These are theorems, so the functions here don't *prove* them — they verify
the claimed DSG equality on concrete histories, and the property tests
verify them over randomly generated histories.
"""

from __future__ import annotations

from repro.isolation.dsg import DirectSerializationGraph, Edge
from repro.isolation.history import (Derive, Event, History, Read, Version,
                                     Write)


def _edge_signature(dsg: DirectSerializationGraph) -> set[tuple[int, int, str]]:
    """DSG edges stripped of their human-readable reasons."""
    return {(edge.source, edge.target, edge.kind.value)
            for edge in dsg.edges}


def move_derivation(history: History, derivation: Derive,
                    to_txn: int) -> History:
    """Build the H′ of Theorem 1: move ``derivation`` into ``to_txn``
    under a fresh version index, rewriting reads of (and derivations
    sourcing) the old version."""
    old_version = derivation.version
    new_version = Version(old_version.obj, to_txn)
    if new_version != old_version and new_version in history.installers:
        # Adya's convention names a transaction's version of an object by
        # the transaction id; the theorem's rewrite presumes T_j does not
        # already install a version of this object.
        raise ValueError(
            f"transaction T{to_txn} already installs a version of "
            f"{old_version.obj!r}")

    def rewrite_version(version: Version) -> Version:
        return new_version if version == old_version else version

    events: list[Event] = []
    for event in history.events:
        if event is derivation:
            events.append(Derive(to_txn, new_version, derivation.sources))
        elif isinstance(event, Read):
            events.append(Read(event.txn, rewrite_version(event.version)))
        elif isinstance(event, Derive):
            events.append(Derive(
                event.txn, event.version,
                tuple(rewrite_version(source) for source in event.sources)))
        else:
            events.append(event)

    version_order = {
        obj: [rewrite_version(version) for version in order]
        for obj, order in history.version_order.items()}
    return History(events, version_order)


def check_transaction_invariance(history: History, derivation: Derive,
                                 to_txn: int) -> bool:
    """Verify Theorem 1 on a concrete history: the DSG is unchanged when
    ``derivation`` moves to ``to_txn``."""
    if to_txn not in history.committed:
        raise ValueError(f"target transaction T{to_txn} must be committed")
    moved = move_derivation(history, derivation, to_txn)
    original_edges = _edge_signature(DirectSerializationGraph(history))
    moved_edges = _edge_signature(DirectSerializationGraph(moved))
    return original_edges == moved_edges


def exclude_derivation(history: History, derivation: Derive) -> History:
    """Build the H′ of Corollary 2: drop an encapsulated derivation (and
    the reads of its value, which by encapsulation belong to the same
    transaction and read what the transaction itself computed)."""
    events = [event for event in history.events
              if event is not derivation
              and not (isinstance(event, Read)
                       and event.version == derivation.version)]
    version_order = {
        obj: [version for version in order
              if version != derivation.version]
        for obj, order in history.version_order.items()}
    return History(events, version_order)


def check_encapsulation(history: History, derivation: Derive) -> bool:
    """Verify Corollary 2 on a concrete history: excluding an encapsulated
    derivation leaves the DSG unchanged."""
    from repro.isolation.history import is_encapsulated

    if not is_encapsulated(history, derivation):
        raise ValueError("derivation is not encapsulated by its transaction")
    excluded = exclude_derivation(history, derivation)
    original_edges = _edge_signature(DirectSerializationGraph(history))
    excluded_edges = _edge_signature(DirectSerializationGraph(excluded))
    return original_edges == excluded_edges
