"""The delayed-view-semantics transaction-isolation formalism (section 4).

Standalone from the database engine: histories, derivations, the extended
Direct Serialization Graph, generalized phenomena (G0, G1a, G1b, G1c, G2,
G-single), isolation levels, the paper's Figure 1/2 examples, and
executable checks of Theorem 1 and Corollary 2.
"""

from repro.isolation.dsg import (DependencyKind, DirectSerializationGraph,
                                 Edge)
from repro.isolation.history import (Abort, Commit, Derive, History, Read,
                                     Version, Write, is_encapsulated)
from repro.isolation.levels import IsolationLevel, classify, satisfies
from repro.isolation.phenomena import (PhenomenaReport, detect_phenomena,
                                       exhibits_read_skew)

__all__ = [
    "Abort", "Commit", "DependencyKind", "Derive",
    "DirectSerializationGraph", "Edge", "History", "IsolationLevel",
    "PhenomenaReport", "Read", "Version", "Write", "classify",
    "detect_phenomena", "exhibits_read_skew", "is_encapsulated",
    "satisfies",
]
