"""Isolation phenomena, generalized over derivations (section 4).

"The definitions of phenomena generalize nicely to include derivations.
... For all but G1b, the actual definitions are the same, but the presence
of derivations in a history can induce new instances of the phenomena."

* **G0 (Write Cycle)** — a cycle of write-dependencies in the DSG.
* **G1a (Aborted Read)** — a committed transaction read-depends on an
  aborted transaction (including reads of values *deriving from* aborted
  versions).
* **G1b (Intermediate Read)** — a committed transaction reads a version
  that is not the final version installed by its transaction, "or it
  reads an object that derives from such an intermediate version".
* **G1c (Circular Information Flow)** — a cycle of read- and
  write-dependencies only.
* **G2 (Anti-dependency Cycle)** — a cycle involving anti-dependencies.
* **G-single** — a cycle with exactly one anti-dependency (from Adya's
  thesis [1]; the paper's Figure 2 exhibits it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isolation.dsg import DependencyKind, DirectSerializationGraph
from repro.isolation.history import Derive, History, Write


@dataclass
class PhenomenaReport:
    """Which phenomena a history exhibits, with witnesses."""

    g0: list[list[int]] = field(default_factory=list)
    g1a: list[str] = field(default_factory=list)
    g1b: list[str] = field(default_factory=list)
    g1c: list[list[int]] = field(default_factory=list)
    g2: list[list[int]] = field(default_factory=list)
    g_single: list[list[int]] = field(default_factory=list)

    @property
    def any_g1(self) -> bool:
        return bool(self.g1a or self.g1b or self.g1c)

    def exhibited(self) -> list[str]:
        names = []
        for name in ("g0", "g1a", "g1b", "g1c", "g2"):
            if getattr(self, name):
                names.append(name.upper().replace("_", "-"))
        if self.g_single:
            names.append("G-single")
        return names

    def pretty(self) -> str:
        shown = self.exhibited()
        if not shown:
            return "no phenomena (serializable)"
        return ", ".join(shown)


def detect_phenomena(history: History,
                     dsg: DirectSerializationGraph | None = None,
                     ) -> PhenomenaReport:
    """Analyze a history for the generalized phenomena."""
    if dsg is None:
        dsg = DirectSerializationGraph(history)
    report = PhenomenaReport()

    report.g0 = dsg.cycles({DependencyKind.WRITE})
    report.g1c = dsg.cycles({DependencyKind.WRITE, DependencyKind.READ})
    all_cycles = dsg.cycles()
    for cycle in all_cycles:
        witness = dsg.cycle_edges(cycle)
        anti_count = sum(1 for edge in witness
                         if edge.kind == DependencyKind.ANTI)
        # A cycle is G2 when it cannot be formed without anti-dependencies.
        if cycle not in report.g1c and cycle not in report.g0:
            report.g2.append(cycle)
            if anti_count == 1:
                report.g_single.append(cycle)

    report.g1a = _aborted_reads(history)
    report.g1b = _intermediate_reads(history)
    return report


def _aborted_reads(history: History) -> list[str]:
    """G1a, through derivations: a committed transaction reads a version
    written by — or deriving from a version written by — an aborted
    transaction."""
    witnesses: list[str] = []
    for read in history.reads:
        if read.txn not in history.committed:
            continue
        for version in history.derivation_closure(read.version):
            installer = history.installer_of(version)
            if isinstance(installer, Write) and installer.txn in history.aborted:
                witnesses.append(
                    f"T{read.txn} read {read.version!r}, which depends on "
                    f"{version!r} written by aborted T{installer.txn}")
    return witnesses


def _intermediate_reads(history: History) -> list[str]:
    """G1b, through derivations: reading a non-final version installed by
    some transaction, or a value deriving from one."""
    witnesses: list[str] = []
    for read in history.reads:
        if read.txn not in history.committed:
            continue
        for version in history.derivation_closure(read.version):
            installer = history.installer_of(version)
            if installer is None or installer.txn == read.txn:
                continue
            final = history.final_version_of(installer.txn, version.obj)
            if final is not None and final != version:
                detail = ("" if version == read.version
                          else f" (via derivation from {version!r})")
                witnesses.append(
                    f"T{read.txn} read intermediate version {version!r}"
                    f"{detail}; T{installer.txn}'s final version is {final!r}")
    return witnesses


def exhibits_read_skew(history: History) -> bool:
    """Read skew is the classic G-single instance: present iff the history
    has a G-single (or wider G2) cycle."""
    report = detect_phenomena(history)
    return bool(report.g_single or report.g2)
