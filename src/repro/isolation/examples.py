"""The paper's Figure 1 and Figure 2, as executable histories.

The scenario (section 4): a dynamic table ``dt`` reads from a base table
``bt`` holding object x. Transactions T1 and T2 write versions x₁ and x₂.
The DT refreshes twice, producing y₃ (from x₁) and y₄ (from x₂). Then T5
reads y₃ and x₂ — observing the old derived value alongside the new base
value: read skew, "obvious to observers".

* **Figure 1 (persisted table semantics)** — the refreshes are modeled as
  ordinary transactions T3/T4 doing reads and writes. The DSG is
  **serializable** (T1 → T3 → T5, T2 → T4, ...) even though the
  application-level anomaly is plainly there: "The framework is unable to
  identify a phenomenon that seems obvious to observers."

* **Figure 2 (delayed view semantics)** — the refreshes are modeled as
  **derivations**. The refresh transactions drop out of the DSG, and an
  anti-dependency T5 → T2 appears (T5 read y₃ which derives from x₁,
  overwritten by T2), closing a cycle T2 → T5 → T2 that exhibits **G2 and
  G-single** — "revealing the read skew that we knew was there all along."
"""

from __future__ import annotations

from repro.isolation.history import (Commit, Derive, History, Read, Version,
                                     Write)

#: Object versions of the running example.
X1 = Version("x", 1)
X2 = Version("x", 2)
Y3 = Version("y", 3)
Y4 = Version("y", 4)


def figure1_history() -> History:
    """Persisted table semantics: refreshes as read/write transactions."""
    return History(
        events=[
            Write(1, X1), Commit(1),
            Read(3, X1), Write(3, Y3), Commit(3),    # refresh 1
            Write(2, X2), Commit(2),
            Read(4, X2), Write(4, Y4), Commit(4),    # refresh 2
            Read(5, Y3), Read(5, X2), Commit(5),     # the skewed reader
        ],
        version_order={"x": [X1, X2], "y": [Y3, Y4]},
    )


def figure2_history() -> History:
    """Delayed view semantics: refreshes as derivations."""
    return History(
        events=[
            Write(1, X1), Commit(1),
            Derive(3, Y3, (X1,)), Commit(3),          # refresh 1
            Write(2, X2), Commit(2),
            Derive(4, Y4, (X2,)), Commit(4),          # refresh 2
            Read(5, Y3), Read(5, X2), Commit(5),
        ],
        version_order={"x": [X1, X2], "y": [Y3, Y4]},
    )


def snapshot_isolated_reader_history() -> History:
    """The fix the paper recommends: read y₃ and the *matching* x₁ (e.g.
    by folding the whole query of interest into one DT and reading only
    it). No cycle, no skew."""
    return History(
        events=[
            Write(1, X1), Commit(1),
            Derive(3, Y3, (X1,)), Commit(3),
            Write(2, X2), Commit(2),
            Derive(4, Y4, (X2,)), Commit(4),
            Read(5, Y3), Read(5, X1), Commit(5),
        ],
        version_order={"x": [X1, X2], "y": [Y3, Y4]},
    )
