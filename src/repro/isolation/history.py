"""Transaction histories with derivation operations (section 4).

The paper extends Adya's formalism [2] with a new operation,

.. math::

   d_i(x_i | y^0_j, ..., y^n_k)

"This represents that the version i of some object x is a derived value,
computed from versions j...k of objects y0...yn in transaction Ti."

A :class:`History` is a sequence of events (reads, writes, derivations,
commits, aborts) plus a total version order per object. From it we compute
the **derives-from closure** ("We say an object v_i derives from another
object z_m when there exists a path of derivations connecting them") that
the extended dependency definitions (:mod:`repro.isolation.dsg`) and the
generalized phenomena (:mod:`repro.isolation.phenomena`) are built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True, order=True)
class Version:
    """A committed version of an object: ``Version("x", 1)`` is x₁.

    By Adya's convention, version index i is installed by transaction Tᵢ.
    """

    obj: str
    index: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.obj}{self.index}"


class Event:
    """Base class of history events; ``txn`` is the transaction id."""

    txn: int


@dataclass(frozen=True)
class Read(Event):
    """r_i(x_j): transaction ``txn`` reads ``version``."""

    txn: int
    version: Version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"r{self.txn}({self.version!r})"


@dataclass(frozen=True)
class Write(Event):
    """w_i(x_i): transaction ``txn`` installs ``version`` by writing it.

    Writes represent interaction with the environment — "entirely new
    information flowing into the database" (section 4).
    """

    txn: int
    version: Version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"w{self.txn}({self.version!r})"


@dataclass(frozen=True)
class Derive(Event):
    """d_i(x_i | y_j, ...): ``version`` is pure computation over
    ``sources`` — no new information enters the database."""

    txn: int
    version: Version
    sources: tuple[Version, ...]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ",".join(repr(source) for source in self.sources)
        return f"d{self.txn}({self.version!r}|{inner})"


@dataclass(frozen=True)
class Commit(Event):
    txn: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"c{self.txn}"


@dataclass(frozen=True)
class Abort(Event):
    txn: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"a{self.txn}"


class History:
    """A transaction history: ordered events + per-object version order.

    ``version_order`` maps each object name to the total order of its
    committed versions ("a total order on the committed versions of each
    object", Adya). If omitted, the install order of events is used.
    """

    def __init__(self, events: Iterable[Event],
                 version_order: dict[str, list[Version]] | None = None):
        self.events: list[Event] = list(events)
        if version_order is None:
            version_order = {}
            for event in self.events:
                if isinstance(event, (Write, Derive)):
                    version_order.setdefault(event.version.obj, []).append(
                        event.version)
        self.version_order: dict[str, list[Version]] = version_order
        self._index()

    def _index(self) -> None:
        self.installers: dict[Version, Event] = {}
        self.reads: list[Read] = []
        self.committed: set[int] = set()
        self.aborted: set[int] = set()
        explicit_outcome: set[int] = set()
        txns: set[int] = set()
        for event in self.events:
            txns.add(event.txn)
            if isinstance(event, (Write, Derive)):
                self.installers[event.version] = event
            elif isinstance(event, Read):
                self.reads.append(event)
            elif isinstance(event, Commit):
                self.committed.add(event.txn)
                explicit_outcome.add(event.txn)
            elif isinstance(event, Abort):
                self.aborted.add(event.txn)
                explicit_outcome.add(event.txn)
        # Transactions without an explicit outcome are treated as committed
        # (keeps example histories terse).
        self.transactions = txns
        self.committed |= txns - explicit_outcome - self.aborted

    # -- structure -----------------------------------------------------------------

    def installer_of(self, version: Version) -> Optional[Event]:
        return self.installers.get(version)

    def writer_of(self, version: Version) -> Optional[int]:
        """The txn that *wrote* (not derived) ``version``, if any."""
        event = self.installers.get(version)
        if isinstance(event, Write):
            return event.txn
        return None

    def next_version(self, version: Version) -> Optional[Version]:
        """The successor of ``version`` in its object's version order."""
        order = self.version_order.get(version.obj, [])
        try:
            position = order.index(version)
        except ValueError:
            return None
        if position + 1 < len(order):
            return order[position + 1]
        return None

    def consecutive_pairs(self, obj: str) -> list[tuple[Version, Version]]:
        order = self.version_order.get(obj, [])
        return list(zip(order, order[1:]))

    def final_version_of(self, txn: int, obj: str) -> Optional[Version]:
        """The last version of ``obj`` installed by ``txn`` (for G1b)."""
        final = None
        for event in self.events:
            if isinstance(event, (Write, Derive)) and event.txn == txn \
                    and event.version.obj == obj:
                final = event.version
        return final

    # -- derives-from closure ----------------------------------------------------------

    def derivation_closure(self, version: Version,
                           _seen: set[Version] | None = None) -> set[Version]:
        """All versions that ``version`` (transitively) derives from,
        including itself. A write-installed version's closure is just
        itself."""
        seen = _seen if _seen is not None else set()
        if version in seen:
            return seen
        seen.add(version)
        event = self.installers.get(version)
        if isinstance(event, Derive):
            for source in event.sources:
                self.derivation_closure(source, seen)
        return seen

    def base_versions_of(self, version: Version) -> set[Version]:
        """The write-installed versions in ``version``'s closure — the
        environmental information the derived value actually depends on."""
        return {candidate for candidate in self.derivation_closure(version)
                if isinstance(self.installers.get(candidate), Write)}

    def derives_from(self, version: Version, ancestor: Version) -> bool:
        """Whether ``version`` derives from ``ancestor`` via a (possibly
        empty) path of derivations."""
        return ancestor in self.derivation_closure(version)

    # -- rendering -------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"History({', '.join(map(repr, self.events))})"

    def pretty(self) -> str:
        """One event per line, grouped by transaction order of appearance."""
        lines = [repr(event) for event in self.events]
        orders = [
            f"  {obj}: " + " << ".join(map(repr, versions))
            for obj, versions in sorted(self.version_order.items())]
        return "\n".join(lines + ["version order:"] + orders)


def is_encapsulated(history: History, derivation: Derive) -> bool:
    """Corollary 2's premise: a derivation is *encapsulated* by its
    transaction when it only reads values written by that transaction and
    its value is only read by operations in that transaction."""
    txn = derivation.txn
    for source in derivation.sources:
        installer = history.installer_of(source)
        if installer is None or installer.txn != txn:
            return False
    for read in history.reads:
        if read.version == derivation.version and read.txn != txn:
            return False
    for event in history.events:
        if isinstance(event, Derive) and event is not derivation:
            if derivation.version in event.sources and event.txn != txn:
                return False
    return True
