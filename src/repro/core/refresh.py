"""The refresh engine: executing one refresh of one dynamic table.

Section 5.4 of the paper describes the pipeline this module reproduces:
the scheduler issues an internal command naming a DT and a refresh
timestamp; the compiler expands the defining query, checks **query
evolution**, chooses the **refresh action**, rewrites the plan, and hands
it to execution under the transaction manager, which "locks the DT, stages
changes to its contents, commits or rolls back those changes, creates a
new table version indexed by the data timestamp, and unlocks the table."

Action selection (sections 3.3.2 and 5.4):

* ``NO_DATA`` — no source version moved since the frontier: "we merely
  commit a transaction marking the progress of the DT to the next data
  timestamp. This uses negligible resources."
* ``FULL`` — sources changed, refresh mode FULL: INSERT OVERWRITE of the
  defining query at the new data timestamp.
* ``INCREMENTAL`` — differentiate the defining query over the frontier →
  new-versions interval and merge the changes.
* ``REINITIALIZE`` — query evolution detected an upstream replacement:
  recompute from scratch (keeping deterministic row ids so incremental
  refreshes can resume afterwards).
* ``INITIAL`` — the first refresh (initialization, section 3.1).

Source version resolution (section 5.3): regular tables resolve "the table
version with the largest commit timestamp less than or equal to t"; an
upstream DT resolves by **exact** refresh-timestamp lookup, and a missing
entry fails the refresh — the paper's first production validation.
"""

from __future__ import annotations

from typing import Optional

from repro.core.dynamic_table import (DynamicTable, RefreshAction,
                                      RefreshRecord)
from repro.core.evolution import (EvolutionOutcome, check_evolution,
                                  record_dependencies)
from repro.core.frontier import Frontier, SourceCursor
from repro.engine.executor import evaluate
from repro.engine.expressions import DEFAULT_REGISTRY, EvalContext, FunctionRegistry
from repro.engine.relation import Relation
from repro.errors import (ChangeIntegrityError, DurabilityError,
                          NotInitializedError, TransactionError,
                          TransientError, UserError, is_transient)
from repro.faults import inject
from repro.ivm.changes import ChangeSet
from repro.ivm.differentiator import (OUTER_JOIN_DIRECT, differentiate)
from repro.plan import logical as lp
from repro.plan.builder import build_plan
from repro.plan.cache import PlanCache
from repro.plan.rewrite import optimize
from repro.storage.catalog import Catalog
from repro.storage.table import TableVersion, VersionedTable
from repro.streams.changes import changes_between
from repro.txn.manager import TransactionManager
from repro.util.parallel import WorkerPool, partition_parallelism
from repro.util.timeutil import Timestamp


#: Compiled-plan cache size that triggers a stale-entry purge.
_PLAN_CACHE_LIMIT = 128

#: Exception classes a refresh *captures into its record* (and counts
#: toward auto-suspension) instead of raising: user errors (section
#: 3.3.3), transactional and environmental failures, and injected
#: faults. Anything else — a KeyError from a bug, say — still
#: propagates, after the attempt aborts its transaction and aggregate
#: state cleanly.
_RECORDED_ERRORS = (UserError, TransactionError, ChangeIntegrityError,
                    NotInitializedError, DurabilityError, TransientError)


class _VersionResolver:
    """SnapshotResolver over an explicit {table: version} pinning."""

    def __init__(self, catalog: Catalog,
                 versions: dict[str, TableVersion]):
        self._catalog = catalog
        self._versions = versions

    def scan(self, table: str) -> Relation:
        versioned = self._catalog.versioned_table(table)
        return versioned.relation(self._versions[table])

    def scan_pruned(self, table: str, bounds) -> Relation:
        """Zone-map pruned scan for filters pushed down by the executor."""
        versioned = self._catalog.versioned_table(table)
        return versioned.relation_pruned(self._versions[table], bounds)


class _FrontierDeltaSource:
    """DeltaSource for one refresh interval: frontier versions → resolved
    new versions, with per-table change streams from the storage layer.

    Change streams are memoized: differentiation consults them once per
    Scan rule and once more for the insert-only consolidation-skip check,
    and the partition diff should only be paid once per refresh."""

    def __init__(self, catalog: Catalog,
                 old_versions: dict[str, TableVersion],
                 new_versions: dict[str, TableVersion]):
        self._catalog = catalog
        self._old = old_versions
        self._new = new_versions
        self._delta_cache: dict[str, ChangeSet] = {}

    def scan_old(self, table: str) -> Relation:
        versioned = self._catalog.versioned_table(table)
        return versioned.relation(self._old[table])

    def scan_new(self, table: str) -> Relation:
        versioned = self._catalog.versioned_table(table)
        return versioned.relation(self._new[table])

    def scan_old_pruned(self, table: str, bounds) -> Relation:
        versioned = self._catalog.versioned_table(table)
        return versioned.relation_pruned(self._old[table], bounds)

    def scan_new_pruned(self, table: str, bounds) -> Relation:
        versioned = self._catalog.versioned_table(table)
        return versioned.relation_pruned(self._new[table], bounds)

    def scan_delta(self, table: str) -> ChangeSet:
        cached = self._delta_cache.get(table)
        if cached is None:
            versioned = self._catalog.versioned_table(table)
            cached = changes_between(versioned, self._old[table],
                                     self._new[table])
            self._delta_cache[table] = cached
        return cached


class RefreshEngine:
    """Executes refreshes against a catalog + transaction manager."""

    def __init__(self, catalog: Catalog, txn_manager: TransactionManager,
                 registry: FunctionRegistry = DEFAULT_REGISTRY,
                 outer_join_strategy: str = OUTER_JOIN_DIRECT):
        self.catalog = catalog
        self.txn_manager = txn_manager
        self.registry = registry
        self.outer_join_strategy = outer_join_strategy
        #: Optimized defining plans keyed by (DT name, catalog epoch,
        #: registry version, query text). Any DDL bumps the epoch, a UDF
        #: (re-)registration bumps the registry version, and an ALTER of
        #: the DT's own query changes the query text — each changes the
        #: key, so stale plans are never served and age out of the LRU.
        self._plan_cache = PlanCache(limit=_PLAN_CACHE_LIMIT)
        #: Intra-refresh partition pool (None = fully serial refreshes).
        #: Installed thread-locally around each refresh, so partition
        #: diffs and aggregate-state scans fan out; distinct from any
        #: DAG-level coordinator pool, so a refresh running on a DAG
        #: worker never waits on the pool it occupies.
        self.partition_pool: Optional[WorkerPool] = None

    # -- public API ----------------------------------------------------------------

    def refresh(self, dt: DynamicTable,
                refresh_ts: Timestamp) -> RefreshRecord:
        """Run one refresh of ``dt`` at data timestamp ``refresh_ts``.

        Returns a :class:`RefreshRecord`; user errors are captured in the
        record (and counted toward auto-suspension) rather than raised —
        section 3.3.3: "If a refresh encounters a user error ... it fails
        and is not retried." *Transient* failures (lock conflicts,
        injected environmental faults) are retried under the DT's
        :class:`~repro.core.dynamic_table.RetryPolicy`, with exponential
        backoff modeled on the simulated clock.
        """
        record = RefreshRecord(data_timestamp=refresh_ts)
        dt.ensure_refreshable()
        policy = dt.retry_policy
        attempt = 0
        while True:
            try:
                self._attempt(dt, refresh_ts, record)
            except _RECORDED_ERRORS as exc:
                if is_transient(exc) and attempt < policy.max_retries:
                    # Transient failure with retry budget left: model the
                    # exponential backoff on the simulated clock (the
                    # scheduler folds backoff_total into the refresh's
                    # duration) and run a fresh attempt.
                    attempt += 1
                    record.retries = attempt
                    record.backoff_total += policy.delay(attempt)
                    record.reset_outcome()
                    continue
                record.error = f"{type(exc).__name__}: {exc}"
            break
        dt.record_refresh(record)
        return record

    def _attempt(self, dt: DynamicTable, refresh_ts: Timestamp,
                 record: RefreshRecord) -> None:
        """One refresh attempt in its own transaction. On *any* failure
        the transaction and the DT's aggregate state abort cleanly
        before the exception propagates — an internal error must never
        strand a begun agg-state refresh or a held table lock."""
        inject("refresh.execute", dt=dt.name, refresh_ts=refresh_ts)
        txn = self.txn_manager.begin(snapshot_wall=refresh_ts)
        try:
            txn.lock(dt.name)
            with partition_parallelism(self.partition_pool) as fanout:
                self._execute(dt, refresh_ts, record, txn)
            if fanout.tasks:
                record.parallel = {"partition_workers": fanout.workers,
                                   "partition_tasks": fanout.tasks}
        except BaseException:
            if txn.committed is None and not txn.aborted:
                txn.abort()
            if dt.agg_state is not None:
                # Accumulators may hold a partial fold of an interval that
                # never committed; drop them (also covered by the dirty
                # flag for exceptions that bypass this handler).
                dt.agg_state.abort_refresh()
            raise

    def build_plan(self, dt: DynamicTable) -> lp.PlanNode:
        """The DT's optimized defining plan against the current catalog.

        Cached per DT and keyed by (query text, catalog epoch, function
        registry version): section 5.4's rewrite pipeline only needs to
        re-run when the catalog or the UDF registry — and hence
        potentially name resolution, schemas, view expansions, or bound
        function implementations — has changed since the last refresh.
        Plans are immutable, so reuse across refreshes is safe."""
        key = (dt.name, self.catalog.epoch, self.registry.version,
               dt.query_text)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = optimize(build_plan(dt.query, self.catalog, self.registry))
            self._plan_cache.put(key, plan)
        return plan

    # -- internals --------------------------------------------------------------------

    def _execute(self, dt: DynamicTable, refresh_ts: Timestamp,
                 record: RefreshRecord, txn) -> None:
        decision = check_evolution(dt.dependencies, self.catalog)
        if decision.outcome == EvolutionOutcome.FAIL:
            raise UserError("; ".join(decision.reasons))

        plan = self.build_plan(dt)
        new_versions = self._resolve_sources(plan, refresh_ts)

        force_reinitialize = (
            decision.outcome == EvolutionOutcome.REINITIALIZE)

        if dt.frontier is None:
            action = RefreshAction.INITIAL
        elif force_reinitialize:
            action = RefreshAction.REINITIALIZE
        elif self._no_source_changed(dt, new_versions):
            action = RefreshAction.NO_DATA
        elif dt.effective_refresh_mode.value == "full":
            action = RefreshAction.FULL
        else:
            action = RefreshAction.INCREMENTAL
        record.action = action

        if action == RefreshAction.NO_DATA:
            # Mark progress only: commit an empty transaction and index the
            # current table version under the new data timestamp.
            frontier = self._frontier_for(refresh_ts, new_versions)
            if self.txn_manager.durability is not None:
                # The empty commit is still a durable event: recovery must
                # re-advance the frontier it installed.
                txn.wal_meta = {"dt": dt.name, "refresh_ts": refresh_ts,
                                "action": action, "frontier": frontier,
                                "record_deps": False}
            txn.commit()
            dt.table.register_refresh(refresh_ts, dt.table.current_version)
            dt.advance_frontier(frontier)
            record.frontier = frontier
            record.table_rows_after = dt.table.row_count()
            if dt.agg_state is not None:
                # No source moved, so the accumulators still describe the
                # (unchanged) child; only the interval token advances.
                dt.agg_state.note_no_data(refresh_ts)
            return

        ctx = EvalContext(timestamp=refresh_ts)
        agg_store = None
        if action == RefreshAction.INCREMENTAL:
            agg_store = self._agg_store_for(dt, plan)
            if agg_store is not None:
                agg_store.begin_refresh(self._state_fingerprint(dt),
                                        dt.frontier.data_timestamp)
            old_versions = self._frontier_versions(dt, new_versions)
            source = _FrontierDeltaSource(self.catalog, old_versions,
                                          new_versions)
            changes, stats = differentiate(
                plan, source, ctx,
                outer_join_strategy=self.outer_join_strategy,
                agg_state=agg_store)
            record.ivm_stats = stats
            record.source_rows_scanned = (stats.delta_rows_in
                                          + stats.endpoint_rows)
            txn.stage_changeset(dt.name, changes, overwrite=False)
            record.rows_inserted = len(changes.inserts())
            record.rows_deleted = len(changes.deletes())
        else:
            # INITIAL / REINITIALIZE / FULL: INSERT OVERWRITE from scratch.
            resolver = _VersionResolver(self.catalog, new_versions)
            result = evaluate(plan, resolver, ctx)
            record.source_rows_scanned = self._source_row_count(new_versions)
            changes = ChangeSet()
            for row_id, row in result.pairs():
                changes.insert(row_id, row)
            txn.stage_changeset(dt.name, changes, overwrite=True)
            record.rows_inserted = len(changes)
            record.rows_deleted = dt.table.row_count()

        frontier = self._frontier_for(refresh_ts, new_versions)
        if self.txn_manager.durability is not None:
            txn.wal_meta = {
                "dt": dt.name, "refresh_ts": refresh_ts, "action": action,
                "frontier": frontier,
                "record_deps": action in (RefreshAction.INITIAL,
                                          RefreshAction.REINITIALIZE)}
        txn.commit()
        if agg_store is not None:
            # The merge committed: the accumulators now describe the
            # interval end. (On abort this is never reached, and the
            # store's dirty flag forces reinitialization instead.)
            agg_store.commit_refresh(refresh_ts)
        elif dt.agg_state is not None:
            # FULL / INITIAL / REINITIALIZE rebuilt the table from
            # scratch (or the stateless ablation is pinned): any carried
            # accumulators are stale.
            dt.agg_state.invalidate(f"{action.value} refresh")
        dt.table.register_refresh(refresh_ts, dt.table.current_version)
        dt.advance_frontier(frontier)
        record.frontier = frontier
        record.table_rows_after = dt.table.row_count()
        if action in (RefreshAction.INITIAL, RefreshAction.REINITIALIZE):
            # Re-record dependency metadata so evolution stops firing.
            dt.dependencies = record_dependencies(dt.query, self.catalog)

    def _agg_store_for(self, dt: DynamicTable,
                       plan: lp.PlanNode):
        """The DT's aggregate state store for this refresh, or None when
        the refresh must run stateless: no aggregate-class nodes in the
        plan, or the :func:`~repro.ivm.aggstate.force_stateless` ablation
        is pinned (a stateless refresh moves the frontier without folding,
        so the commit path invalidates any carried store rather than let
        it describe a stale interval)."""
        from repro.ivm.aggstate import stateless_forced

        if stateless_forced():
            return None
        if not any(isinstance(node, (lp.Aggregate, lp.Distinct))
                   for node in plan.walk()):
            return None
        return dt.agg_state_store()

    def _state_fingerprint(self, dt: DynamicTable) -> tuple:
        """What the aggregate state's validity is pinned to: any DDL
        (catalog epoch), any UDF (re-)registration, or an ALTER of the
        DT's own query invalidates carried accumulators."""
        return (self.catalog.epoch, self.registry.version, dt.query_text)

    def _resolve_sources(self, plan: lp.PlanNode,
                         refresh_ts: Timestamp) -> dict[str, TableVersion]:
        versions: dict[str, TableVersion] = {}
        for table_name in set(lp.scans_of(plan)):
            entry = self.catalog.get(table_name)
            versioned = self.catalog.versioned_table(table_name)
            if entry.kind == "dynamic table":
                upstream = entry.payload
                assert isinstance(upstream, DynamicTable)
                upstream.ensure_readable()
                # Exact-match resolution (section 6.1, validation 1).
                versions[table_name] = versioned.version_for_refresh(refresh_ts)
            else:
                versions[table_name] = versioned.version_at(refresh_ts)
        return versions

    def _frontier_versions(self, dt: DynamicTable,
                           new_versions: dict[str, TableVersion],
                           ) -> dict[str, TableVersion]:
        assert dt.frontier is not None
        old_versions: dict[str, TableVersion] = {}
        for table_name in new_versions:
            cursor = dt.frontier.cursor(table_name)
            versioned = self.catalog.versioned_table(table_name)
            if cursor is None:
                # A new source appeared without evolution noticing; treat
                # the empty version 0 as the starting point.
                old_versions[table_name] = versioned.version(0)
            else:
                old_versions[table_name] = versioned.version(cursor.version_index)
        return old_versions

    def _no_source_changed(self, dt: DynamicTable,
                           new_versions: dict[str, TableVersion]) -> bool:
        """The NO_DATA test: every source's resolved version equals the
        frontier cursor (section 5.4: "we determine this by looking at the
        metadata and version history of the underlying tables")."""
        assert dt.frontier is not None
        for table_name, version in new_versions.items():
            cursor = dt.frontier.cursor(table_name)
            if cursor is None or cursor.version_index != version.index:
                return False
        return True

    def _frontier_for(self, refresh_ts: Timestamp,
                      versions: dict[str, TableVersion]) -> Frontier:
        cursors = {
            name: SourceCursor(name, version.index, version.commit_ts)
            for name, version in versions.items()}
        return Frontier(refresh_ts, cursors)

    def _source_row_count(self, versions: dict[str, TableVersion]) -> int:
        total = 0
        for name, version in versions.items():
            total += self.catalog.versioned_table(name).row_count(version)
        return total
