"""Cross-region replication of dynamic tables (section 3.4).

"Cross-region replication of DTs allows users to easily move data between
regions for sharing or disaster recovery, creating an unprecedented level
of simplicity for global, highly available data platforms."

A "region" here is another :class:`~repro.api.Database` instance.
Replication copies the *physical* state — partitions by reference (they
are immutable), row ids preserved — which is what keeps delayed view
semantics intact on the replica:

* base tables arrive as zero-copy clones;
* each DT arrives with its storage, frontier, and data timestamp, the
  frontier re-pointed at the replica's version indexes;
* because row ids are preserved, the replica's next **incremental**
  refresh merges cleanly against the replicated contents — a failed-over
  region resumes exactly where the primary left off (the disaster-recovery
  story), with no reinitialization.

Replication is a snapshot operation (as in Snowflake, where replication
ships refreshed state periodically); call :func:`replicate_subgraph` again
to advance the replica to the primary's newer state.
"""

from __future__ import annotations

from repro.api import Database
from repro.core.dynamic_table import DynamicTable, RefreshRecord
from repro.core.evolution import record_dependencies
from repro.core.frontier import Frontier, SourceCursor
from repro.core.graph import DependencyGraph
from repro.errors import CatalogError, NotInitializedError


def replicate_subgraph(primary: Database, secondary: Database,
                       dt_names: list[str]) -> None:
    """Replicate the given DTs and everything they depend on.

    The replica's clock is advanced to the primary's so replicated data
    timestamps are in the replica's past. Warehouses referenced by the
    replicated DTs are created on the replica if missing (size 1 — the
    replica's operator re-sizes as needed).
    """
    if secondary.now < primary.now:
        secondary.clock.advance_to(primary.now)

    graph = DependencyGraph(primary.catalog)
    ordered: list[DynamicTable] = []
    seen: set[str] = set()
    for name in dt_names:
        for upstream in graph.upstream_closure(name):
            if upstream.name not in seen:
                seen.add(upstream.name)
                ordered.append(upstream)
        dt = primary.dynamic_table(name)
        if dt.name not in seen:
            seen.add(dt.name)
            ordered.append(dt)

    # Base tables first: the union of every replicated DT's dependencies.
    base_tables: set[str] = set()
    for dt in ordered:
        for dependency in dt.dependencies.values():
            if dependency.kind == "table":
                base_tables.add(dependency.name)
            elif dependency.kind == "view":
                _replicate_view(primary, secondary, dependency.name)
    for table_name in sorted(base_tables):
        _replicate_base_table(primary, secondary, table_name)

    for dt in ordered:
        _replicate_dynamic_table(primary, secondary, dt)


def _replicate_view(primary: Database, secondary: Database,
                    name: str) -> None:
    if secondary.catalog.exists(name):
        return
    definition = primary.catalog.view_definition(name)
    if definition is not None:
        secondary.catalog.create_view(name, "", definition)


def _replicate_base_table(primary: Database, secondary: Database,
                          name: str) -> None:
    source = primary.catalog.versioned_table(name)
    commit_ts = secondary.txns.hlc.now()
    if secondary.catalog.exists(name):
        # Refresh an existing replica: overwrite its contents with the
        # primary's current rows, preserving row ids.
        target = secondary.catalog.versioned_table(name)
        from repro.ivm.changes import ChangeSet
        from repro.storage.table import StagedWrite

        changes = ChangeSet()
        for row_id, row in source.relation().pairs():
            changes.insert(row_id, row)
        target.apply(StagedWrite(changeset=changes, overwrite=True),
                     commit_ts)
        return
    clone = source.clone(name, secondary.catalog.allocate_table_seq(),
                         commit_ts)
    secondary.catalog.create_table_entry(name, clone)


def _replicate_dynamic_table(primary: Database, secondary: Database,
                             dt: DynamicTable) -> None:
    if not dt.initialized or dt.frontier is None:
        raise NotInitializedError(
            f"cannot replicate uninitialized dynamic table {dt.name!r}")
    if secondary.catalog.exists(dt.name):
        raise CatalogError(
            f"{dt.name!r} already exists on the replica; drop it first")
    if not secondary.warehouses.exists(dt.warehouse):
        secondary.create_warehouse(dt.warehouse)

    commit_ts = secondary.txns.hlc.now()
    storage = dt.table.clone(dt.name,
                             secondary.catalog.allocate_table_seq(),
                             commit_ts)
    data_ts = dt.frontier.data_timestamp
    storage.register_refresh(data_ts, storage.current_version)

    replica = DynamicTable(
        name=dt.name, query_text=dt.query_text, query=dt.query,
        target_lag=dt.target_lag, warehouse=dt.warehouse,
        refresh_mode=dt.refresh_mode, table=storage,
        dependencies={}, incremental_supported=dt.incremental_supported,
        incremental_reasons=list(dt.incremental_reasons))
    replica.hidden = dt.hidden
    secondary.catalog.create_dynamic_entry(dt.name, replica)

    # Dependencies and the frontier are re-pointed at the replica's
    # catalog entities and version indexes.
    replica.dependencies = record_dependencies(dt.query, secondary.catalog)
    cursors = {}
    for source_name in dt.frontier.cursors:
        table = secondary.catalog.versioned_table(source_name)
        version = table.current_version
        cursors[source_name] = SourceCursor(source_name, version.index,
                                            version.commit_ts)
    replica.frontier = Frontier(data_ts, cursors)
    replica.initialized = True
    marker = RefreshRecord(data_timestamp=data_ts)
    marker.frontier = replica.frontier
    marker.table_rows_after = storage.row_count()
    replica.refresh_history.append(marker)
