"""Initialization timestamp selection (section 3.1.2 of the paper).

"Initializations present a challenge. ... a very common pattern for
creating DTs is to create them in dependency order. ... Choosing a new
timestamp for each initialization would refresh train_arrivals twice for
no reason, and the number of refreshes increases quadratically with the
depth of the graph. Therefore, Snowflake chooses an initialization
timestamp to minimize the amount of wasted computation: the most recent
data timestamp of its upstream DTs that is within the target lag, or the
creation time if none exists. This approach ... has the counterintuitive
consequence that a DT created at t might be initialized to a data
timestamp of t' < t."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dynamic_table import DynamicTable
from repro.util.timeutil import Duration, Timestamp


@dataclass(frozen=True)
class InitializationChoice:
    """The chosen initialization data timestamp.

    ``requires_upstream_refresh`` is True when no reusable upstream
    timestamp existed, so every upstream DT must first be refreshed at
    this (new) timestamp.
    """

    data_timestamp: Timestamp
    requires_upstream_refresh: bool


def choose_initialization_timestamp(
        upstream_dts: list[DynamicTable], creation_time: Timestamp,
        target_lag: Duration | None) -> InitializationChoice:
    """Pick the initialization data timestamp for a new DT.

    A candidate timestamp must be available on **every** upstream DT
    (exact refresh-timestamp match, so snapshot isolation holds across
    the whole upstream set). Among those, pick the most recent one within
    the target lag of the creation time; if none qualifies, fall back to
    the creation time, which forces upstream refreshes.
    """
    if not upstream_dts:
        return InitializationChoice(creation_time, False)

    common: set[Timestamp] | None = None
    for upstream in upstream_dts:
        available = set(upstream.table.refresh_timestamps())
        common = available if common is None else (common & available)
    candidates = sorted(common or ())

    cutoff = creation_time - target_lag if target_lag is not None else None
    usable = [ts for ts in candidates
              if ts <= creation_time and (cutoff is None or ts >= cutoff)]
    if usable:
        return InitializationChoice(usable[-1], False)
    return InitializationChoice(creation_time, True)
