"""Frontiers: per-source progress tracking (section 5.3 of the paper).

"Each time a DT refreshes, its data timestamp moves forward in time. But
the data timestamp is an abstraction over a more complicated object we
call a frontier. A frontier is a map containing the table version of each
source table that the DT has consumed, and an HLC timestamp of that
refresh."

The frontier is what an incremental refresh differentiates *from*: the
interval of a refresh is (frontier versions, newly resolved versions] per
source. It also carries the debugging value the paper mentions — when
versions are mistracked, the frontier pinpoints which source diverged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.txn.hlc import HlcTimestamp
from repro.util.timeutil import Timestamp


@dataclass(frozen=True)
class SourceCursor:
    """The consumed position in one source table."""

    table: str
    version_index: int
    commit_ts: HlcTimestamp


@dataclass(frozen=True)
class Frontier:
    """A consistent set of consumed source versions at one data timestamp."""

    data_timestamp: Timestamp
    cursors: dict[str, SourceCursor] = field(default_factory=dict)

    def cursor(self, table: str) -> SourceCursor | None:
        return self.cursors.get(table)

    def tables(self) -> list[str]:
        return sorted(self.cursors)

    def advanced_from(self, other: "Frontier") -> list[str]:
        """The sources whose versions moved relative to ``other`` —
        exactly the tables an incremental refresh must read deltas for."""
        moved = []
        for table, cursor in self.cursors.items():
            previous = other.cursor(table)
            if previous is None or previous.version_index != cursor.version_index:
                moved.append(table)
        return sorted(moved)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        positions = ", ".join(
            f"{table}@v{cursor.version_index}"
            for table, cursor in sorted(self.cursors.items()))
        return f"Frontier(t={self.data_timestamp}, {positions})"
