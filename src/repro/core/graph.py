"""The dynamic-table dependency graph.

Section 3.1.2 of the paper: "Read dependencies between DTs induce a
directed acyclic graph, where tables, views, and DTs are vertices, and
edges represent dataflow between them."

The graph is rendered from the catalog (the paper's scheduler consumes
the DDL log to do the same). It provides:

* upstream/downstream navigation and topological ordering,
* cycle rejection (section 3.1.1: "Cycles are not allowed"),
* **effective lag resolution** for DOWNSTREAM target lags (section 3.2:
  "automatically aligns the table's lag with the minimum target lag of
  its downstream dependencies"),
* connected components of DTs, which the scheduler aligns to shared
  refresh periods (section 5.2).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.dynamic_table import DynamicTable
from repro.core.lag import TargetLag
from repro.errors import CycleError
from repro.plan import logical as lp
from repro.storage.catalog import Catalog
from repro.util.timeutil import Duration


class DependencyGraph:
    """A snapshot of the DT dependency DAG rendered from a catalog."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        #: dt name -> names of upstream entities it reads (tables and DTs).
        self.upstream: dict[str, set[str]] = {}
        #: entity name -> names of DTs that read it.
        self.downstream: dict[str, set[str]] = {}
        self.dynamic_tables: dict[str, DynamicTable] = {}
        self._render()

    def _render(self) -> None:
        for entry in self._catalog.entries(kind="dynamic table"):
            dt = entry.payload
            assert isinstance(dt, DynamicTable)
            self.dynamic_tables[dt.name] = dt
            sources = set(dt.dependencies)
            self.upstream[dt.name] = sources
            for source in sources:
                self.downstream.setdefault(source, set()).add(dt.name)
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        # Only DT→DT edges can form cycles (base tables have no upstream).
        state: dict[str, int] = {}

        def visit(name: str, stack: list[str]) -> None:
            status = state.get(name, 0)
            if status == 1:
                cycle = " -> ".join(stack + [name])
                raise CycleError(f"dynamic table cycle: {cycle}")
            if status == 2:
                return
            state[name] = 1
            for upstream_name in self.upstream.get(name, ()):
                if upstream_name in self.dynamic_tables:
                    visit(upstream_name, stack + [name])
            state[name] = 2

        for name in self.dynamic_tables:
            visit(name, [])

    # -- navigation ---------------------------------------------------------------

    def upstream_dts(self, name: str) -> list[DynamicTable]:
        """The DTs directly upstream of ``name``."""
        return [self.dynamic_tables[source]
                for source in sorted(self.upstream.get(name, ()))
                if source in self.dynamic_tables]

    def downstream_dts(self, name: str) -> list[DynamicTable]:
        return [self.dynamic_tables[sink]
                for sink in sorted(self.downstream.get(name, ()))]

    def upstream_closure(self, name: str) -> list[DynamicTable]:
        """All DTs transitively upstream of ``name`` (excluding itself),
        in topological (leaf-first) order — the set a manual refresh must
        refresh first (section 3.1.2)."""
        ordered = self.topological_order()
        closure: set[str] = set()

        def collect(target: str) -> None:
            for dt in self.upstream_dts(target):
                if dt.name not in closure:
                    closure.add(dt.name)
                    collect(dt.name)

        collect(name)
        return [dt for dt in ordered if dt.name in closure]

    def topological_order(self) -> list[DynamicTable]:
        """All DTs, upstream before downstream."""
        visited: set[str] = set()
        ordered: list[DynamicTable] = []

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            for dt in self.upstream_dts(name):
                visit(dt.name)
            ordered.append(self.dynamic_tables[name])

        for name in sorted(self.dynamic_tables):
            visit(name)
        return ordered

    def connected_components(self) -> list[list[DynamicTable]]:
        """Connected components of the DT↔DT graph (ignoring direction).

        Section 5.2: "All DTs in that component are frequently forced to
        refresh at the same data timestamp" — the scheduler aligns periods
        per component.
        """
        neighbours: dict[str, set[str]] = {name: set()
                                           for name in self.dynamic_tables}
        for name in self.dynamic_tables:
            for dt in self.upstream_dts(name):
                neighbours[name].add(dt.name)
                neighbours[dt.name].add(name)

        seen: set[str] = set()
        components: list[list[DynamicTable]] = []
        for name in sorted(self.dynamic_tables):
            if name in seen:
                continue
            component: list[str] = []
            frontier = [name]
            while frontier:
                current = frontier.pop()
                if current in seen:
                    continue
                seen.add(current)
                component.append(current)
                frontier.extend(neighbours[current] - seen)
            components.append([self.dynamic_tables[member]
                               for member in sorted(component)])
        return components

    # -- lag resolution --------------------------------------------------------------

    def effective_lag(self, name: str) -> Optional[Duration]:
        """The effective target lag in nanoseconds.

        For a duration lag this is the duration. For DOWNSTREAM it is the
        minimum effective lag of the downstream DTs (section 3.2); a
        DOWNSTREAM DT with no downstream consumers has no effective lag
        (it refreshes only on demand) — represented as None.
        """
        return self._effective_lag(name, visiting=set())

    def _effective_lag(self, name: str,
                       visiting: set[str]) -> Optional[Duration]:
        dt = self.dynamic_tables[name]
        lag: TargetLag = dt.target_lag
        if not lag.is_downstream:
            return lag.duration
        if name in visiting:
            raise CycleError(f"DOWNSTREAM lag cycle through {name!r}")
        visiting.add(name)
        candidates = [
            self._effective_lag(downstream.name, visiting)
            for downstream in self.downstream_dts(name)]
        visiting.discard(name)
        concrete = [lag for lag in candidates if lag is not None]
        if not concrete:
            return None
        return min(concrete)
