"""Automatic query fragmentation: hidden intermediate dynamic tables.

Section 5.5.3 of the paper lists this as planned work: "a DT is not
currently able to maintain intermediate state to accelerate incremental
refreshes. We rely on customers to factor their queries into simpler
fragments, but this can be toilsome. We intend to automatically split
queries into fragments, with hidden, internal DTs containing the
intermediate state."

This module implements the UNION ALL case of that plan. Given

.. code-block:: sql

   CREATE DYNAMIC TABLE d ... AS
       SELECT ... FROM a ...          -- branch 0
       UNION ALL SELECT ... FROM b    -- branch 1 (maybe not differentiable)

fragmentation creates one **hidden** DT per branch
(``_d$frag0``, ``_d$frag1``, TARGET_LAG = DOWNSTREAM, same warehouse) and
redefines ``d`` as the union of fragment scans. Benefits realized:

* **independent refresh modes** — a branch containing, say, a scalar
  aggregate runs FULL while the other branches stay INCREMENTAL; without
  fragmentation one bad branch forces the *whole* query to FULL;
* **persisted intermediate state** — each branch's result is stored, so
  the union itself is a trivially linear (cheapest possible) derivative.

Fragment DTs are ordinary catalog citizens (visible to the scheduler and
the dependency graph) but named with a ``_``/``$`` convention and flagged
as hidden so user-facing listings can filter them.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sql import nodes as n


def fragment_name(dt_name: str, index: int) -> str:
    """The hidden fragment's catalog name."""
    return f"_{dt_name}$frag{index}"


def is_fragment_name(name: str) -> bool:
    return name.startswith("_") and "$frag" in name


def split_union(query: n.Select) -> list[n.Select] | None:
    """Split a top-level UNION ALL into its branch queries.

    Returns None when the query is not fragmentable: no UNION ALL, or a
    top-level ORDER BY / LIMIT (whose semantics span the whole union and
    cannot move into a branch).
    """
    if not query.union_all:
        return None
    if query.order_by or query.limit is not None:
        return None
    first = replace(query, union_all=(), order_by=(), limit=None)
    return [first, *query.union_all]


def union_of_fragments(dt_name: str,
                       branch_schemas: list[list[str]]) -> n.Select:
    """The rewritten main query: SELECT cols FROM _d$frag0 UNION ALL ...

    Selecting explicit columns (not ``*``) keeps the output schema pinned
    even if a fragment is later replaced; each branch selects its own
    fragment's column names (UNION ALL is positional).
    """
    def branch(index: int) -> n.Select:
        items = tuple(n.SelectItem(n.Name(column), None)
                      for column in branch_schemas[index])
        return n.Select(items=items,
                        from_=n.NamedTable(fragment_name(dt_name, index)))

    first = branch(0)
    rest = tuple(branch(index) for index in range(1, len(branch_schemas)))
    return replace(first, union_all=rest)
