"""Zero-copy cloning of tables and dynamic tables (section 3.4).

"Snowflake supports zero-copy-cloning, whereby a new table, schema, or
database is created with the contents of another by copying only its
metadata. ... When such an operation is performed, a whole subgraph of DTs
is moved or created. Our implementation preserves delayed view semantics,
continuing unperturbed if unaffected or reinitializing if the operation
replaced any of their dependencies. Cloned DTs can avoid reinitialization
in many cases."

Semantics implemented here:

* **table clone** — a new :class:`VersionedTable` sharing the source's
  immutable partitions by reference;
* **dynamic-table clone** — clones the storage *and* the refresh state:
  the frontier and the refresh-timestamp index carry over, so the clone's
  dependency records still match the (shared) upstream entities and its
  next refresh proceeds **incrementally from the copied frontier** — the
  "avoid reinitialization" case. A clone is suspended/resumed
  independently and diverges from its source after creation.
"""

from __future__ import annotations

import copy

from repro.core.dynamic_table import DynamicTable, RefreshRecord
from repro.errors import CatalogError, NotInitializedError
from repro.storage.catalog import Catalog
from repro.txn.hlc import HlcTimestamp


def clone_table(catalog: Catalog, source_name: str, clone_name: str,
                commit_ts: HlcTimestamp) -> None:
    """``CREATE TABLE clone_name CLONE source_name``."""
    entry = catalog.get(source_name)
    if entry.kind != "table":
        raise CatalogError(
            f"{source_name!r} is a {entry.kind}; use the matching CLONE form")
    source = catalog.versioned_table(source_name)
    cloned = source.clone(clone_name, catalog.allocate_table_seq(), commit_ts)
    catalog.create_table_entry(clone_name, cloned, owner=entry.owner)


def clone_dynamic_table(catalog: Catalog, source_name: str, clone_name: str,
                        commit_ts: HlcTimestamp) -> DynamicTable:
    """``CREATE DYNAMIC TABLE clone_name CLONE source_name``.

    The clone keeps the source's defining query, target lag, warehouse,
    refresh mode, dependency records, frontier, and data timestamp — so
    it is immediately readable and its next refresh differentiates from
    the copied frontier instead of reinitializing.
    """
    entry = catalog.get(source_name)
    if entry.kind != "dynamic table":
        raise CatalogError(f"{source_name!r} is not a dynamic table")
    source = entry.payload
    assert isinstance(source, DynamicTable)
    if not source.initialized or source.frontier is None:
        raise NotInitializedError(
            f"cannot clone uninitialized dynamic table {source_name!r}")

    cloned_storage = source.table.clone(
        clone_name, catalog.allocate_table_seq(), commit_ts)
    # The clone is readable at the source's data timestamp: index the
    # cloned version under it so downstream exact lookups succeed.
    cloned_storage.register_refresh(source.frontier.data_timestamp,
                                    cloned_storage.current_version)

    clone = DynamicTable(
        name=clone_name,
        query_text=source.query_text,
        query=source.query,
        target_lag=source.target_lag,
        warehouse=source.warehouse,
        refresh_mode=source.refresh_mode,
        table=cloned_storage,
        dependencies=dict(source.dependencies),
        incremental_supported=source.incremental_supported,
        incremental_reasons=list(source.incremental_reasons))
    clone.frontier = copy.deepcopy(source.frontier)
    clone.initialized = True
    # Start the history with a marker record mirroring the source's state.
    marker = RefreshRecord(
        data_timestamp=source.frontier.data_timestamp,
        action=source.refresh_history[-1].action
        if source.refresh_history else None)
    marker.frontier = clone.frontier
    marker.table_rows_after = cloned_storage.row_count()
    clone.refresh_history.append(marker)

    catalog.create_dynamic_entry(clone_name, clone, owner=entry.owner)
    return clone
