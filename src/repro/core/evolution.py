"""Query evolution: detecting and compensating for upstream DDL.

Section 5.4 of the paper: "When a DT is created, we track all of its
dependencies and store them as metadata for the DT. ... During a refresh,
the DT may have different columns (e.g., for a top-level SELECT *) or
altogether different semantics (e.g., changing a filter or reading from a
different table) due to DDLs on objects upstream. Query evolution
determines how to compensate for the changes, whether via DDL actions or
overriding the refresh action. Our approach is currently conservative,
choosing to reinitialize in some cases where it is not necessary."

Decisions:

* every recorded dependency still exists, same generation, same schema →
  proceed normally;
* a dependency was **replaced** (generation bump) or its schema changed →
  **REINITIALIZE** (conservative, like the paper);
* a dependency is missing or dropped → the refresh **fails** — and
  recovers automatically once the entity is UNDROPped or recreated under
  the same name (section 3.4's two principles: upstream precedence,
  automatic recovery).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.dynamic_table import DependencyRecord
from repro.errors import EntityNotFound
from repro.sql import nodes as n
from repro.storage.catalog import Catalog


class EvolutionOutcome(enum.Enum):
    PROCEED = "proceed"
    REINITIALIZE = "reinitialize"
    FAIL = "fail"


@dataclass
class EvolutionDecision:
    outcome: EvolutionOutcome
    reasons: list[str] = field(default_factory=list)


def collect_source_names(query: n.Select, catalog: Catalog,
                         _seen: set[str] | None = None) -> set[str]:
    """All catalog entities a query reads: tables, dynamic tables, and
    views (views recursively contribute their own sources *and* appear as
    dependencies themselves — replacing a view must reinitialize
    downstream DTs)."""
    seen = _seen if _seen is not None else set()
    names: set[str] = set()

    def from_ref(ref: n.TableRef | None) -> None:
        if ref is None:
            return
        if isinstance(ref, n.NamedTable):
            names.add(ref.name)
            if ref.name not in seen:
                seen.add(ref.name)
                view_query = catalog.view_definition(ref.name)
                if view_query is not None:
                    names.update(collect_source_names(view_query, catalog, seen))
        elif isinstance(ref, n.SubqueryRef):
            names.update(collect_source_names(ref.query, catalog, seen))
        elif isinstance(ref, n.JoinRef):
            from_ref(ref.left)
            from_ref(ref.right)
        elif isinstance(ref, n.FlattenRef):
            from_ref(ref.source)

    def from_select(select: n.Select) -> None:
        from_ref(select.from_)
        for core in select.union_all:
            from_select(core)

    from_select(query)
    return names


def record_dependencies(query: n.Select,
                        catalog: Catalog) -> dict[str, DependencyRecord]:
    """Capture the dependency metadata stored on a DT at creation (and
    re-captured after INITIAL / REINITIALIZE refreshes)."""
    records: dict[str, DependencyRecord] = {}
    for name in sorted(collect_source_names(query, catalog)):
        entry = catalog.get(name)  # raises if missing — creation must fail
        if entry.kind == "view":
            schema = None
        else:
            schema = catalog.versioned_table(name).schema
        used = tuple(schema.names) if schema is not None else ()
        records[name] = DependencyRecord(
            name=name, kind=entry.kind, entity_id=entry.entity_id,
            schema=schema, used_columns=used)
    return records


def check_evolution(dependencies: dict[str, DependencyRecord],
                    catalog: Catalog) -> EvolutionDecision:
    """Compare recorded dependencies against the current catalog."""
    reasons: list[str] = []
    outcome = EvolutionOutcome.PROCEED
    for name, record in dependencies.items():
        try:
            entry = catalog.get(name)
        except EntityNotFound as exc:
            return EvolutionDecision(EvolutionOutcome.FAIL, [str(exc)])
        if entry.kind != record.kind:
            return EvolutionDecision(
                EvolutionOutcome.FAIL,
                [f"dependency {name!r} changed kind: "
                 f"{record.kind} -> {entry.kind}"])
        if entry.entity_id != record.entity_id:
            outcome = EvolutionOutcome.REINITIALIZE
            reasons.append(f"dependency {name!r} was replaced or "
                           "recreated under the same name")
            continue
        if record.schema is not None:
            current = catalog.versioned_table(name).schema
            if current.names != list(record.schema.names) or (
                    current.types != list(record.schema.types)):
                outcome = EvolutionOutcome.REINITIALIZE
                reasons.append(f"dependency {name!r} changed schema")
    return EvolutionDecision(outcome, reasons)
