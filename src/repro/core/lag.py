"""Target lag (section 3.2 of the paper).

"Dynamic Tables support two types of target lags: a duration or
DOWNSTREAM. Durations (minimum of 1 minute ...) specify a time-based lag
limit, subject to upstream table constraints. The DOWNSTREAM option
automatically aligns the table's lag with the minimum target lag of its
downstream dependencies."

Lag itself is "the difference between the current time and the table's
data timestamp"; helpers for measuring it live in
:mod:`repro.scheduler.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import UserError
from repro.util.timeutil import Duration, MINUTE, format_duration, parse_duration

#: The minimum supported duration target lag (section 3.2: "minimum of
#: 1 minute, support for lower values is in early testing").
MIN_TARGET_LAG: Duration = MINUTE


@dataclass(frozen=True)
class TargetLag:
    """Either a concrete duration or the DOWNSTREAM marker.

    ``duration`` is None iff the lag is DOWNSTREAM.
    """

    duration: Optional[Duration]

    @property
    def is_downstream(self) -> bool:
        return self.duration is None

    @staticmethod
    def downstream() -> "TargetLag":
        return TargetLag(None)

    @staticmethod
    def of(duration: Duration) -> "TargetLag":
        if duration < MIN_TARGET_LAG:
            raise UserError(
                f"target lag must be at least {format_duration(MIN_TARGET_LAG)}")
        return TargetLag(duration)

    @staticmethod
    def parse(text: str) -> "TargetLag":
        """Parse the DDL form: ``'1 minute'`` or ``DOWNSTREAM``."""
        if text.strip().lower() == "downstream":
            return TargetLag.downstream()
        return TargetLag.of(parse_duration(text))

    def __str__(self) -> str:
        if self.duration is None:
            return "DOWNSTREAM"
        return format_duration(self.duration)
