"""Dynamic tables: the entity, refresh engine, graph, and lifecycle."""

from repro.core.dynamic_table import (DynamicTable, RefreshAction,
                                      RefreshMode, RefreshRecord)
from repro.core.graph import DependencyGraph
from repro.core.lag import TargetLag
from repro.core.refresh import RefreshEngine

__all__ = ["DependencyGraph", "DynamicTable", "RefreshAction",
           "RefreshEngine", "RefreshMode", "RefreshRecord", "TargetLag"]
