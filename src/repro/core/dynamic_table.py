"""The Dynamic Table entity.

A DT (section 3 of the paper) is "a table in the Snowflake RDBMS, and its
contents are the result of its defining query at some point in the past.
To create it, a user provides a SELECT query, a target lag duration, and a
virtual warehouse in which to execute refreshes."

This module holds the entity's state machine; the refresh algorithms live
in :mod:`repro.core.refresh` and the orchestration in
:mod:`repro.scheduler`.

State tracked per DT:

* the **data timestamp** / **frontier** (sections 3.1.1 and 5.3);
* the requested and *effective* refresh mode — requested AUTO resolves to
  INCREMENTAL when every operator in the defining query has a derivative
  rule, else FULL (section 3.3.2);
* the **dependency records** captured at creation ("When a DT is created,
  we track all of its dependencies and store them as metadata", section
  5.4) — generations and schemas that query evolution compares;
* suspension and the consecutive-failure counter (section 3.3.3: "If the
  counter exceeds a threshold, the DT is automatically suspended");
* the refresh history, from which lag metrics are measured;
* the **aggregate state store** (:mod:`repro.ivm.aggstate`) — per-group
  retractable accumulators carried across incremental refreshes, lazily
  created by the refresh engine and versioned with the refresh interval.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.frontier import Frontier
from repro.core.lag import TargetLag
from repro.engine.schema import Schema
from repro.errors import NotInitializedError, SuspendedError, UserError
from repro.ivm.differentiator import DifferentiationStats
from repro.sql import nodes as n
from repro.storage.table import VersionedTable
from repro.util.timeutil import (MINUTE, SECOND, Timestamp, format_duration,
                                 parse_duration)

#: Consecutive refresh failures before automatic suspension
#: (section 3.3.3). Snowflake uses five; so do we. Per-DT overridable
#: via ``error_threshold`` (``ALTER DYNAMIC TABLE ... SET``).
MAX_CONSECUTIVE_FAILURES = 5


@dataclass(frozen=True)
class RetryPolicy:
    """Per-DT retry behavior for *transient* refresh failures.

    Section 3.3.3 retries nothing that is a user error; environmental
    failures (lock conflicts, injected storage/WAL/worker faults) are
    retried up to ``max_retries`` times with exponential backoff. The
    backoff runs on the **simulated clock**: each retry's delay is
    modeled into the refresh record (``backoff_total``) and accounted by
    the scheduler like any other refresh cost — no wall-clock sleeping.
    """

    max_retries: int = 0
    backoff_base: Timestamp = 8 * SECOND
    backoff_factor: int = 2
    backoff_cap: Timestamp = 5 * MINUTE

    def delay(self, attempt: int) -> Timestamp:
        """Modeled delay before retry ``attempt`` (1-based)."""
        return min(self.backoff_base * self.backoff_factor ** (attempt - 1),
                   self.backoff_cap)


class RefreshMode(enum.Enum):
    """The user-requested refresh mode."""

    AUTO = "auto"
    FULL = "full"
    INCREMENTAL = "incremental"


class RefreshAction(enum.Enum):
    """What a refresh actually did (section 3.3.2)."""

    NO_DATA = "no_data"
    FULL = "full"
    INCREMENTAL = "incremental"
    REINITIALIZE = "reinitialize"
    INITIAL = "initial"
    #: The tick was skipped because an upstream DT has no data at this
    #: timestamp *due to a failure* (it failed, is failing, or is
    #: suspended) — graceful degradation: the DT keeps serving its last
    #: consistent version, and the staleness is surfaced by
    #: :func:`repro.scheduler.liveness.staleness_report` and EXPLAIN.
    SKIPPED_UPSTREAM_FAILED = "skipped_upstream_failed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()


@dataclass(frozen=True)
class DependencyRecord:
    """What the DT believed about one upstream entity at creation time;
    compared at every refresh by query evolution (section 5.4)."""

    name: str
    kind: str            # table | view | dynamic table
    entity_id: int       # catalog identity; changes on replace/recreate
    schema: Optional[Schema]  # None for views (their query is re-expanded)
    used_columns: tuple[str, ...] = ()


@dataclass
class RefreshRecord:
    """One refresh attempt (successful, failed, or skipped).

    ``data_timestamp`` is v_i in the paper's Figure 4; ``start_wall`` /
    ``end_wall`` are s_i / e_i. The scheduler fills the wall times; the
    refresh engine fills the outcome.
    """

    data_timestamp: Timestamp
    action: Optional[RefreshAction] = None
    start_wall: Timestamp = 0
    end_wall: Timestamp = 0
    rows_inserted: int = 0
    rows_deleted: int = 0
    table_rows_after: int = 0
    source_rows_scanned: int = 0
    error: Optional[str] = None
    skipped: bool = False
    #: Transient-failure retries this refresh needed (RetryPolicy), and
    #: the total modeled backoff delay they added on the simulated
    #: clock. The scheduler folds ``backoff_total`` into the refresh's
    #: modeled duration.
    retries: int = 0
    backoff_total: Timestamp = 0
    ivm_stats: Optional[DifferentiationStats] = None
    #: The frontier installed by this refresh (None for skips/failures);
    #: lets the history recorder reconstruct derivation provenance.
    frontier: Optional[Frontier] = None
    #: Parallel-execution observability (None when fully serial): the
    #: engine contributes ``partition_workers`` / ``partition_tasks``
    #: (intra-refresh fan-out); the DAG-parallel scheduler adds ``wave``,
    #: ``waves``, and ``workers``. Surfaced by EXPLAIN.
    parallel: Optional[dict] = None

    def reset_outcome(self) -> None:
        """Clear the per-attempt outcome fields before a retry, so a
        failed attempt's partial stats never leak into the next one.
        Retry accounting (``retries`` / ``backoff_total``) survives."""
        self.action = None
        self.rows_inserted = 0
        self.rows_deleted = 0
        self.table_rows_after = 0
        self.source_rows_scanned = 0
        self.error = None
        self.ivm_stats = None
        self.frontier = None
        self.parallel = None

    @property
    def succeeded(self) -> bool:
        return self.error is None and not self.skipped

    @property
    def rows_changed(self) -> int:
        return self.rows_inserted + self.rows_deleted

    @property
    def duration(self) -> Timestamp:
        return self.end_wall - self.start_wall


class DynamicTable:
    """A dynamic table: defining query + target lag + warehouse + state."""

    def __init__(self, name: str, query_text: str, query: n.Select,
                 target_lag: TargetLag, warehouse: str,
                 refresh_mode: RefreshMode, table: VersionedTable,
                 dependencies: dict[str, DependencyRecord],
                 incremental_supported: bool,
                 incremental_reasons: list[str] | None = None):
        self.name = name
        self.query_text = query_text
        self.query = query
        self.target_lag = target_lag
        self.warehouse = warehouse
        self.refresh_mode = refresh_mode
        self.table = table
        self.dependencies = dependencies
        self.incremental_supported = incremental_supported
        self.incremental_reasons = incremental_reasons or []
        #: The static-analysis report of the defining query, attached by
        #: ``Database.create_dynamic_table`` (None for DTs built through
        #: other paths, e.g. cloning or replication).
        self.analysis = None

        self.initialized = False
        self.suspended = False
        #: Why the DT is suspended (auto-suspension records the failure
        #: trail; manual SUSPEND leaves None).
        self.suspended_reason: Optional[str] = None
        #: True for internal fragment DTs (section 5.5.3 extension);
        #: hidden DTs are filtered from user-facing listings.
        self.hidden = False
        self.consecutive_failures = 0
        #: Transient-failure retry behavior (section 3.3.3 retries no
        #: user errors; this governs everything else). Surfaced via
        #: ``Database.create_dynamic_table`` and ``ALTER DYNAMIC TABLE
        #: ... SET RETRIES/BACKOFF``.
        self.retry_policy = RetryPolicy()
        #: Consecutive failures before auto-suspension; per-DT override
        #: of MAX_CONSECUTIVE_FAILURES (``SET ERROR_THRESHOLD``).
        self.error_threshold = MAX_CONSECUTIVE_FAILURES
        self.frontier: Optional[Frontier] = None
        self.refresh_history: list[RefreshRecord] = []
        #: Per-group aggregate accumulators carried across incremental
        #: refreshes (:class:`repro.ivm.aggstate.AggStateStore`); created
        #: lazily by the refresh engine for plans with aggregate-class
        #: nodes, None otherwise.
        self.agg_state = None

    # -- derived properties -------------------------------------------------------

    @property
    def effective_refresh_mode(self) -> RefreshMode:
        """AUTO resolves to INCREMENTAL when the defining query is fully
        differentiable, else FULL (section 3.3.2)."""
        if self.refresh_mode == RefreshMode.AUTO:
            return (RefreshMode.INCREMENTAL if self.incremental_supported
                    else RefreshMode.FULL)
        return self.refresh_mode

    @property
    def data_timestamp(self) -> Optional[Timestamp]:
        """The DT's current data timestamp (None before initialization)."""
        if self.frontier is None:
            return None
        return self.frontier.data_timestamp

    @property
    def schema(self) -> Schema:
        return self.table.schema

    def lag_at(self, now: Timestamp) -> Optional[Timestamp]:
        """Current lag: now − data timestamp (section 3.2)."""
        data_ts = self.data_timestamp
        if data_ts is None:
            return None
        return now - data_ts

    # -- state transitions --------------------------------------------------------

    def ensure_readable(self) -> None:
        """Raise unless the DT can be queried (section 3.1: querying
        before initialization is an error)."""
        if not self.initialized:
            raise NotInitializedError(
                f"dynamic table {self.name!r} has not been initialized")

    def ensure_refreshable(self) -> None:
        if self.suspended:
            reason = (f" ({self.suspended_reason})"
                      if self.suspended_reason else "")
            raise SuspendedError(
                f"dynamic table {self.name!r} is suspended{reason}")

    def suspend(self) -> None:
        self.suspended = True

    def resume(self) -> None:
        """Resume a suspended DT; the failure counter resets so it gets a
        fresh error budget (section 3.3.3: "the DT can resume from where
        it left off once the cause is addressed")."""
        self.suspended = False
        self.suspended_reason = None
        self.consecutive_failures = 0

    def record_refresh(self, record: RefreshRecord) -> None:
        """Track a completed refresh attempt and update failure state
        (section 3.3.3: "If the counter exceeds a threshold, the DT is
        automatically suspended")."""
        self.refresh_history.append(record)
        if record.skipped:
            return
        if record.error is not None:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.error_threshold:
                self.suspended = True
                self.suspended_reason = (
                    f"auto-suspended after {self.consecutive_failures} "
                    f"consecutive refresh failures; last: {record.error}")
        else:
            self.consecutive_failures = 0

    def advance_frontier(self, frontier: Frontier) -> None:
        self.frontier = frontier
        self.initialized = True

    def agg_state_store(self):
        """The DT's aggregate state store, created on first use."""
        if self.agg_state is None:
            from repro.ivm.aggstate import AggStateStore

            self.agg_state = AggStateStore()
        return self.agg_state

    # -- reporting ------------------------------------------------------------------

    def successful_refreshes(self) -> list[RefreshRecord]:
        return [record for record in self.refresh_history if record.succeeded]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DynamicTable({self.name!r}, lag={self.target_lag}, "
                f"mode={self.effective_refresh_mode.value}, "
                f"data_ts={self.data_timestamp})")


# ---------------------------------------------------------------------------
# Failure-policy options (ALTER DYNAMIC TABLE ... SET k = v, ...)
# ---------------------------------------------------------------------------

#: Settable option keys and how their raw (string/int) values parse.
_OPTION_KEYS = ("retries", "backoff", "backoff_factor", "error_threshold")


def apply_policy_options(dt: DynamicTable,
                         options: dict[str, object]) -> None:
    """Apply failure-policy options to a DT. Shared by the ALTER
    dispatch, ``Database.create_dynamic_table``, and DDL replay, so the
    three paths cannot drift. Raises :class:`UserError` on unknown keys
    or malformed values."""
    from dataclasses import replace

    for key, raw in options.items():
        if key == "retries":
            count = _int_option(key, raw, minimum=0)
            dt.retry_policy = replace(dt.retry_policy, max_retries=count)
        elif key == "backoff":
            # A bare integer (raw nanoseconds) may round-trip through the
            # DDL log as a digit string; a duration string parses.
            if isinstance(raw, str) and not raw.strip().isdigit():
                duration = parse_duration(raw)
            else:
                duration = _int_option(key, raw, minimum=1)
            dt.retry_policy = replace(dt.retry_policy,
                                      backoff_base=duration)
        elif key == "backoff_factor":
            dt.retry_policy = replace(
                dt.retry_policy,
                backoff_factor=_int_option(key, raw, minimum=1))
        elif key == "error_threshold":
            dt.error_threshold = _int_option(key, raw, minimum=1)
        else:
            raise UserError(
                f"unknown dynamic table option {key!r} "
                f"(expected one of: {', '.join(_OPTION_KEYS)})")


def policy_options(dt: DynamicTable) -> dict[str, object]:
    """The DT's current failure-policy options, in the same shape
    ``apply_policy_options`` accepts (checkpoint serialization)."""
    return {
        "retries": dt.retry_policy.max_retries,
        "backoff": dt.retry_policy.backoff_base,
        "backoff_factor": dt.retry_policy.backoff_factor,
        "error_threshold": dt.error_threshold,
    }


def encode_option_detail(options: dict[str, object]) -> str:
    """Render SET options as the DDL-log detail string (``"set
    retries=2, backoff=10 seconds"``)."""
    body = ", ".join(f"{key}={value}" for key, value in options.items())
    return f"set {body}"


def decode_option_detail(detail: str) -> Optional[dict[str, str]]:
    """Parse a DDL-log alter detail back into options; None when the
    detail is not a SET (suspend/resume/refresh)."""
    if not detail.startswith("set "):
        return None
    options: dict[str, str] = {}
    for part in detail[len("set "):].split(", "):
        key, __, value = part.partition("=")
        options[key.strip()] = value.strip()
    return options


def describe_policy(dt: DynamicTable) -> str:
    """One-line human rendering (EXPLAIN / SHOW surfaces)."""
    policy = dt.retry_policy
    return (f"retries={policy.max_retries}, "
            f"backoff={format_duration(policy.backoff_base)}"
            f"×{policy.backoff_factor}, "
            f"error_threshold={dt.error_threshold}")


def _int_option(key: str, raw: object, minimum: int) -> int:
    try:
        value = int(raw)  # type: ignore[call-overload]
    except (TypeError, ValueError):
        raise UserError(f"option {key!r} needs an integer, "
                        f"got {raw!r}") from None
    if value < minimum:
        raise UserError(f"option {key!r} must be >= {minimum}")
    return value
