"""Exception hierarchy for the repro package.

The hierarchy deliberately mirrors the failure classes the paper discusses:

* user-visible SQL errors (parse/bind/type errors, division by zero),
* catalog errors (missing or duplicated entities, dropped upstreams),
* transactional errors (lock conflicts, missing versions),
* dynamic-table lifecycle errors (querying an uninitialized DT, suspended
  DTs, cycles in the dependency graph),
* internal invariant violations, which correspond to the production
  validations of section 6.1 of the paper (duplicate ``($ROW_ID, $ACTION)``
  pairs, deleting a row that does not exist, missing upstream versions).

``UserError`` subclasses are errors attributed to the user's query or data
(the paper: "If a refresh encounters a user error, such as division-by-zero,
it fails and is not retried"). ``InternalError`` subclasses indicate a bug in
this library and fail loudly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class UserError(ReproError):
    """An error attributable to the user's SQL, data, or configuration."""


class SqlError(UserError):
    """Base class for errors in the SQL frontend.

    Every SQL-frontend error carries an optional source position: the
    1-based ``line`` and ``column`` of the offending token. Parse errors
    set it at construction; bind and type errors usually acquire it after
    the fact via :meth:`with_location`, from the span of the AST node the
    binder was working on when the error surfaced.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        location = f" at line {line}, column {column}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column

    def with_location(self, line: int | None,
                      column: int | None) -> "SqlError":
        """Attach a source position when none is known yet (the innermost
        position wins: once set, later callers cannot overwrite it)."""
        if self.line is None and line is not None:
            self.line = line
            self.column = column
            self.args = (f"{self.args[0]} at line {line}, column {column}",)
        return self


class ParseError(SqlError):
    """The SQL text could not be parsed."""


class BindError(SqlError):
    """A name (table, column, function) could not be resolved."""


class TypeError_(SqlError):
    """An expression is not well-typed (named with a trailing underscore to
    avoid shadowing the builtin)."""


class EvaluationError(UserError):
    """A runtime error while evaluating an expression (e.g. division by
    zero, bad cast). These fail a refresh but are not retried (section
    3.3.3)."""


class StatementError(UserError):
    """An error surfaced at the session/cursor API boundary.

    Every error crossing that boundary carries the offending SQL in
    ``sql`` (set by the boundary for pass-through :class:`ReproError`
    subclasses too). StatementError itself wraps *internal* Python
    exceptions (KeyError, ValueError, ...) so the public surface never
    leaks raw non-Repro exceptions.
    """

    def __init__(self, message: str, sql: str | None = None):
        if sql is not None:
            message = f"{message} [while executing: {sql.strip()!r}]"
        super().__init__(message)
        self.sql = sql


class BindParameterError(UserError):
    """A prepared-statement bind failed: missing or extra binds, mixed
    positional and named parameters, or a value with no SQL type."""


class AnalysisError(UserError):
    """A statement was rejected by the static analyzer running in strict
    mode (``analyze_level="error"``): its analysis report contains
    warnings. Carries the offending :class:`repro.analysis.Diagnostic`
    objects on ``diagnostics``."""

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = diagnostics


class CatalogError(UserError):
    """A catalog operation failed (duplicate name, missing entity, ...)."""


class EntityNotFound(CatalogError):
    """The referenced catalog entity does not exist (or was dropped)."""


class EntityDropped(EntityNotFound):
    """The referenced entity exists but is in the dropped state; it may be
    restored with UNDROP (section 3.4: 'if the table is UNDROPped, then
    refreshes should resume without issue')."""


class TransientError(ReproError):
    """An environmental failure that may succeed if simply retried: the
    cause is outside the user's query and outside this library's logic
    (section 3.3.3 distinguishes these from user errors, which "fail and
    are not retried"). The refresh engine retries transient failures
    under the DT's :class:`~repro.core.dynamic_table.RetryPolicy`."""


class InjectedFault(TransientError):
    """A fault raised by the fault-injection subsystem
    (:mod:`repro.faults`). Injected faults model environmental failures
    — storage hiccups, fsync errors, crashed workers — so they classify
    as transient and are retried like the real thing would be. Carries
    the injection ``point`` that fired and, for WAL faults,
    ``leave_torn`` (the append must *not* repair the partial frame: the
    fault simulates a crash mid-write)."""

    def __init__(self, message: str, point: str = "",
                 leave_torn: bool = False):
        super().__init__(message)
        self.point = point
        self.leave_torn = leave_torn


class TransactionError(ReproError):
    """Base class for transaction-manager errors."""


class LockConflict(TransactionError):
    """A required table lock is held by another transaction.

    The paper (section 5.3): 'Each Dynamic Table is locked when a refresh
    operation begins, and unlocked after it commits.'
    """


class VersionNotFound(TransactionError):
    """No table version is visible at the requested timestamp.

    This mirrors the first production validation of section 6.1: 'when a DT
    resolves the table version for a DT upstream, it looks for an exact
    version corresponding to the data timestamp of the refresh. If this
    version cannot be found, we fail the refresh.'
    """


class DynamicTableError(UserError):
    """Base class for dynamic-table lifecycle errors."""


class NotInitializedError(DynamicTableError):
    """The DT was queried before its initial refresh (section 3.1:
    'Querying a DT before it has been initialized results in an error')."""


class SuspendedError(DynamicTableError):
    """The DT has been suspended (manually or after consecutive refresh
    failures exceeded the error threshold, section 3.3.3)."""


class CycleError(DynamicTableError):
    """The dynamic-table dependency graph would contain a cycle
    (section 3.1.1: 'Cycles are not allowed')."""


class NotIncrementalizableError(DynamicTableError):
    """The defining query contains an operator with no derivative rule and
    the refresh mode was forced to INCREMENTAL."""


class InternalError(ReproError):
    """An internal invariant was violated; indicates a bug in this library."""


class ChangeIntegrityError(InternalError):
    """A change set violated one of the incremental-refresh invariants of
    section 6.1: more than one row with the same ``($ROW_ID, $ACTION)``
    pair, or a deletion targeting a row that does not exist."""


class RowIdIntegrityError(InternalError):
    """A relation carrying positional-fallback row ids (``pos:<index>``,
    assigned by ``Relation`` when storage provided none) reached the
    differentiation framework. Positional ids are only unique within one
    relation, so letting them flow into derivative rules could silently
    violate the ``($ROW_ID, $ACTION)`` uniqueness invariant across
    relations; the differentiator rejects them up front instead."""


class DurabilityError(ReproError):
    """The on-disk durability state (WAL or checkpoint) is unusable: bad
    magic, an unsupported format version, a checksum mismatch outside the
    torn tail, or a replayed record whose catalog-epoch stamp does not
    match the catalog it replayed into."""


def is_transient(exc: BaseException) -> bool:
    """Transient-vs-permanent classification (section 3.3.3).

    Transient: injected/environmental faults and lock conflicts — a
    retry against the same snapshot may succeed once the interference
    passes. Permanent: user errors ("it fails and is not retried"),
    missing versions (the version will not appear for this timestamp),
    integrity violations, and durability-state corruption.
    """
    return isinstance(exc, (TransientError, LockConflict))
