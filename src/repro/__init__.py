"""repro — a reproduction of "Streaming Democratized: Ease Across the
Latency Spectrum with Delayed View Semantics and Snowflake Dynamic Tables"
(SIGMOD-Companion 2025).

The package implements, in pure Python:

* an in-memory analytical RDBMS substrate — SQL frontend, relational
  executor, copy-on-write versioned storage with time travel, an
  HLC-stamped transaction manager, and change queries (streams);
* **Dynamic Tables**: declarative materialized views with a target lag,
  refresh actions (NO_DATA / FULL / INCREMENTAL / REINITIALIZE), query
  evolution, skips, and error-driven auto-suspension;
* **query differentiation** (incremental view maintenance) with
  per-operator derivative rules, `$ACTION`/`$ROW_ID` change sets, and
  change consolidation;
* the **scheduler** with canonical refresh periods (48·2^n s), aligned
  data timestamps, simulated virtual warehouses, and lag metrics;
* the **delayed view semantics** transaction-isolation formalism:
  Adya-style histories extended with derivation operations, dependency
  analysis through derived values, and phenomena detection (G0–G2).

Entry points:

* :class:`repro.api.Database` — the end-to-end system (the layered
  Session / PreparedStatement / Cursor surface lives in
  :mod:`repro.api`);
* :mod:`repro.isolation` — the standalone formalism of section 4.
"""

from repro.api import (Cursor, Database, PreparedStatement, QueryResult,
                       Session)

__version__ = "1.1.0"

__all__ = ["Cursor", "Database", "PreparedStatement", "QueryResult",
           "Session", "__version__"]
