"""Logical plans: binding, operators, rewrites, and plan properties."""

from repro.plan.builder import DictSchemaProvider, build_plan
from repro.plan.properties import incrementalizability, operator_inventory
from repro.plan.rewrite import optimize

__all__ = ["DictSchemaProvider", "build_plan", "incrementalizability",
           "operator_inventory", "optimize"]
