"""Logical plan rewrites.

Section 5.4: the compiler turns a refresh command into "an optimized query
plan". This module provides the classic rewrites that matter for the
repository's workloads:

* **constant folding** — deterministic, context-free expressions with no
  column references evaluate at plan time;
* **filter merging** — stacked Filters conjoin;
* **filter pushdown** — predicates move below Projects (by substitution),
  into the preserved side(s) of joins, into every UNION ALL branch, below
  Flatten (when they don't touch the flattened columns), and below
  Aggregates when they reference only group columns;
* **projection merging** — adjacent Projects compose.

All rewrites are **row-id preserving**: Filters and Projects pass row ids
through untouched, so an optimized plan differentiates to exactly the same
change sets as the original — a property the test suite asserts. This is
the paper's hard-won lesson from section 5.5.1 in miniature: "algebraic
choices that seem mathematically trivial can interact with the optimizer",
so every rewrite here is justified against the derivative rules, not just
against bag semantics.
"""

from __future__ import annotations

from repro.engine import expressions as e
from repro.engine.types import SqlType
from repro.errors import EvaluationError
from repro.plan import logical as lp


def optimize(plan: lp.PlanNode) -> lp.PlanNode:
    """Apply all rewrites to fixpoint (bounded)."""
    for __ in range(8):
        rewritten = _rewrite(plan)
        if rewritten is plan:
            return plan
        plan = rewritten
    return plan


def _rewrite(plan: lp.PlanNode) -> lp.PlanNode:
    children = plan.children()
    new_children = [_rewrite(child) for child in children]
    if any(new is not old for new, old in zip(new_children, children)):
        plan = plan.with_children(new_children)

    if isinstance(plan, lp.Filter):
        return _rewrite_filter(plan)
    if isinstance(plan, lp.Project):
        return _rewrite_project(plan)
    return plan


# ---------------------------------------------------------------------------
# Expression-level rewrites
# ---------------------------------------------------------------------------

def fold_constants(expr: e.Expression) -> e.Expression:
    """Evaluate context-free deterministic subtrees to literals."""
    if isinstance(expr, e.Literal):
        return expr
    if (not expr.column_indices() and expr.is_deterministic
            and not expr.uses_context):
        try:
            value = expr.eval((), e.DEFAULT_CONTEXT)
        except EvaluationError:
            return expr  # preserve runtime errors (e.g. 1/0) for execution
        return e.Literal(value, expr.type if value is not None else SqlType.NULL)
    return expr


def substitute(expr: e.Expression,
               bindings: dict[int, e.Expression]) -> e.Expression:
    """Replace every ColumnRef i with bindings[i] (used to push predicates
    through projections)."""
    if isinstance(expr, e.ColumnRef):
        return bindings[expr.index]
    if isinstance(expr, e.Literal):
        return expr

    # Generic reconstruction via remap-like recursion.
    if isinstance(expr, e.Arithmetic):
        return e.Arithmetic(expr.op, substitute(expr.left, bindings),
                            substitute(expr.right, bindings))
    if isinstance(expr, e.Comparison):
        return e.Comparison(expr.op, substitute(expr.left, bindings),
                            substitute(expr.right, bindings))
    if isinstance(expr, e.BooleanOp):
        return e.BooleanOp(expr.op, tuple(substitute(op, bindings)
                                          for op in expr.operands))
    if isinstance(expr, e.Not):
        return e.Not(substitute(expr.operand, bindings))
    if isinstance(expr, e.IsNull):
        return e.IsNull(substitute(expr.operand, bindings), expr.negated)
    if isinstance(expr, e.InList):
        return e.InList(substitute(expr.operand, bindings),
                        tuple(substitute(item, bindings)
                              for item in expr.items), expr.negated)
    if isinstance(expr, e.Like):
        return e.Like(substitute(expr.operand, bindings),
                      substitute(expr.pattern, bindings), expr.negated)
    if isinstance(expr, e.Case):
        return e.Case(tuple((substitute(cond, bindings),
                             substitute(value, bindings))
                            for cond, value in expr.whens),
                      substitute(expr.otherwise, bindings))
    if isinstance(expr, e.Cast):
        return e.Cast(substitute(expr.operand, bindings), expr.target)
    if isinstance(expr, e.VariantPath):
        return e.VariantPath(substitute(expr.operand, bindings), expr.path)
    if isinstance(expr, e.FunctionCall):
        return e.FunctionCall(expr.function,
                              tuple(substitute(arg, bindings)
                                    for arg in expr.args))
    if isinstance(expr, (e.ContextFunction, e.BoundParameter)):
        return expr
    raise TypeError(f"cannot substitute into {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Filter rewrites
# ---------------------------------------------------------------------------

def _rewrite_filter(plan: lp.Filter) -> lp.PlanNode:
    predicate = fold_constants(plan.predicate)
    if isinstance(predicate, e.Literal):
        if predicate.value is True:
            return plan.child
        # Always-false/NULL filters still need a node (empty output).
        plan = lp.Filter(plan.child, predicate)

    child = plan.child

    # Merge stacked filters.
    if isinstance(child, lp.Filter):
        merged = e.conjoin(e.conjuncts(child.predicate)
                           + e.conjuncts(predicate))
        return _rewrite_filter(lp.Filter(child.child, merged))

    # Push through a Project by substituting the projected expressions.
    if isinstance(child, lp.Project):
        bindings = dict(enumerate(child.exprs))
        pushed = substitute(predicate, bindings)
        return lp.Project(lp.Filter(child.child, pushed),
                          child.exprs, child.schema)

    # Push into join sides.
    if isinstance(child, lp.Join):
        return _push_into_join(predicate, child)

    # Push into every UNION ALL branch.
    if isinstance(child, lp.UnionAll):
        return lp.UnionAll(tuple(lp.Filter(branch, predicate)
                                 for branch in child.inputs))

    # Push below Flatten when the predicate ignores the flattened columns.
    if isinstance(child, lp.Flatten):
        width = len(child.child.schema)
        if all(index < width for index in predicate.column_indices()):
            return lp.Flatten(lp.Filter(child.child, predicate),
                              child.input_expr, child.alias, child.schema)

    # Push below Aggregate when only group columns are referenced.
    if isinstance(child, lp.Aggregate) and not child.is_scalar:
        group_count = len(child.group_exprs)
        if all(index < group_count
               for index in predicate.column_indices()):
            bindings = dict(enumerate(child.group_exprs))
            pushed = substitute(predicate, bindings)
            return lp.Aggregate(lp.Filter(child.child, pushed),
                                child.group_exprs, child.aggregates,
                                child.schema)

    if predicate is not plan.predicate:
        return lp.Filter(child, predicate)
    return plan


def _push_into_join(predicate: e.Expression, join: lp.Join) -> lp.PlanNode:
    """Distribute conjuncts to the join sides where semantics allow.

    Inner/cross joins accept pushes to both sides; a LEFT join only to the
    preserved left side (filtering the right input would turn NULL-padded
    rows into matches or vice versa); symmetric for RIGHT; FULL accepts
    neither.
    """
    left_width = len(join.left.schema)
    right_rebase = {index: index - left_width
                    for index in range(left_width,
                                       left_width + len(join.right.schema))}
    may_push_left = join.kind in ("inner", "cross", "left")
    may_push_right = join.kind in ("inner", "cross", "right")

    left_parts: list[e.Expression] = []
    right_parts: list[e.Expression] = []
    kept: list[e.Expression] = []
    for part in e.conjuncts(predicate):
        indices = part.column_indices()
        if indices and all(i < left_width for i in indices) and may_push_left:
            left_parts.append(part)
        elif indices and all(i >= left_width for i in indices) and may_push_right:
            right_parts.append(part.remap(right_rebase))
        else:
            kept.append(part)

    if not left_parts and not right_parts:
        return lp.Filter(join, predicate)

    left = lp.Filter(join.left, e.conjoin(left_parts)) if left_parts else join.left
    right = (lp.Filter(join.right, e.conjoin(right_parts))
             if right_parts else join.right)
    new_join = lp.Join(join.kind, left, right, join.condition)
    if kept:
        return lp.Filter(new_join, e.conjoin(kept))
    return new_join


# ---------------------------------------------------------------------------
# Project rewrites
# ---------------------------------------------------------------------------

def _rewrite_project(plan: lp.Project) -> lp.PlanNode:
    exprs = tuple(fold_constants(expr) for expr in plan.exprs)
    child = plan.child
    # Compose adjacent projections: P1(P2(x)) = (P1 ∘ P2)(x).
    if isinstance(child, lp.Project):
        bindings = dict(enumerate(child.exprs))
        composed = tuple(substitute(expr, bindings) for expr in exprs)
        return _rewrite_project(lp.Project(child.child, composed, plan.schema))
    if exprs != plan.exprs:
        return lp.Project(child, exprs, plan.schema)
    return plan
